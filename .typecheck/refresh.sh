#!/usr/bin/env bash
# Rebuild the offline shadow workspace at .typecheck/work from the repo
# sources and the stub dependency crates, so `cargo check` / `cargo test`
# run in environments with no access to crates.io. See README.md here.
set -euo pipefail
cd "$(dirname "$0")"

rm -rf work
mkdir -p work
tar -C .. \
    --exclude=./.typecheck \
    --exclude=./target \
    --exclude=./.git \
    --exclude=./results \
    -cf - . | tar -C work -xf -

# The proptest suite and the criterion benches need the real crates;
# the stubs are resolve-only, so drop those targets from the shadow.
rm -f work/tests/property_based.rs
rm -rf work/crates/bench/benches
sed -i '/^\[\[bench\]\]/,$d' work/crates/bench/Cargo.toml

# Route every registry dependency to the stubs.
cat patch.toml >> work/Cargo.toml

echo "shadow workspace ready: $(cd work && pwd)"
echo "  cd .typecheck/work && cargo test --offline"
