//! Offline stand-in for `serde_derive`: emits marker impls of the stub
//! `serde::Serialize` / `serde::Deserialize` traits (no field
//! serialization — derived types render as `null` in the stub).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    if let Some(TokenTree::Ident(name)) = iter.next() {
                        return name.to_string();
                    }
                    panic!("serde_derive stub: missing type name");
                }
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: no struct/enum in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
