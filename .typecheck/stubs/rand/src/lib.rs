//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. Functional and deterministic, but NOT the upstream
//! implementation: value streams differ from real `rand`. Only used by
//! the `.typecheck` shadow workspace; CI builds against the real crate.

pub mod distributions {
    use crate::RngCore;

    /// A distribution that can sample values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution for primitive types.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        use crate::RngCore;

        /// Types uniformly sampleable from a range.
        pub trait SampleUniform: Sized + PartialOrd {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let span = (high as i128) - (low as i128) + if inclusive { 1 } else { 0 };
                        assert!(span > 0, "cannot sample empty range");
                        let v = (rng.next_u64() as u128 % span as u128) as i128;
                        (low as i128 + v) as $t
                    }
                }
            )*};
        }
        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        low + (unit as $t) * (high - low)
                    }
                }
            )*};
        }
        impl_uniform_float!(f32, f64);

        /// Range types usable with `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_between(self.start, self.end, false, rng)
            }
        }
        impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_between(lo, hi, true, rng)
            }
        }
    }
}

/// Error type of fallible generation (never produced by the stub; it
/// exists so `try_fill_bytes` impls written against real `rand` 0.8
/// compile here too).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Raw random-number generation.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the u64 into the full seed width.
        let mut s = state;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub use distributions::Distribution;
