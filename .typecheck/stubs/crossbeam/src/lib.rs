//! Offline stand-in for `crossbeam`: an MPMC unbounded channel with the
//! `crossbeam-channel` API surface this workspace uses (clone-able
//! senders, `send`, `recv`, `try_recv`, `recv_timeout`, `len`,
//! disconnect detection on either side).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.0.ready.wait_timeout(queue, deadline - now).unwrap();
                queue = guard;
            }
        }
    }
}
