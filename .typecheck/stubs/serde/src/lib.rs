//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` traits as
//! derive targets and bounds, plus a simple self-describing content tree
//! that the `serde_json` stub renders. Derived impls fall back to
//! `Content::Null`; primitives and std collections serialize for real.

/// Self-describing serialized form (consumed by the `serde_json` stub).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Serializable types. The stub bypasses serde's visitor machinery:
/// types render themselves straight to [`Content`].
pub trait Serialize {
    fn stub_content(&self) -> Content {
        Content::Null
    }
}

/// Deserializable types (marker only in the stub).
pub trait Deserialize<'de>: Sized {}

/// Owned-deserializable marker, mirroring serde's blanket.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn stub_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn stub_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn stub_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Serialize for f64 {
    fn stub_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f32 {}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for bool {
    fn stub_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for str {
    fn stub_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for String {
    fn stub_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn stub_content(&self) -> Content {
        (**self).stub_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn stub_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.stub_content()).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn stub_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.stub_content()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn stub_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.stub_content()).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn stub_content(&self) -> Content {
        match self {
            Some(v) => v.stub_content(),
            None => Content::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn stub_content(&self) -> Content {
        Content::Seq(vec![self.0.stub_content(), self.1.stub_content()])
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
