//! Offline stand-in for `bytes`: `Bytes`/`BytesMut` with the `Buf` /
//! `BufMut` methods this workspace uses, backed by plain `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// Read-side buffer cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.0,
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut(data.to_vec())
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}
