//! Offline stand-in for `rand_pcg` 0.3: a real PCG XSL-RR 128/64
//! generator (deterministic, good statistical quality) compatible with
//! the stub `rand` traits. Streams differ from upstream `rand_pcg`.

use rand::{RngCore, SeedableRng};

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG-XSL-RR 128/64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 { state: 0, increment };
        pcg.state = pcg
            .state
            .wrapping_add(state)
            .wrapping_mul(MULTIPLIER)
            .wrapping_add(increment);
        pcg
    }

    #[inline]
    fn step(&mut self) -> u128 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.increment);
        old
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let state = self.step();
        let xored = ((state >> 64) as u64) ^ (state as u64);
        let rot = (state >> 122) as u32;
        xored.rotate_right(rot)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        lo.copy_from_slice(&seed[..16]);
        hi.copy_from_slice(&seed[16..]);
        Pcg64::new(u128::from_le_bytes(lo), u128::from_le_bytes(hi))
    }
}

/// Alias used by upstream.
pub type Lcg128Xsl64 = Pcg64;
