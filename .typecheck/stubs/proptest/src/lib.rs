//! Resolve-only stand-in for `proptest`. The shadow workspace strips the
//! proptest suites before checking, so this crate only needs to exist
//! for dependency resolution.
