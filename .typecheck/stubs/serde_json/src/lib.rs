//! Offline stand-in for `serde_json`: a `Value` tree, the `json!` macro
//! for the literal shapes this workspace writes, and pretty-printing.
//! Derived structs (stub `serde`) serialize as `null`; primitives and
//! std collections serialize for real.

use serde::{Content, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Ordered map used for JSON objects.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map(pub Vec<(String, Value)>);

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) {
        self.0.push((key, value));
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

/// JSON value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Mirrors `serde_json`: indexing a `Null` promotes it to an empty
    /// object, a missing key is inserted as `Null`, and indexing any
    /// other non-object panics.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = match self {
            Value::Object(m) => m,
            other => panic!("cannot index into {other:?} with a string key"),
        };
        if !map.0.iter().any(|(k, _)| k == key) {
            map.insert(key.to_string(), Value::Null);
        }
        let (_, v) = map.0.iter_mut().find(|(k, _)| k == key).expect("just inserted");
        v
    }
}

impl fmt::Display for Value {
    /// Compact JSON, like `serde_json` (`{:#}` pretty-prints there; the
    /// stub renders compact for both).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(self, 0, false, &mut out);
        f.write_str(&out)
    }
}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(v) => Value::U64(v),
        Content::I64(v) => Value::I64(v),
        Content::F64(v) => Value::F64(v),
        Content::Str(s) => Value::String(s),
        Content::Seq(vs) => Value::Array(vs.into_iter().map(content_to_value).collect()),
        Content::Map(kvs) => Value::Object(Map(kvs
            .into_iter()
            .map(|(k, v)| (k, content_to_value(v)))
            .collect())),
    }
}

impl Serialize for Value {
    fn stub_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(vs) => Content::Seq(vs.iter().map(|v| v.stub_content()).collect()),
            Value::Object(m) => Content::Map(
                m.0.iter()
                    .map(|(k, v)| (k.clone(), v.stub_content()))
                    .collect(),
            ),
        }
    }
}

/// Serialize any `Serialize` into a `Value`.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(value.stub_content())
}

/// Serialization error (the stub never fails; the type exists so `?`
/// conversions compile).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::other(e)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let pad = if pretty { "  ".repeat(indent + 1) } else { String::new() };
    let close_pad = if pretty { "  ".repeat(indent) } else { String::new() };
    let nl = if pretty { "\n" } else { "" };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape(s, out),
        Value::Array(vs) => {
            if vs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.0.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.0.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

/// Compact rendering.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&to_value(value), 0, false, &mut out);
    Ok(out)
}

/// Pretty rendering.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&to_value(value), 0, true, &mut out);
    Ok(out)
}

/// Parse JSON text into a [`Value`]. The real crate's `from_str` is
/// generic over `Deserialize`; this workspace only ever deserializes
/// into `Value`, so the stub returns it directly.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error);
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, b"null", Value::Null),
        Some(b't') => parse_lit(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        _ => Err(Error),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error)
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos).ok_or(Error)? {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos).ok_or(Error)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or(Error)?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error)?,
                            16,
                        )
                        .map_err(|_| Error)?;
                        out.push(char::from_u32(code).ok_or(Error)?);
                        *pos += 4;
                    }
                    _ => return Err(Error),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences whole).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| Error)?;
                let ch = rest.chars().next().ok_or(Error)?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error)?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
    }
    text.parse::<f64>().map(Value::F64).map_err(|_| Error)
}

/// Build a [`Value`] from a JSON-ish literal. Supports the shapes this
/// workspace writes: object literals with string-literal keys, array
/// literals, nested objects/arrays, and arbitrary serializable
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => {{
        let mut array = ::std::vec::Vec::new();
        $crate::json_array_internal!(array; $($elems)*);
        $crate::Value::Array(array)
    }};
    ({ $($entries:tt)* }) => {{
        let mut object = $crate::Map::new();
        $crate::json_object_internal!(object; $($entries)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($val:tt)* } $(, $($rest:tt)*)?) => {
        $obj.insert($key.to_string(), $crate::json!({ $($val)* }));
        $( $crate::json_object_internal!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : [ $($val:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.insert($key.to_string(), $crate::json!([ $($val)* ]));
        $( $crate::json_object_internal!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::json!($val));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $val:expr) => {
        $obj.insert($key.to_string(), $crate::json!($val));
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($arr:ident;) => {};
    ($arr:ident; { $($val:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($val)* }));
        $( $crate::json_array_internal!($arr; $($rest)*); )?
    };
    ($arr:ident; [ $($val:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($val)* ]));
        $( $crate::json_array_internal!($arr; $($rest)*); )?
    };
    ($arr:ident; $val:expr , $($rest:tt)*) => {
        $arr.push($crate::json!($val));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; $val:expr) => {
        $arr.push($crate::json!($val));
    };
}
