//! Resolve-only stand-in for `criterion`. The shadow workspace strips
//! the `benches/` targets before checking, so this crate only needs to
//! exist for dependency resolution.
