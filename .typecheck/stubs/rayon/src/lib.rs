//! Offline stand-in for `rayon`: the parallel-iterator API surface this
//! workspace uses, executed serially. Semantics (not performance) match.

/// Serial adapter standing in for a rayon parallel iterator.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}
impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` by shared reference.
pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator;
    fn par_iter(&'a self) -> Par<Self::Iter>;
}
impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Iter = <&'a T as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par((self).into_iter())
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}
