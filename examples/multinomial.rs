//! Parallel multinomial random-variate generation (Section 6): the
//! additive decomposition that turns the sequential conditional method
//! into an embarrassingly parallel algorithm.
//!
//! ```text
//! cargo run --release --example multinomial
//! ```

use edge_switching::dist::parallel::{parallel_multinomial, trial_share};
use edge_switching::mpi::{run_world_default, CollPayload};
use edge_switching::prelude::*;

fn main() {
    // Sequential: the conditional-distribution method (Algorithm 4).
    let mut rng = root_rng(1);
    let q = [0.1, 0.2, 0.3, 0.4];
    let n = 10_000_000u64;
    let x = multinomial(n, &q, &mut rng);
    println!(
        "sequential M({n}, {q:?}) = {x:?}  (sum = {})",
        x.iter().sum::<u64>()
    );

    // The additive property: each rank samples its trial share and the
    // counts are reduced (Algorithm 5). Run it on 8 real ranks.
    let q_owned = q.to_vec();
    let results = run_world_default::<CollPayload, Vec<u64>, _>(8, move |comm| {
        let mut rng = rank_rng(1, comm.rank() as u64);
        let share = trial_share(n, comm.size(), comm.rank());
        let before = std::time::Instant::now();
        let x = parallel_multinomial(comm, n, &q_owned, &mut rng);
        if comm.rank() == 0 {
            println!(
                "rank 0: my share was {share} trials, aggregate ready in {:?}",
                before.elapsed()
            );
        }
        x
    });
    // Every rank holds the identical aggregate.
    for r in &results {
        assert_eq!(r, &results[0]);
        assert_eq!(r.iter().sum::<u64>(), n);
    }
    println!(
        "parallel  M({n}, q) = {:?}  (identical on all 8 ranks)",
        results[0]
    );

    // Underflow robustness: the BINV split (Equations 14-15) handles
    // trial counts where (1-q)^N underflows any float.
    let huge = 200_000_000_000u64;
    let tiny_q = 1e-9;
    let draw = binomial(huge, tiny_q, &mut rng);
    println!(
        "B(N = 2x10^11, q = 1e-9) = {draw}  (expectation {}, no underflow)",
        (huge as f64 * tiny_q) as u64
    );

    // This machinery is what distributes each step's switch operations
    // across processors in the parallel edge-switch engine.
    let edges_per_rank = [50_000u64, 30_000, 15_000, 5_000];
    let total: u64 = edges_per_rank.iter().sum();
    let probs: Vec<f64> = edges_per_rank
        .iter()
        .map(|&e| e as f64 / total as f64)
        .collect();
    let quotas = multinomial(100_000, &probs, &mut rng);
    println!("step quotas for |E_i| = {edges_per_rank:?}: {quotas:?}");
}
