//! The distributed engine in detail: partition a graph under each of the
//! four schemes, run the full message protocol, and inspect the load
//! balance — the Section 5 trade-off study in miniature.
//!
//! ```text
//! cargo run --release --example distributed_switch
//! ```

use edge_switching::graph::partition::stats::{imbalance, PartitionStats};
use edge_switching::prelude::*;
use edgeswitch_bench::experiments::telemetry::protocol_summary;

fn main() {
    let mut rng = root_rng(11);

    // A clustered, label-local contact network — the graph class where
    // partitioning choice matters most (Section 5.2).
    let g = contact_network(
        ContactParams {
            n: 3_000,
            community_size: 60,
            intra_degree: 20.0,
            inter_degree: 3.0,
        },
        &mut rng,
    );
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 1.0);
    let p = 8;
    println!(
        "graph: n = {}, m = {}; t = {t} operations over {p} ranks\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:6} {:>12} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "scheme", "edge imb.", "final imb.", "workload imb.", "aborts", "visit", "local%"
    );

    let mut last_out = None;
    for scheme in SchemeKind::all() {
        let part = Partitioner::build(scheme, &g, p, &mut rng);
        let initial = PartitionStats::measure(&g, &part);

        // Threaded engine: real ranks, real messages.
        let out = Run::parallel(p)
            .switches(t)
            .scheme(scheme)
            .step_size(StepSize::FractionOfT(100))
            .seed(13)
            .execute(&g)
            .into_parallel()
            .expect("parallel mode");
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());

        let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
        // How many switches skipped the protocol entirely: both edges
        // and both replacements lived on one rank, so the switch was
        // applied inline with zero messages. CP keeps communities (and
        // hence switch partners) together; the hash schemes scatter
        // them, trading locality for balance.
        let fast: u64 = out.per_rank.iter().map(|s| s.performed_fastpath).sum();
        println!(
            "{:6} {:>12.3} {:>12.3} {:>13.3} {:>12} {:>9.4} {:>7.1}%",
            scheme.label(),
            initial.edge_imbalance(),
            imbalance(&out.final_edges),
            imbalance(&out.workload()),
            aborts,
            out.visit_rate(),
            100.0 * fast as f64 / out.performed().max(1) as f64,
        );
        last_out = Some(out);
    }

    // The drivers record per-step telemetry; summarize the last run
    // with the same renderer `repro diagnostics` uses. The pipelining
    // window keeps several conversations in flight per rank, and
    // coalescing packs their messages into shared packets.
    let out = last_out.expect("at least one scheme ran");
    println!();
    print!("{}", protocol_summary(&out, DEFAULT_WINDOW));

    println!(
        "\nCP starts perfectly edge-balanced but ends skewed on clustered graphs;\n\
         the hash schemes stay balanced throughout (Figures 16-19)."
    );
}
