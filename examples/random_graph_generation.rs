//! Random graph generation with a prescribed degree sequence — the
//! paper's flagship application: realize the sequence deterministically
//! with Havel–Hakimi, then randomize with edge switching.
//!
//! ```text
//! cargo run --release --example random_graph_generation
//! ```

use edge_switching::prelude::*;

fn main() {
    let mut rng = root_rng(7);

    // 1. A heavy-tailed degree sequence (power law, gamma = 2.3).
    let n = 5_000;
    let seq = power_law_sequence(n, 2.3, 2, 200, &mut rng);
    assert!(erdos_gallai(&seq), "sequence must be graphical");
    let dmax = *seq.iter().max().unwrap();
    println!("degree sequence: n = {n}, max degree {dmax}");

    // 2. Deterministic realization (always the same graph).
    let g0 = havel_hakimi(&seq).expect("graphical sequence realizes");
    println!(
        "Havel-Hakimi graph: m = {}, clustering = {:.4}",
        g0.num_edges(),
        average_clustering_sampled(&g0, 2000, &mut rng),
    );

    // 3. Randomize: switch until every edge has been visited (x = 1).
    //    Two independent runs give two *different* random graphs with
    //    the *same* degree sequence.
    let g1 = Run::sequential()
        .visit_rate(1.0)
        .seed(71)
        .execute(&g0)
        .into_sequential()
        .expect("sequential run")
        .graph;
    let g2 = Run::sequential()
        .visit_rate(1.0)
        .seed(72)
        .execute(&g0)
        .into_sequential()
        .expect("sequential run")
        .graph;

    assert_eq!(g1.degree_sequence(), seq);
    assert_eq!(g2.degree_sequence(), seq);
    let shared = g1.edges().filter(|&e| g2.has_edge(e)).count();
    println!(
        "two randomized graphs share only {shared}/{} edges (same degrees, different graphs)",
        g1.num_edges()
    );
    println!(
        "clustering after randomization: {:.4} and {:.4} (Havel-Hakimi's structure destroyed)",
        average_clustering_sampled(&g1, 2000, &mut rng),
        average_clustering_sampled(&g2, 2000, &mut rng),
    );

    // 4. The same randomization distributed over 16 ranks — how massive
    //    sequences are randomized in practice.
    let out = Run::parallel(16)
        .visit_rate(1.0)
        .scheme(SchemeKind::HashUniversal)
        .step_size(StepSize::SingleStep)
        .seed(99)
        .execute(&g0);
    assert_eq!(out.graph().degree_sequence(), seq);
    println!(
        "distributed randomization: visit rate {:.4} over 16 ranks, degree sequence intact",
        out.visit_rate(),
    );
}
