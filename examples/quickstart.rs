//! Quickstart: generate a graph, switch its edges to a target visit
//! rate, and verify the invariants the algorithm guarantees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edge_switching::prelude::*;

fn main() {
    let mut rng = root_rng(42);

    // 1. A random simple graph: 10k vertices, 50k edges.
    let g = erdos_renyi_gnm(10_000, 50_000, &mut rng);
    let degrees_before = g.degree_sequence();
    println!(
        "generated G(n={}, m={}), max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. How many switch operations does a 90% visit rate take?
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 0.9);
    println!("target visit rate 0.9 -> t = E[T]/2 = {t} switch operations");

    // 3. Switch sequentially (Algorithm 1). `Run` is the front door:
    //    pick a driver, state the budget, execute.
    let run = Run::sequential()
        .visit_rate(0.9)
        .seed(42)
        .execute(&g)
        .into_sequential()
        .expect("sequential mode");
    println!(
        "performed {} switches ({} restarts), observed visit rate {:.4}",
        run.outcome.performed,
        run.outcome.rejects.total(),
        run.outcome.visit_rate()
    );

    // 4. The guarantees: simplicity and an unchanged degree sequence.
    run.graph.check_invariants().expect("graph stayed simple");
    assert_eq!(run.graph.degree_sequence(), degrees_before);
    println!("degree sequence preserved, no loops, no parallel edges");

    // 5. The same workload on a distributed world of 8 ranks
    //    (thread-backed message passing; every protocol message of the
    //    paper's Section 4.4 is really exchanged), with probes attached:
    //    the outcome carries a RunReport of phase timings and latency
    //    histograms, and recording never perturbs the run.
    let g2 = erdos_renyi_gnm(10_000, 50_000, &mut rng);
    let out = Run::parallel(8)
        .visit_rate(0.9)
        .scheme(SchemeKind::HashUniversal)
        .step_size(StepSize::FractionOfT(100))
        .seed(42)
        .probe(ObsSpec::Spans)
        .execute(&g2)
        .into_parallel()
        .expect("parallel mode");
    println!(
        "parallel: {} ranks, {} steps, visit rate {:.4}, {} local / {} global switches",
        out.per_rank.len(),
        out.steps,
        out.visit_rate(),
        out.per_rank.iter().map(|s| s.performed_local).sum::<u64>(),
        out.per_rank.iter().map(|s| s.performed_global).sum::<u64>(),
    );
    assert_eq!(out.graph.degree_sequence(), g2.degree_sequence());
    println!("parallel run preserved the degree sequence too");

    let report = out.report.as_ref().expect("observed run");
    let wait = report.phase(Phase::MsgWait);
    println!(
        "observed: wall {:.1} ms; msg-wait p99 {:.1} us over {} waits",
        report.wall_ns as f64 / 1e6,
        wait.hist.p99_ns as f64 / 1e3,
        wait.hist.count,
    );
}
