//! Quickstart: generate a graph, switch its edges to a target visit
//! rate, and verify the invariants the algorithm guarantees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edge_switching::prelude::*;

fn main() {
    let mut rng = root_rng(42);

    // 1. A random simple graph: 10k vertices, 50k edges.
    let mut g = erdos_renyi_gnm(10_000, 50_000, &mut rng);
    let degrees_before = g.degree_sequence();
    println!(
        "generated G(n={}, m={}), max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. How many switch operations does a 90% visit rate take?
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 0.9);
    println!("target visit rate 0.9 -> t = E[T]/2 = {t} switch operations");

    // 3. Switch sequentially (Algorithm 1).
    let (outcome, _) = sequential_for_visit_rate(&mut g, 0.9, &mut rng);
    println!(
        "performed {} switches ({} restarts), observed visit rate {:.4}",
        outcome.performed,
        outcome.rejects.total(),
        outcome.visit_rate()
    );

    // 4. The guarantees: simplicity and an unchanged degree sequence.
    g.check_invariants().expect("graph stayed simple");
    assert_eq!(g.degree_sequence(), degrees_before);
    println!("degree sequence preserved, no loops, no parallel edges");

    // 5. The same workload on a distributed world of 8 ranks
    //    (thread-backed message passing; every protocol message of the
    //    paper's Section 4.4 is really exchanged).
    let g2 = erdos_renyi_gnm(10_000, 50_000, &mut rng);
    let cfg = ParallelConfig::new(8)
        .with_scheme(SchemeKind::HashUniversal)
        .with_step_size(StepSize::FractionOfT(100))
        .with_seed(42);
    let t2 = switch_ops_for_visit_rate(g2.num_edges() as u64, 0.9);
    let out = parallel_edge_switch(&g2, t2, &cfg);
    println!(
        "parallel: {} ranks, {} steps, visit rate {:.4}, {} local / {} global switches",
        cfg.processors,
        out.steps,
        out.visit_rate(),
        out.per_rank.iter().map(|s| s.performed_local).sum::<u64>(),
        out.per_rank.iter().map(|s| s.performed_global).sum::<u64>(),
    );
    assert_eq!(out.graph.degree_sequence(), g2.degree_sequence());
    println!("parallel run preserved the degree sequence too");
}
