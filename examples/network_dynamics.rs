//! Network-property dynamics under edge switching (the Figure 12/13
//! experiment): watch clustering and path length decay as a clustered
//! contact network is progressively randomized — the sensitivity study
//! that motivates visit-rate control.
//!
//! ```text
//! cargo run --release --example network_dynamics
//! ```

use edge_switching::prelude::*;

fn main() {
    let mut rng = root_rng(3);

    // A Miami-like contact network: dense, label-local communities.
    let g0 = contact_network(
        ContactParams {
            n: 4_000,
            community_size: 80,
            intra_degree: 25.0,
            inter_degree: 4.0,
        },
        &mut rng,
    );
    let m = g0.num_edges() as u64;
    println!(
        "contact network: n = {}, m = {m}, avg degree {:.1}",
        g0.num_vertices(),
        g0.avg_degree()
    );
    println!("\n x      clustering   avg path   (sequential switching to visit rate x)");

    for i in 0..=10u64 {
        let x = i as f64 / 10.0;
        let t = switch_ops_for_visit_rate(m, x);
        let out = Run::sequential().switches(t).seed(3 ^ i).execute(&g0);
        let cc = average_clustering_sampled(out.graph(), 1500, &mut rng);
        let path = average_shortest_path_sampled(out.graph(), 30, &mut rng);
        println!("{x:.1}    {cc:10.4}  {path:9.3}");
    }

    // The parallel process drives the same trajectory: compare endpoints.
    let out = Run::simulated(32)
        .visit_rate(1.0)
        .scheme(SchemeKind::Consecutive)
        .step_size(StepSize::FractionOfT(100))
        .seed(5)
        .execute(&g0)
        .into_parallel()
        .expect("simulated mode");
    let cc_par = average_clustering_sampled(&out.graph, 1500, &mut rng);
    println!(
        "\nparallel (32 ranks) at x = 1: clustering {cc_par:.4} — same endpoint as sequential"
    );
    println!(
        "error rate between parallel and a fresh sequential run (r = 20 blocks): {:.3}%",
        {
            let seq = Run::sequential().visit_rate(1.0).seed(17).execute(&g0);
            error_rate(seq.graph(), &out.graph, 20)
        }
    );
}
