//! Scaling study on the virtual cluster: predict the strong-scaling
//! curve of the distributed algorithm up to 1024 processors (the
//! Figure 4/14 experiment at example scale).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use edge_switching::prelude::*;

fn main() {
    let mut rng = root_rng(9);
    let g = preferential_attachment(20_000, 10, &mut rng);
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 1.0);
    println!(
        "PA graph: n = {}, m = {}; t = {t} switch operations (visit rate 1)\n",
        g.num_vertices(),
        g.num_edges()
    );

    let cost = CostModel::default();
    println!(
        "cost model: seq switch {:.0} ns, latency {:.0} ns, msg overhead {:.0} ns",
        cost.seq_switch_ns, cost.latency_ns, cost.msg_handle_ns
    );
    println!("\nscheme   p      time(s)   speedup   imbalance");

    for scheme in [SchemeKind::Consecutive, SchemeKind::HashUniversal] {
        let points = strong_scaling(&g, t, &[16, 64, 256, 1024], &cost, |p| {
            ParallelConfig::new(p)
                .with_scheme(scheme)
                .with_step_size(StepSize::FractionOfT(100))
                .with_seed(17)
        });
        for pt in points {
            println!(
                "{:6} {:5} {:10.3} {:9.1} {:11.2}",
                scheme.label(),
                pt.p,
                pt.runtime_s,
                pt.speedup,
                pt.workload_imbalance
            );
        }
    }

    println!(
        "\nEvery protocol message is logically exchanged inside the simulator;\n\
         only the clock is modeled (LogGP-style). The paper's 64-node cluster\n\
         reports speedups of ~85-110 at 640-1024 ranks on 1000x larger graphs."
    );
}
