//! # edge-switching
//!
//! Distributed-memory parallel edge switching in heterogeneous graphs —
//! a full reproduction of Bhuiyan, Khan, Chen & Marathe, *"Fast Parallel
//! Algorithms for Edge-Switching to Achieve a Target Visit Rate in
//! Heterogeneous Graphs"* (ICPP 2014; extended JPDC journal version).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`graph`] (`edgeswitch-graph`): simple graphs, reduced adjacency
//!   partitions, the four partitioning schemes, generators, metrics;
//! - [`dist`] (`edgeswitch-dist`): BINV binomial sampling, sequential
//!   and parallel multinomial generation, visit-rate math;
//! - [`mpi`] (`mpilite`): the thread-backed message-passing runtime;
//! - [`core`] (`edgeswitch-core`): the sequential and distributed
//!   edge-switch algorithms;
//! - [`scalesim`] (`edgeswitch-scalesim`): the virtual-time cluster for
//!   scaling studies.
//!
//! # Quickstart
//!
//! ```
//! use edge_switching::prelude::*;
//!
//! // A random graph, switched at visit rate 0.5, sequentially.
//! let mut rng = root_rng(7);
//! let mut g = erdos_renyi_gnm(500, 2500, &mut rng);
//! let degrees = g.degree_sequence();
//! let (out, _t) = sequential_for_visit_rate(&mut g, 0.5, &mut rng);
//! assert!((out.visit_rate() - 0.5).abs() < 0.05);
//! assert_eq!(g.degree_sequence(), degrees);
//!
//! // The same operations, distributed over 4 ranks.
//! let g2 = erdos_renyi_gnm(500, 2500, &mut rng);
//! let cfg = ParallelConfig::new(4).with_seed(7);
//! let out = parallel_edge_switch(&g2, 1000, &cfg);
//! assert_eq!(out.performed(), 1000);
//! assert_eq!(out.graph.degree_sequence(), g2.degree_sequence());
//! ```

#![warn(missing_docs)]

pub use edgeswitch_core as core;
pub use edgeswitch_dist as dist;
pub use edgeswitch_graph as graph;
pub use edgeswitch_scalesim as scalesim;
pub use mpilite as mpi;

/// The most commonly used items in one import.
pub mod prelude {
    pub use edgeswitch_core::config::{ParallelConfig, StepSize, DEFAULT_WINDOW};
    pub use edgeswitch_core::error_rate::error_rate;
    pub use edgeswitch_core::parallel::{
        parallel_edge_switch, simulate_parallel, MsgCounts, MsgKind, ParallelOutcome, StepTelemetry,
    };
    pub use edgeswitch_core::sequential::{sequential_edge_switch, sequential_for_visit_rate};
    pub use edgeswitch_core::variants::{sequential_edge_switch_connected, sequential_exact_visit};
    pub use edgeswitch_core::visit::VisitTracker;
    pub use edgeswitch_dist::harmonic::{expected_touches, switch_ops_for_visit_rate};
    pub use edgeswitch_dist::rng::{rank_rng, root_rng};
    pub use edgeswitch_dist::{binomial, multinomial};
    pub use edgeswitch_graph::degree::{erdos_gallai, havel_hakimi, power_law_sequence};
    pub use edgeswitch_graph::generators::{
        contact_network, erdos_renyi_gnm, erdos_renyi_gnp, preferential_attachment, random_regular,
        small_world, stochastic_block_model, ContactParams, Dataset,
    };
    pub use edgeswitch_graph::metrics::{
        average_clustering_exact, average_clustering_sampled, average_shortest_path_sampled,
        degree_assortativity, is_connected, transitivity, triangle_count,
    };
    pub use edgeswitch_graph::{Edge, Graph, Partitioner, SchemeKind, VertexId};
    pub use edgeswitch_scalesim::{des_parallel, strong_scaling, CostModel};
}
