//! # edge-switching
//!
//! Distributed-memory parallel edge switching in heterogeneous graphs —
//! a full reproduction of Bhuiyan, Khan, Chen & Marathe, *"Fast Parallel
//! Algorithms for Edge-Switching to Achieve a Target Visit Rate in
//! Heterogeneous Graphs"* (ICPP 2014; extended JPDC journal version).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`graph`] (`edgeswitch-graph`): simple graphs, reduced adjacency
//!   partitions, the four partitioning schemes, generators, metrics;
//! - [`dist`] (`edgeswitch-dist`): BINV binomial sampling, sequential
//!   and parallel multinomial generation, visit-rate math;
//! - [`mpi`] (`mpilite`): the thread-backed message-passing runtime;
//! - [`core`] (`edgeswitch-core`): the sequential and distributed
//!   edge-switch algorithms;
//! - [`scalesim`] (`edgeswitch-scalesim`): the virtual-time cluster for
//!   scaling studies.
//!
//! # Quickstart
//!
//! [`Run`](prelude::Run) is the front door: pick a driver, state the
//! budget (operation count or target visit rate), execute.
//!
//! ```
//! use edge_switching::prelude::*;
//!
//! // A random graph, switched at visit rate 0.5, sequentially.
//! let mut rng = root_rng(7);
//! let g = erdos_renyi_gnm(500, 2500, &mut rng);
//! let out = Run::sequential().visit_rate(0.5).seed(7).execute(&g);
//! assert!((out.visit_rate() - 0.5).abs() < 0.05);
//! assert_eq!(out.graph().degree_sequence(), g.degree_sequence());
//!
//! // The same process distributed over 4 ranks, with phase timing and
//! // latency histograms recorded along the way.
//! let out = Run::parallel(4)
//!     .switches(1000)
//!     .seed(7)
//!     .probe(ObsSpec::Spans)
//!     .execute(&g);
//! assert_eq!(out.performed(), 1000);
//! assert_eq!(out.graph().degree_sequence(), g.degree_sequence());
//! let report = out.report().expect("observed run");
//! assert!(report.wall_ns > 0);
//! ```

#![warn(missing_docs)]

pub use edgeswitch_core as core;
pub use edgeswitch_dist as dist;
pub use edgeswitch_graph as graph;
pub use edgeswitch_scalesim as scalesim;
pub use mpilite as mpi;

/// The most commonly used items in one import.
pub mod prelude {
    pub use edgeswitch_core::config::{
        Backend, ParallelConfig, ProcOpts, Randomizer, StepSize, DEFAULT_WINDOW,
    };
    pub use edgeswitch_core::error_rate::error_rate;
    pub use edgeswitch_core::obs::{ObsSpec, Phase, RunReport};
    // The per-driver free functions (`sequential_edge_switch`,
    // `parallel_edge_switch`, `simulate_parallel` and the Curveball
    // twins) are no longer part of the prelude: [`Run`] is the front
    // door. They remain callable through their full module paths.
    pub use edgeswitch_core::parallel::{
        child_entry_from_env, MsgCounts, MsgKind, ParallelOutcome, RankStats, StepTelemetry,
    };
    pub use edgeswitch_core::run::{Run, RunError, RunOutcome, SequentialRun};
    pub use edgeswitch_core::trade::{CurveballOutcome, TradeBudget};
    pub use edgeswitch_core::variants::{sequential_edge_switch_connected, sequential_exact_visit};
    pub use edgeswitch_core::visit::VisitTracker;
    pub use edgeswitch_dist::harmonic::{expected_touches, switch_ops_for_visit_rate};
    pub use edgeswitch_dist::rng::{rank_rng, root_rng};
    pub use edgeswitch_dist::{binomial, multinomial};
    pub use edgeswitch_graph::degree::{erdos_gallai, havel_hakimi, power_law_sequence};
    pub use edgeswitch_graph::generators::{
        contact_network, erdos_renyi_gnm, erdos_renyi_gnp, preferential_attachment, random_regular,
        small_world, stochastic_block_model, ContactParams, Dataset,
    };
    pub use edgeswitch_graph::metrics::{
        average_clustering_exact, average_clustering_sampled, average_shortest_path_sampled,
        degree_assortativity, is_connected, transitivity, triangle_count,
    };
    pub use edgeswitch_graph::{Edge, Graph, Partitioner, SchemeKind, VertexId};
    pub use edgeswitch_scalesim::{des_curveball, des_parallel, strong_scaling, CostModel};
}
