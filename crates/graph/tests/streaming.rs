//! Streamed-pipeline equivalence and determinism (PR 10 satellite
//! suite): `build_stores_streamed` must be logically identical to the
//! materialized `build_stores` on every existing graph family, the
//! prescribed-degree constructor must be exact and bit-reproducible
//! across processor counts, and `Graph::from_stream` must agree with
//! `Graph::from_edges`.

use edgeswitch_graph::generators::{
    contact_network, erdos_renyi_gnm, pa_stream_graph, preferential_attachment, random_regular,
    small_world, stochastic_block_model, ContactParams, DegreeSequence, PaStream, StreamSpec,
};
use edgeswitch_graph::store::{build_rank_store_streamed, build_stores, build_stores_streamed};
use edgeswitch_graph::stream::{EdgeStream, IterStream, OwnedOnly};
use edgeswitch_graph::{Edge, Graph, Partitioner, SchemeKind};
use rand::SeedableRng;
use rand_pcg::Pcg64;

fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = Pcg64::seed_from_u64(20140901);
    vec![
        ("erdos_renyi", erdos_renyi_gnm(400, 1600, &mut rng)),
        ("preferential", preferential_attachment(300, 4, &mut rng)),
        ("small_world", small_world(400, 6, 0.1, &mut rng)),
        (
            "random_regular",
            random_regular(200, 6, &mut rng).expect("regular graph"),
        ),
        (
            "sbm",
            stochastic_block_model(
                &[100, 80, 60],
                &[
                    vec![0.2, 0.01, 0.01],
                    vec![0.01, 0.2, 0.01],
                    vec![0.01, 0.01, 0.2],
                ],
                &mut rng,
            ),
        ),
        (
            "contact",
            contact_network(ContactParams::miami_like(300), &mut rng),
        ),
        ("pa_stream", pa_stream_graph(300, 4, 7)),
        (
            "degree_seq",
            DegreeSequence::power_law(300, 2.5, 2, 30, 7)
                .unwrap()
                .build(7),
        ),
    ]
}

/// The headline equivalence: streaming a graph's pool order through
/// `build_stores_streamed` yields stores identical to `build_stores` —
/// same ranks, same edges, same pool order — for every family and
/// every partitioning scheme.
#[test]
fn streamed_stores_match_materialized_stores_everywhere() {
    for (name, g) in families() {
        let mut rng = Pcg64::seed_from_u64(5);
        for kind in SchemeKind::all() {
            for p in [1usize, 3, 4] {
                let part = Partitioner::build(kind, &g, p, &mut rng);
                let reference = build_stores(&g, &part);
                let mut stream = IterStream::with_chunk_edges(g.edges(), 101);
                let streamed = build_stores_streamed(&mut stream, &part);
                assert_eq!(streamed.len(), reference.len());
                for (s, r) in streamed.iter().zip(&reference) {
                    assert_eq!(s.rank(), r.rank());
                    let a: Vec<Edge> = s.edges().collect();
                    let b: Vec<Edge> = r.edges().collect();
                    assert_eq!(a, b, "{name} {kind:?} p={p} rank={}", s.rank());
                    assert!(s.check_consistent());
                }
            }
        }
    }
}

/// Per-rank regeneration (`build_rank_store_streamed` over a fresh
/// stream) equals the corresponding slice of the one-pass split.
#[test]
fn rank_local_streams_match_one_pass_split() {
    let spec = StreamSpec::Pa {
        n: 500,
        d: 4,
        seed: 13,
    };
    let part = Partitioner::hash_division(4);
    let mut one_pass = spec.stream().unwrap();
    let split = build_stores_streamed(&mut *one_pass, &part);
    for (rank, joint) in split.iter().enumerate() {
        let mut s = spec.stream().unwrap();
        let local = build_rank_store_streamed(&mut *s, &part, rank);
        let a: Vec<Edge> = local.edges().collect();
        let b: Vec<Edge> = joint.edges().collect();
        assert_eq!(a, b, "rank {rank}");
    }
}

/// Degree-sequence constructor: exact degrees, simple graph, and the
/// emitted edge sequence is bit-identical across p ∈ {1, 2, 4} (each
/// rank's owned subsequence is exactly the p=1 sequence filtered).
#[test]
fn degree_sequence_constructor_is_exact_and_p_invariant() {
    let ds = DegreeSequence::power_law(800, 2.4, 2, 60, 99).unwrap();
    let g = ds.build(99);
    assert_eq!(g.degree_sequence(), ds.degrees(), "exact sequence");
    g.check_invariants().unwrap();

    fn collect(mut s: impl EdgeStream) -> Vec<Edge> {
        let (mut all, mut chunk) = (Vec::new(), Vec::new());
        while s.next_chunk(&mut chunk) {
            all.extend_from_slice(&chunk);
        }
        all
    }
    let full = collect(ds.stream(99));
    assert_eq!(full.len(), ds.num_edges());
    for p in [1usize, 2, 4] {
        let part = Partitioner::hash_multiplication(p);
        let mut seen = 0usize;
        for rank in 0..p {
            let got = collect(OwnedOnly::new(ds.stream(99), &part, rank));
            let expect: Vec<Edge> = full
                .iter()
                .copied()
                .filter(|e| part.owner(e.src()) == rank)
                .collect();
            assert_eq!(got, expect, "p={p} rank={rank} diverged");
            seen += got.len();
        }
        assert_eq!(seen, full.len(), "p={p}: ranks must partition the stream");
    }
}

/// `Graph::from_stream` equals `Graph::from_edges` on duplicate-free
/// input, and deduplicates (rather than erroring) on re-emission.
#[test]
fn from_stream_matches_from_edges_and_dedups() {
    let (_, g) = &families()[0];
    let a = Graph::from_edges(g.num_vertices(), g.edges()).unwrap();
    let mut s = IterStream::with_chunk_edges(g.edges(), 33);
    let b = Graph::from_stream(g.num_vertices(), &mut s).unwrap();
    assert!(a.same_edge_set(&b));
    assert_eq!(a.edge_digest(), b.edge_digest());

    let dup: Vec<Edge> = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 1)];
    let mut s = IterStream::new(dup);
    let g = Graph::from_stream(3, &mut s).unwrap();
    assert_eq!(g.num_edges(), 2);
}

/// The PA stream materialized via `from_stream` equals the same spec's
/// stores reassembled — generation and partitioned generation agree.
#[test]
fn pa_spec_build_matches_assembled_stores() {
    let spec = StreamSpec::Pa {
        n: 600,
        d: 3,
        seed: 4,
    };
    let g = spec.build().unwrap();
    let part = Partitioner::hash_division(3);
    let mut s = spec.stream().unwrap();
    let stores = build_stores_streamed(&mut *s, &part);
    let h = edgeswitch_graph::store::assemble_graph(g.num_vertices(), &stores);
    assert!(g.same_edge_set(&h));
    // Raw emission bound holds after dedup.
    assert!(g.num_edges() as u64 <= PaStream::raw_edges(600, 3));
}

/// `from_edges` honors iterators that only report an upper bound
/// (the satellite fix: capacity from the checked upper bound).
#[test]
fn from_edges_accepts_upper_bound_only_hints() {
    struct UpperOnly<I: Iterator<Item = Edge>> {
        inner: I,
        upper: usize,
    }
    impl<I: Iterator<Item = Edge>> Iterator for UpperOnly<I> {
        type Item = Edge;
        fn next(&mut self) -> Option<Edge> {
            self.inner.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            (0, Some(self.upper))
        }
    }
    let edges: Vec<Edge> = (0..50u64).map(|i| Edge::new(i, i + 1)).collect();
    let it = UpperOnly {
        inner: edges.iter().copied(),
        upper: edges.len(),
    };
    let g = Graph::from_edges(51, it).unwrap();
    assert_eq!(g.num_edges(), 50);
    g.check_invariants().unwrap();
}
