//! Model-based equivalence: the cache-compact hot-path storage
//! (`NeighborSet` over a sorted `Vec<u32>`, `EdgePool` keyed on packed
//! `u64` edges with the in-repo Fx hasher) must be
//! operation-for-operation indistinguishable from the obvious reference
//! models (`BTreeSet`, `std` `HashSet`). Seeded exhaustive-ish random
//! op sequences rather than proptest, so the suite runs in the offline
//! shadow workspace where proptest is resolve-only.

use edgeswitch_graph::adjacency::NeighborSet;
use edgeswitch_graph::sampling::EdgePool;
use edgeswitch_graph::{Edge, VertexId};
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use std::collections::{BTreeSet, HashSet};

#[test]
fn neighbor_set_matches_btreeset_model() {
    for seed in 0..8u64 {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut sut = NeighborSet::new();
        let mut model: BTreeSet<VertexId> = BTreeSet::new();
        for step in 0..4000 {
            let v: VertexId = rng.gen_range(0..120);
            match rng.gen_range(0..3) {
                0 => assert_eq!(sut.insert(v), model.insert(v), "insert {v} @ {step}"),
                1 => assert_eq!(sut.remove(v), model.remove(&v), "remove {v} @ {step}"),
                _ => assert_eq!(sut.contains(v), model.contains(&v), "contains {v} @ {step}"),
            }
            assert_eq!(sut.len(), model.len());
            assert_eq!(sut.is_empty(), model.is_empty());
        }
        // Iteration agrees with the sorted model order exactly.
        let got: Vec<VertexId> = sut.iter().collect();
        let want: Vec<VertexId> = model.iter().copied().collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn intersection_size_matches_btreeset_model() {
    let mut rng = Pcg64::seed_from_u64(99);
    for case in 0..40 {
        // Skew the sizes so both the two-pointer merge and the galloping
        // branch get exercised.
        let (na, nb) = if case % 3 == 0 { (500, 6) } else { (60, 40) };
        let a_model: BTreeSet<VertexId> = (0..na).map(|_| rng.gen_range(0..1000)).collect();
        let b_model: BTreeSet<VertexId> = (0..nb).map(|_| rng.gen_range(0..1000)).collect();
        let a: NeighborSet = a_model.iter().copied().collect();
        let b: NeighborSet = b_model.iter().copied().collect();
        let want = a_model.intersection(&b_model).count();
        assert_eq!(a.intersection_size(&b), want, "case {case}");
        assert_eq!(b.intersection_size(&a), want, "case {case} (swapped)");
    }
}

fn random_edge<R: Rng + ?Sized>(rng: &mut R, universe: u64) -> Option<Edge> {
    Edge::try_new(rng.gen_range(0..universe), rng.gen_range(0..universe))
}

#[test]
fn edge_pool_matches_hashset_model() {
    for seed in 0..8u64 {
        let mut rng = Pcg64::seed_from_u64(1000 + seed);
        let mut sut = EdgePool::new();
        let mut model: HashSet<Edge> = HashSet::new();
        for step in 0..4000 {
            let Some(e) = random_edge(&mut rng, 40) else {
                continue;
            };
            match rng.gen_range(0..3) {
                0 => assert_eq!(sut.insert(e), model.insert(e), "insert {e} @ {step}"),
                1 => assert_eq!(sut.remove(e), model.remove(&e), "remove {e} @ {step}"),
                _ => assert_eq!(sut.contains(e), model.contains(&e), "contains {e} @ {step}"),
            }
            assert_eq!(sut.len(), model.len());
        }
        assert!(sut.check_consistent(), "seed {seed}");
        let mut got: Vec<Edge> = sut.iter().collect();
        let mut want: Vec<Edge> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "seed {seed}");
        // Samples come from the surviving set.
        if !sut.is_empty() {
            for _ in 0..50 {
                let s = sut.sample(&mut rng).unwrap();
                assert!(sut.contains(s));
            }
        }
    }
}

/// The dense-array order inside the pool — which is what `sample` indexes
/// and therefore what the switch algorithms' RNG draw sequence observes —
/// must be a pure function of the operation sequence, independent of
/// hasher state or allocation history. Same seed ⇒ same draw sequence ⇒
/// same final edge set, the `deterministic_under_seed` guarantee.
#[test]
fn pool_order_is_a_pure_function_of_the_op_sequence() {
    let build = || {
        let mut rng = Pcg64::seed_from_u64(4242);
        let mut pool = EdgePool::new();
        for _ in 0..3000 {
            if let Some(e) = random_edge(&mut rng, 60) {
                if rng.gen_range(0..4) == 0 {
                    pool.remove(e);
                } else {
                    pool.insert(e);
                }
            }
        }
        pool
    };
    let a = build();
    let b = build();
    assert_eq!(
        a.iter().collect::<Vec<_>>(),
        b.iter().collect::<Vec<_>>(),
        "dense order diverged between identical op sequences"
    );
    // And the sampled stream is identical draw for draw.
    let mut ra = Pcg64::seed_from_u64(7);
    let mut rb = Pcg64::seed_from_u64(7);
    for _ in 0..500 {
        assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
    }
}
