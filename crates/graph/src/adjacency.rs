//! Neighbor sets stored as flat sorted arrays.
//!
//! The paper stores each adjacency list as a balanced binary search tree
//! so the parallel-edge check during a switch costs `O(log d_u)`
//! (Section 3.3). We keep the same asymptotic bound but swap the tree for
//! a sorted `Vec<u32>`: membership is a branch-predictable binary search
//! over one contiguous cache-resident array instead of a pointer chase
//! through heap-allocated tree nodes, and insert/remove are a binary
//! search plus a contiguous `memmove` of at most `d` 4-byte labels —
//! for the degrees real graphs have, that move is cheaper than a single
//! B-tree node split. Labels are narrowed to `u32` at the boundary (the
//! packed-edge limit, [`crate::types::MAX_PACKED_VERTEX`]), halving the
//! bytes touched per probe versus `u64` tree nodes.

use crate::types::{VertexId, MAX_PACKED_VERTEX};

/// A sorted set of neighbor vertex labels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NeighborSet {
    /// Strictly increasing labels.
    inner: Vec<u32>,
}

#[inline]
fn narrow(v: VertexId) -> u32 {
    assert!(
        v <= MAX_PACKED_VERTEX,
        "vertex label {v} beyond 2^32-1; packed storage supports at most \
         2^32 vertices"
    );
    v as u32
}

impl NeighborSet {
    /// Empty neighbor set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neighbors (the vertex degree for full adjacency, the
    /// *reduced degree* for reduced adjacency).
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether there are no neighbors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `O(log d)` membership test (binary search over the flat array).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        if v > MAX_PACKED_VERTEX {
            return false;
        }
        self.inner.binary_search(&(v as u32)).is_ok()
    }

    /// Insert a neighbor; `false` if already present.
    ///
    /// `O(log d)` search plus an `O(d)` contiguous shift of 4-byte
    /// labels (one `memmove`, not a tree rebalance).
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let v = narrow(v);
        match self.inner.binary_search(&v) {
            Ok(_) => false,
            Err(at) => {
                self.inner.insert(at, v);
                true
            }
        }
    }

    /// Remove a neighbor; `false` if absent. Same cost shape as
    /// [`NeighborSet::insert`].
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        if v > MAX_PACKED_VERTEX {
            return false;
        }
        match self.inner.binary_search(&(v as u32)) {
            Ok(at) => {
                self.inner.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate neighbors in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.inner.iter().map(|&v| v as VertexId)
    }

    /// Count of common neighbors with `other`.
    ///
    /// Linear two-pointer merge over the two sorted arrays — `O(d1 + d2)`
    /// with no per-element probes. When one set is much smaller
    /// (`16·min < max`), switches to galloping: a binary search in the
    /// larger set per element of the smaller, `O(min(d1,d2) · log
    /// max(d1,d2))`, which wins on skewed degree pairs.
    pub fn intersection_size(&self, other: &NeighborSet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (&self.inner, &other.inner)
        } else {
            (&other.inner, &self.inner)
        };
        if small.is_empty() {
            return 0;
        }
        if small.len() * 16 < large.len() {
            // Galloping: probe each small element, narrowing the search
            // window from the left as both arrays are sorted.
            let mut count = 0usize;
            let mut window = &large[..];
            for &v in small {
                match window.binary_search(&v) {
                    Ok(at) => {
                        count += 1;
                        window = &window[at + 1..];
                    }
                    Err(at) => window = &window[at..],
                }
                if window.is_empty() {
                    break;
                }
            }
            return count;
        }
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            let (a, b) = (small[i], large[j]);
            count += (a == b) as usize;
            i += (a <= b) as usize;
            j += (b <= a) as usize;
        }
        count
    }
}

impl FromIterator<VertexId> for NeighborSet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        let mut inner: Vec<u32> = iter.into_iter().map(narrow).collect();
        inner.sort_unstable();
        inner.dedup();
        NeighborSet { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NeighborSet::new();
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.contains(1));
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let s: NeighborSet = [9, 2, 7, 4].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![2, 4, 7, 9]);
    }

    #[test]
    fn from_iter_dedups() {
        let s: NeighborSet = [5, 1, 5, 1, 5].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn intersection_size_counts_common() {
        let a: NeighborSet = [1, 2, 3, 4, 5].into_iter().collect();
        let b: NeighborSet = [4, 5, 6].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        let empty = NeighborSet::new();
        assert_eq!(a.intersection_size(&empty), 0);
    }

    #[test]
    fn intersection_size_galloping_path() {
        // Skewed sizes trigger the galloping branch (3 * 16 < 1000).
        let small: NeighborSet = [10, 500, 999].into_iter().collect();
        let large: NeighborSet = (0..1000u64).collect();
        assert_eq!(small.intersection_size(&large), 3);
        assert_eq!(large.intersection_size(&small), 3);
        let disjoint: NeighborSet = [2000, 3000].into_iter().collect();
        assert_eq!(disjoint.intersection_size(&large), 0);
    }

    #[test]
    fn oversized_labels_are_never_members() {
        let s: NeighborSet = [1, 2].into_iter().collect();
        assert!(!s.contains(MAX_PACKED_VERTEX + 1));
        let mut s = s;
        assert!(!s.remove(MAX_PACKED_VERTEX + 1));
        assert!(s.contains(1) && s.contains(2));
    }

    #[test]
    #[should_panic(expected = "2^32")]
    fn insert_rejects_oversized_label() {
        NeighborSet::new().insert(MAX_PACKED_VERTEX + 1);
    }
}
