//! Neighbor sets with logarithmic membership tests.
//!
//! The paper stores each adjacency list as a balanced binary search tree so
//! that the parallel-edge check during a switch costs `O(log d_u)`
//! (Section 3.3). [`NeighborSet`] wraps a B-tree set and adds the
//! set-intersection counting needed by the clustering-coefficient metric.

use crate::types::VertexId;
use std::collections::BTreeSet;

/// A sorted set of neighbor vertex labels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NeighborSet {
    inner: BTreeSet<VertexId>,
}

impl NeighborSet {
    /// Empty neighbor set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neighbors (the vertex degree for full adjacency, the
    /// *reduced degree* for reduced adjacency).
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether there are no neighbors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `O(log d)` membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.inner.contains(&v)
    }

    /// Insert a neighbor; `false` if already present.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        self.inner.insert(v)
    }

    /// Remove a neighbor; `false` if absent.
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        self.inner.remove(&v)
    }

    /// Iterate neighbors in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.inner.iter().copied()
    }

    /// Count of common neighbors with `other`.
    ///
    /// Walks the smaller set and probes the larger, giving
    /// `O(min(d1, d2) log max(d1, d2))`.
    pub fn intersection_size(&self, other: &NeighborSet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().filter(|&v| large.contains(v)).count()
    }
}

impl FromIterator<VertexId> for NeighborSet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        NeighborSet {
            inner: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NeighborSet::new();
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.contains(1));
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let s: NeighborSet = [9, 2, 7, 4].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![2, 4, 7, 9]);
    }

    #[test]
    fn intersection_size_counts_common() {
        let a: NeighborSet = [1, 2, 3, 4, 5].into_iter().collect();
        let b: NeighborSet = [4, 5, 6].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        let empty = NeighborSet::new();
        assert_eq!(a.intersection_size(&empty), 0);
    }
}
