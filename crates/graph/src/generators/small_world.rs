//! Watts–Strogatz small-world graphs.

use crate::graph::Graph;
use crate::types::Edge;
use rand::Rng;

/// Watts–Strogatz model: a ring lattice where each vertex connects to its
/// `k/2` nearest neighbors on each side, with every edge independently
/// rewired with probability `beta` (keeping the graph simple — rewires
/// that would create a loop or parallel edge are retried a bounded number
/// of times and otherwise left in place).
///
/// # Panics
/// Panics unless `k` is even, `k < n`, and `0 ≤ beta ≤ 1`.
pub fn small_world<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(
        k.is_multiple_of(2),
        "k must be even (k/2 neighbors per side)"
    );
    assert!(k < n, "ring lattice needs k < n");
    assert!((0.0..=1.0).contains(&beta), "beta out of range");
    let n64 = n as u64;
    let mut g = Graph::with_edge_capacity(n, n * k / 2);
    for v in 0..n64 {
        for j in 1..=(k as u64 / 2) {
            let w = (v + j) % n64;
            // Each lattice edge added once (by its "left" endpoint).
            g.add_edge(Edge::new(v, w))
                .expect("lattice edge duplicated");
        }
    }
    if beta == 0.0 {
        return g;
    }
    // Rewire pass: iterate the original lattice edges deterministically.
    for v in 0..n64 {
        for j in 1..=(k as u64 / 2) {
            let w = (v + j) % n64;
            let old = Edge::new(v, w);
            if !g.has_edge(old) {
                continue; // already rewired away by an earlier step
            }
            if rng.gen_bool(beta) {
                // Replace (v, w) with (v, w') for a uniform random w'.
                for _attempt in 0..32 {
                    let cand = rng.gen_range(0..n64);
                    let Some(new) = Edge::try_new(v, cand) else {
                        continue;
                    };
                    if !g.has_edge(new) {
                        g.remove_edge(old).unwrap();
                        g.add_edge(new).unwrap();
                        break;
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_clustering_exact;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn lattice_without_rewiring() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = small_world(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 20 * 2);
        for v in 0..20u64 {
            assert_eq!(g.degree(v), 4);
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn rewiring_preserves_edge_count_and_simplicity() {
        let mut rng = Pcg64::seed_from_u64(2);
        let g = small_world(500, 10, 0.1, &mut rng);
        assert_eq!(g.num_edges(), 500 * 5);
        g.check_invariants().unwrap();
    }

    #[test]
    fn low_beta_keeps_high_clustering() {
        let mut rng = Pcg64::seed_from_u64(3);
        let ordered = small_world(400, 10, 0.0, &mut rng);
        let rewired = small_world(400, 10, 1.0, &mut rng);
        let c_ordered = average_clustering_exact(&ordered);
        let c_random = average_clustering_exact(&rewired);
        assert!(
            c_ordered > 0.5,
            "ring lattice clustering should be ~2/3, got {c_ordered}"
        );
        assert!(
            c_random < c_ordered / 2.0,
            "full rewiring should destroy clustering: {c_random} vs {c_ordered}"
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        small_world(10, 3, 0.1, &mut Pcg64::seed_from_u64(4));
    }
}
