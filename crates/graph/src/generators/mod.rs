//! Random-graph generators for the paper's dataset inventory (Table 2).
//!
//! Real-world inputs used by the paper (synthetic city contact networks,
//! Flickr, LiveJournal) are unavailable; each has a generator producing a
//! graph with the structural property that experiment depends on — high
//! clustering with label locality for the contact networks, heavy-tailed
//! degrees for the web crawls — at a scale that fits one machine. See
//! DESIGN.md §2 for the substitution argument.
//!
//! Two generators are *streaming and recomputation-based* — their edge
//! sequence is a pure function of a few-words spec, so distributed
//! ranks regenerate their own share instead of receiving it
//! ([`DegreeSequence`], [`PaStream`], packaged as [`StreamSpec`]; see
//! `crate::stream` and DESIGN.md §4j).

mod contact;
mod datasets;
mod degree_seq;
mod erdos_renyi;
pub mod families;
mod pa_stream;
mod preferential;
mod small_world;
mod spec;

pub use contact::{contact_network, ContactParams};
pub use datasets::{Dataset, DatasetSpec};
pub use degree_seq::{DegreeSeqStream, DegreeSequence};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use families::{random_regular, stochastic_block_model};
pub use pa_stream::{pa_stream_edge, pa_stream_graph, PaStream};
pub use preferential::preferential_attachment;
pub use small_world::small_world;
pub use spec::StreamSpec;
