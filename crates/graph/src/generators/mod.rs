//! Random-graph generators for the paper's dataset inventory (Table 2).
//!
//! Real-world inputs used by the paper (synthetic city contact networks,
//! Flickr, LiveJournal) are unavailable; each has a generator producing a
//! graph with the structural property that experiment depends on — high
//! clustering with label locality for the contact networks, heavy-tailed
//! degrees for the web crawls — at a scale that fits one machine. See
//! DESIGN.md §2 for the substitution argument.

mod contact;
mod datasets;
mod erdos_renyi;
pub mod families;
mod preferential;
mod small_world;

pub use contact::{contact_network, ContactParams};
pub use datasets::{Dataset, DatasetSpec};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use families::{random_regular, stochastic_block_model};
pub use preferential::preferential_attachment;
pub use small_world::small_world;
