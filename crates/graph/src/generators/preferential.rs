//! Barabási–Albert preferential attachment.

use crate::graph::Graph;
use crate::types::{Edge, VertexId};
use rand::Rng;

/// Preferential-attachment graph: vertices arrive one at a time and attach
/// `d` edges to existing vertices chosen with probability proportional to
/// their current degree (the repeated-endpoints trick makes each draw
/// `O(1)`). Produces the heavily skewed degree distribution of the
/// paper's PA-100M / PA-1B datasets; average degree approaches `2d`.
///
/// # Panics
/// Panics unless `1 ≤ d < n`.
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d >= 1 && d < n, "need 1 <= d < n (d={d}, n={n})");
    // Exact final edge count: d seed edges + d per later arrival.
    let mut g = Graph::with_edge_capacity(n, d + n.saturating_sub(d + 1) * d);
    // Every edge endpoint is pushed here, so sampling an index uniformly
    // samples a vertex proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * d);
    // Bootstrap: vertex `d` connects to each of 0..d uniformly (they start
    // with no edges, so "proportional to degree" is undefined; the
    // standard convention connects the first arrival to all seeds).
    for seed in 0..d as u64 {
        g.add_edge(Edge::new(seed, d as u64)).unwrap();
        endpoints.push(seed);
        endpoints.push(d as u64);
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(d);
    for v in (d as u64 + 1)..n as u64 {
        targets.clear();
        // Draw d distinct targets preferentially; rejection on duplicates.
        while targets.len() < d {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            g.add_edge(Edge::new(v, t))
                .expect("targets are distinct existing vertices");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn edge_count_matches_formula() {
        let mut rng = Pcg64::seed_from_u64(1);
        let (n, d) = (1000, 5);
        let g = preferential_attachment(n, d, &mut rng);
        // d seed edges + d per arrival after the first.
        assert_eq!(g.num_edges(), d + (n - d - 1) * d);
        g.check_invariants().unwrap();
    }

    #[test]
    fn min_degree_is_d() {
        let mut rng = Pcg64::seed_from_u64(2);
        let g = preferential_attachment(500, 4, &mut rng);
        let min_deg = (0..500u64).map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 4, "every arrival brings d edges, got {min_deg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = preferential_attachment(3000, 5, &mut rng);
        let max_deg = g.max_degree();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 6.0 * avg,
            "preferential attachment should produce hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = preferential_attachment(200, 3, &mut Pcg64::seed_from_u64(4));
        let b = preferential_attachment(200, 3, &mut Pcg64::seed_from_u64(4));
        assert!(a.same_edge_set(&b));
    }

    #[test]
    #[should_panic(expected = "1 <= d < n")]
    fn rejects_bad_d() {
        preferential_attachment(5, 5, &mut Pcg64::seed_from_u64(5));
    }
}
