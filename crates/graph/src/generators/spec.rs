//! A few-words description of a streaming generator — the seed-boot
//! currency of the distributed pipeline.
//!
//! A [`StreamSpec`] is everything a rank needs to regenerate its share
//! of the graph: generator family, size parameters, and the seed. It
//! encodes in O(1) bytes (see the process backend's boot codec), which
//! is what shrinks a process-world's boot blob from the O(m) edge list
//! to a constant — each child builds its own [`PartitionStore`] from
//! `spec.stream()` filtered through [`crate::stream::OwnedOnly`].
//!
//! [`PartitionStore`]: crate::store::PartitionStore

use super::degree_seq::DegreeSequence;
use super::pa_stream::PaStream;
use crate::graph::Graph;
use crate::stream::EdgeStream;
use crate::types::GraphError;

/// A self-contained, O(1)-sized recipe for a streaming generator.
///
/// Both variants are *recomputation* generators: the emitted edge
/// sequence is a pure function of the spec, so every rank that holds a
/// copy can replay it identically.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamSpec {
    /// Communication-free preferential attachment
    /// ([`PaStream`]): `n` vertices, `d` edges per arrival.
    Pa {
        /// Number of vertices.
        n: usize,
        /// Edges per arriving vertex (minimum degree before dedup).
        d: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Prescribed power-law degree sequence realized by the streaming
    /// generalized Havel–Hakimi constructor
    /// ([`DegreeSequence`]): the sequence itself is
    /// re-sampled deterministically from the seed on every rank, so the
    /// spec stays O(1) instead of carrying O(n) degrees.
    PowerLawSeq {
        /// Number of vertices.
        n: usize,
        /// Power-law exponent (`Pr{d = k} ∝ k^(−gamma)`).
        gamma: f64,
        /// Minimum sampled degree.
        d_min: usize,
        /// Maximum sampled degree (capped at `n − 1`).
        d_max: usize,
        /// Seed for both the degree sampling and the realization order.
        seed: u64,
    },
}

impl StreamSpec {
    /// Number of vertices of the generated graph.
    pub fn num_vertices(&self) -> usize {
        match *self {
            StreamSpec::Pa { n, .. } | StreamSpec::PowerLawSeq { n, .. } => n,
        }
    }

    /// Cheap parameter validation (no generation work): the checks a
    /// job submission endpoint runs before accepting the spec.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StreamSpec::Pa { n, d, .. } => {
                if d < 1 || d >= n {
                    return Err(format!("pa-stream requires 1 <= d < n (got d={d}, n={n})"));
                }
                if n as u128 > 1 << 32 {
                    return Err(format!("pa-stream n={n} exceeds the 2^32 vertex limit"));
                }
                Ok(())
            }
            StreamSpec::PowerLawSeq {
                n,
                gamma,
                d_min,
                d_max,
                ..
            } => {
                if n < 2 {
                    return Err(format!("degree-seq requires n >= 2 (got n={n})"));
                }
                if n as u128 > 1 << 32 {
                    return Err(format!("degree-seq n={n} exceeds the 2^32 vertex limit"));
                }
                if d_min < 1 || d_max < d_min {
                    return Err(format!(
                        "degree-seq requires 1 <= d_min <= d_max (got d_min={d_min}, d_max={d_max})"
                    ));
                }
                if !(gamma.is_finite() && gamma > 0.0) {
                    return Err(format!(
                        "degree-seq gamma must be finite and > 0 (got {gamma})"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Open the stream this spec describes. Fails only for a
    /// `PowerLawSeq` whose sampled sequence cannot be made graphical
    /// (pathological parameters; see [`DegreeSequence::power_law`]).
    pub fn stream(&self) -> Result<Box<dyn EdgeStream + Send>, GraphError> {
        match *self {
            StreamSpec::Pa { n, d, seed } => Ok(Box::new(PaStream::new(n, d, seed))),
            StreamSpec::PowerLawSeq {
                n,
                gamma,
                d_min,
                d_max,
                seed,
            } => Ok(Box::new(
                DegreeSequence::power_law(n, gamma, d_min, d_max, seed)?.stream(seed),
            )),
        }
    }

    /// Materialize the full (deduplicated) graph — the single-process
    /// reference every distributed realization must match.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let mut stream = self.stream()?;
        Graph::from_stream(self.num_vertices(), &mut *stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{build_rank_store_streamed, build_stores};
    use crate::Partitioner;

    #[test]
    fn validate_screens_parameters() {
        assert!(StreamSpec::Pa {
            n: 100,
            d: 4,
            seed: 1
        }
        .validate()
        .is_ok());
        assert!(StreamSpec::Pa {
            n: 4,
            d: 4,
            seed: 1
        }
        .validate()
        .is_err());
        assert!(StreamSpec::Pa {
            n: 4,
            d: 0,
            seed: 1
        }
        .validate()
        .is_err());
        let ok = StreamSpec::PowerLawSeq {
            n: 100,
            gamma: 2.5,
            d_min: 2,
            d_max: 10,
            seed: 1,
        };
        assert!(ok.validate().is_ok());
        let bad_gamma = StreamSpec::PowerLawSeq {
            n: 100,
            gamma: f64::NAN,
            d_min: 2,
            d_max: 10,
            seed: 1,
        };
        assert!(bad_gamma.validate().is_err());
        let bad_range = StreamSpec::PowerLawSeq {
            n: 100,
            gamma: 2.5,
            d_min: 5,
            d_max: 2,
            seed: 1,
        };
        assert!(bad_range.validate().is_err());
    }

    #[test]
    fn rank_local_regeneration_matches_the_materialized_split() {
        // The seed-boot guarantee: a child that regenerates its store
        // from the spec holds exactly what build_stores would have
        // shipped it — same edges, same pool order.
        for spec in [
            StreamSpec::Pa {
                n: 400,
                d: 3,
                seed: 21,
            },
            StreamSpec::PowerLawSeq {
                n: 300,
                gamma: 2.5,
                d_min: 2,
                d_max: 25,
                seed: 21,
            },
        ] {
            let g = spec.build().unwrap();
            let part = Partitioner::hash_division(3);
            let reference = build_stores(&g, &part);
            for (rank, joint) in reference.iter().enumerate() {
                let mut stream = spec.stream().unwrap();
                let local = build_rank_store_streamed(&mut *stream, &part, rank);
                let a: Vec<_> = local.edges().collect();
                let b: Vec<_> = joint.edges().collect();
                assert_eq!(a, b, "{spec:?} rank {rank}");
            }
        }
    }
}
