//! Communication-free streaming preferential attachment.
//!
//! Sanders/Schulz-style recomputation generation (arXiv 1602.07106):
//! instead of materializing the Batagelj–Brandes endpoint array — whose
//! O(m) residency is exactly what a distributed generator must avoid —
//! every random choice is a *seeded hash* of its position, so any
//! worker can re-derive any predecessor's choice on demand. Rank `r`
//! wraps the stream in [`crate::stream::OwnedOnly`] and emits exactly
//! the edges it owns with zero communication; the union over ranks is
//! the full graph, bit-identical for any processor count.
//!
//! The slot model: edge `i` occupies slots `2i` (its arriving vertex)
//! and `2i + 1` (its target). The first `d` edges are the seed star —
//! edge `k < d` joins hub `d` to vertex `k` — and each later vertex
//! `v = d+1, …, n−1` arrives with `d` edges, so edge `i ≥ d` belongs to
//! vertex `v(i) = d + 1 + (i − d)/d`. Its target is found by drawing a
//! uniform slot `j ∈ [0, 2i)` and *resolving* it: an even slot is the
//! arriving vertex of edge `j/2` (computable in O(1)); an odd slot
//! means "copy edge `j/2`'s target", which recurses on that edge's own
//! first draw. Slot indices strictly decrease, so the chain terminates
//! (expected O(1) steps), and landing on an odd slot with probability
//! proportional to prior occurrences is precisely the
//! degree-proportional attachment that produces the heavy tail. Draws
//! that would self-loop retry with the attempt counter; occasional
//! duplicate edges are emitted and deduplicated by the consumer
//! (`Graph::from_stream` / store insert), per the streaming contract.

use crate::graph::Graph;
use crate::hashing::mix64;
use crate::stream::{EdgeStream, DEFAULT_CHUNK_EDGES};
use crate::types::Edge;

/// Retry budget for re-drawing a self-looping target before falling
/// back to the hub (always a valid, distinct earlier vertex). The
/// self-loop probability per attempt is `deg(v)/2i < 1/2`, so 64
/// independent attempts fail with probability < 2⁻⁶⁴ — the fallback is
/// a termination guarantee, not a code path that runs in practice.
const MAX_ATTEMPTS: u64 = 64;

/// The seeded hash substream: draw `attempt` for edge `i`.
#[inline]
fn draw(seed: u64, i: u64, attempt: u64) -> u64 {
    mix64(mix64(seed) ^ mix64(i) ^ mix64(attempt.wrapping_add(0x7061_5f61_7474)))
}

/// Map a hash word uniformly onto `[0, range)` (Lemire reduction).
#[inline]
fn bounded(h: u64, range: u64) -> u64 {
    ((h as u128 * range as u128) >> 64) as u64
}

/// The arriving vertex of edge `i ≥ d` (edges `< d` are the seed star).
#[inline]
fn arriving(d: u64, i: u64) -> u64 {
    d + 1 + (i - d) / d
}

/// Resolve slot `j` to the vertex occupying it, recomputing prior draws
/// from the seed instead of reading a stored endpoint array.
fn resolve(seed: u64, d: u64, mut j: u64) -> u64 {
    loop {
        let i = j / 2;
        if i < d {
            // Seed star: even slots hold the hub, odd slot 2k+1 holds k.
            return if j & 1 == 0 { d } else { i };
        }
        if j & 1 == 0 {
            return arriving(d, i);
        }
        // Odd slot: copy edge i's target — recurse on its first draw.
        j = bounded(draw(seed, i, 0), 2 * i);
    }
}

/// Edge `i` of the recomputation PA process over `(n, d, seed)` — a
/// pure function, the unit every rank can evaluate independently.
pub fn pa_stream_edge(seed: u64, d: u64, i: u64) -> Edge {
    if i < d {
        return Edge::new(i, d);
    }
    let v = arriving(d, i);
    // Fallback target: the hub, always present and never equal to v.
    let mut target = d;
    for attempt in 0..MAX_ATTEMPTS {
        let candidate = resolve(seed, d, bounded(draw(seed, i, attempt), 2 * i));
        if candidate != v {
            target = candidate;
            break;
        }
    }
    Edge::new(v, target)
}

/// Streaming communication-free preferential attachment: `n` vertices,
/// `d` edges per arrival, minimum degree `d` (before deduplication).
///
/// Emits `d + (n − d − 1)·d` raw edges in index order; consumers drop
/// the occasional duplicate, so the realized `m` is marginally smaller.
/// The emitted sequence is a pure function of `(n, d, seed)`.
pub struct PaStream {
    seed: u64,
    d: u64,
    next: u64,
    raw_edges: u64,
    chunk_edges: usize,
}

impl PaStream {
    /// Stream for an `n`-vertex, `d`-per-arrival process.
    ///
    /// # Panics
    /// Panics unless `1 ≤ d < n` and `n ≤ 2^32`.
    pub fn new(n: usize, d: usize, seed: u64) -> Self {
        assert!(
            d >= 1 && d < n,
            "preferential attachment requires 1 <= d < n (got d={d}, n={n})"
        );
        assert!(
            n as u128 <= 1 << 32,
            "preferential attachment over {n} vertices exceeds the 2^32 packed-storage limit"
        );
        PaStream {
            seed,
            d: d as u64,
            next: 0,
            raw_edges: Self::raw_edges(n, d),
            chunk_edges: DEFAULT_CHUNK_EDGES,
        }
    }

    /// Raw emitted edge count for `(n, d)`: the seed star plus `d` per
    /// arriving vertex (an upper bound on the deduplicated `m`).
    pub fn raw_edges(n: usize, d: usize) -> u64 {
        (d + n.saturating_sub(d + 1) * d) as u64
    }
}

impl EdgeStream for PaStream {
    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.raw_edges - self.next) as usize;
        (remaining, Some(remaining))
    }

    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool {
        chunk.clear();
        let end = self.raw_edges.min(self.next + self.chunk_edges as u64);
        for i in self.next..end {
            chunk.push(pa_stream_edge(self.seed, self.d, i));
        }
        self.next = end;
        !chunk.is_empty()
    }
}

/// Materialize the recomputation PA graph (deduplicated) — the
/// single-process convenience over [`PaStream`] + [`Graph::from_stream`].
pub fn pa_stream_graph(n: usize, d: usize, seed: u64) -> Graph {
    Graph::from_stream(n, &mut PaStream::new(n, d, seed))
        .expect("PA stream emits only in-range endpoints")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::OwnedOnly;
    use crate::Partitioner;

    fn collect(mut s: impl EdgeStream) -> Vec<Edge> {
        let (mut all, mut chunk) = (Vec::new(), Vec::new());
        while s.next_chunk(&mut chunk) {
            all.extend_from_slice(&chunk);
        }
        all
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a = collect(PaStream::new(500, 4, 77));
        let b = collect(PaStream::new(500, 4, 77));
        let c = collect(PaStream::new(500, 4, 78));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len() as u64, PaStream::raw_edges(500, 4));
    }

    #[test]
    fn graph_is_simple_connected_min_degree_and_heavy_tailed() {
        let g = pa_stream_graph(2000, 5, 1);
        g.check_invariants().unwrap();
        assert!(g.num_edges() as u64 <= PaStream::raw_edges(2000, 5));
        // Every vertex arrived with d edges; dedup can only merge a few.
        assert!(
            (0..2000).all(|v| g.degree(v as u64) >= 1),
            "isolated vertex"
        );
        assert!(
            g.max_degree() >= 10 * 5,
            "no heavy tail: max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn rank_streams_partition_the_full_stream_for_every_p() {
        let full = collect(PaStream::new(300, 3, 5));
        for p in [1usize, 2, 4] {
            let part = Partitioner::hash_multiplication(p);
            let mut union: Vec<Edge> = Vec::new();
            for rank in 0..p {
                let got = collect(OwnedOnly::new(PaStream::new(300, 3, 5), &part, rank));
                let expect: Vec<Edge> = full
                    .iter()
                    .copied()
                    .filter(|e| part.owner(e.src()) == rank)
                    .collect();
                assert_eq!(got, expect, "p={p} rank={rank} not bit-identical");
                union.extend(got);
            }
            assert_eq!(union.len(), full.len(), "p={p}: ranks must cover all edges");
        }
    }

    #[test]
    fn smallest_valid_configurations_work() {
        // n = d + 1: just the seed star.
        let g = pa_stream_graph(4, 3, 9);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(3), 3);
        let g = pa_stream_graph(2, 1, 9);
        assert_eq!(g.num_edges(), 1);
    }
}
