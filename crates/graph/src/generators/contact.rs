//! Synthetic social contact networks (Miami / New York / Los Angeles
//! stand-ins).
//!
//! The paper's city networks are proprietary synthetic populations with
//! two properties that drive its CP-vs-HP results: (i) high clustering
//! (people meet within households/workplaces), and (ii) *label locality* —
//! consecutively-labelled vertices belong to the same community, so a
//! consecutive partition concentrates whole communities, whose internal
//! edges migrate away as switching destroys the clustering (Section 5.2).
//!
//! This generator reproduces both: vertices are labelled community by
//! community; each community is a dense Erdős–Rényi pocket, plus sparse
//! random inter-community contacts.

use crate::graph::Graph;
use crate::types::Edge;
use rand::Rng;

/// Parameters of the community contact model.
#[derive(Clone, Copy, Debug)]
pub struct ContactParams {
    /// Total vertices.
    pub n: usize,
    /// Mean community size (communities are sized uniformly in
    /// `[size/2, 3·size/2]`).
    pub community_size: usize,
    /// Desired mean intra-community degree.
    pub intra_degree: f64,
    /// Desired mean inter-community degree.
    pub inter_degree: f64,
}

impl ContactParams {
    /// Miami-like defaults at unit scale: average degree ≈ 50 with ~90% of
    /// contacts inside the community.
    pub fn miami_like(n: usize) -> Self {
        ContactParams {
            n,
            community_size: 100,
            intra_degree: 45.0,
            inter_degree: 5.0,
        }
    }
}

/// Generate a contact network. Mean degree ≈ `intra_degree +
/// inter_degree`; clustering coefficient ≈ `intra_degree /
/// community_size`.
pub fn contact_network<R: Rng + ?Sized>(params: ContactParams, rng: &mut R) -> Graph {
    let ContactParams {
        n,
        community_size,
        intra_degree,
        inter_degree,
    } = params;
    assert!(community_size >= 2, "communities need at least two members");
    assert!(n >= community_size, "graph smaller than one community");
    // Mean degree ≈ intra + inter, so expect ≈ n·(intra+inter)/2 edges.
    let expected = (n as f64 * (intra_degree + inter_degree) / 2.0) as usize;
    let mut g = Graph::with_edge_capacity(n, expected);

    // Carve consecutive labels into communities.
    let mut boundaries: Vec<(u64, u64)> = Vec::new();
    let mut start = 0u64;
    while (start as usize) < n {
        let lo = (community_size / 2).max(2);
        let hi = community_size + community_size / 2;
        let size = rng.gen_range(lo..=hi) as u64;
        let end = (start + size).min(n as u64);
        boundaries.push((start, end));
        start = end;
    }
    // Merge a trailing singleton into its predecessor.
    if let Some(&(s, e)) = boundaries.last() {
        if e - s < 2 && boundaries.len() > 1 {
            boundaries.pop();
            boundaries.last_mut().unwrap().1 = e;
        }
    }

    // Intra-community ER pockets.
    for &(s, e) in &boundaries {
        let size = (e - s) as usize;
        let p_in = (intra_degree / (size as f64 - 1.0)).min(1.0);
        // Dense-ish pocket: iterate pairs with geometric skips.
        add_gnp_block(&mut g, s, e, p_in, rng);
    }

    // Inter-community contacts: each endpoint uniform over the whole
    // graph, expected inter_degree per vertex.
    let extra_edges = (n as f64 * inter_degree / 2.0) as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n as u64);
        let b = rng.gen_range(0..n as u64);
        if let Some(edge) = Edge::try_new(a, b) {
            if g.add_edge(edge).is_ok() {
                added += 1;
            }
        }
    }
    g
}

/// Add `G(size, p)` edges among labels `[s, e)` via geometric skipping.
fn add_gnp_block<R: Rng + ?Sized>(g: &mut Graph, s: u64, e: u64, p: f64, rng: &mut R) {
    if p <= 0.0 || e - s < 2 {
        return;
    }
    if p >= 1.0 {
        for u in s..e {
            for v in (u + 1)..e {
                let _ = g.add_edge(Edge::new(u, v));
            }
        }
        return;
    }
    let size = (e - s) as i64;
    let lq = (1.0 - p).ln();
    let (mut v, mut w): (i64, i64) = (1, -1);
    while v < size {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / lq).floor() as i64;
        while w >= v && v < size {
            w -= v;
            v += 1;
        }
        if v < size {
            let _ = g.add_edge(Edge::new(s + w as u64, s + v as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_clustering_exact;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn degree_near_target() {
        let mut rng = Pcg64::seed_from_u64(1);
        let params = ContactParams {
            n: 3000,
            community_size: 60,
            intra_degree: 20.0,
            inter_degree: 4.0,
        };
        let g = contact_network(params, &mut rng);
        let avg = g.avg_degree();
        assert!(
            (avg - 24.0).abs() < 4.0,
            "average degree {avg} far from target 24"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn clustering_is_high() {
        let mut rng = Pcg64::seed_from_u64(2);
        let params = ContactParams {
            n: 2000,
            community_size: 50,
            intra_degree: 20.0,
            inter_degree: 2.0,
        };
        let g = contact_network(params, &mut rng);
        let cc = average_clustering_exact(&g);
        assert!(cc > 0.2, "contact network must be clustered, got cc = {cc}");
    }

    #[test]
    fn labels_are_community_local() {
        // Most edges connect labels that are close together.
        let mut rng = Pcg64::seed_from_u64(3);
        let params = ContactParams {
            n: 2000,
            community_size: 50,
            intra_degree: 20.0,
            inter_degree: 2.0,
        };
        let g = contact_network(params, &mut rng);
        let near = g.edges().filter(|e| e.dst() - e.src() < 2 * 50).count();
        assert!(
            near as f64 > 0.75 * g.num_edges() as f64,
            "expected label locality, got {near}/{}",
            g.num_edges()
        );
    }

    #[test]
    fn miami_like_defaults() {
        let mut rng = Pcg64::seed_from_u64(4);
        let g = contact_network(ContactParams::miami_like(2100), &mut rng);
        let avg = g.avg_degree();
        assert!(
            (40.0..60.0).contains(&avg),
            "avg degree {avg} not Miami-like"
        );
    }
}
