//! Prescribed-degree-sequence construction, streamed.
//!
//! Bhuiyan-style parallel graph construction (arXiv 1708.07290): the
//! paper's production pipeline first *builds* a graph with an exact
//! prescribed degree sequence, then edge-switches it toward a target
//! visit rate. The constructor here is the generalized Havel–Hakimi
//! greedy: repeatedly pick any vertex `v` with residual degree
//! `r_v > 0` (we pick them in a seeded random order, which is what
//! decorrelates the output from the sorted-by-degree artifact of
//! classic Havel–Hakimi), connect `v` to its `r_v` largest-residual
//! other vertices, and zero `v`'s residual. The generalized
//! Havel–Hakimi theorem guarantees this never gets stuck on a
//! graphical sequence regardless of the order vertices are picked in.
//!
//! Two properties make it stream- and distribution-friendly:
//!
//! - **Simplicity is structural.** Edges are only ever created incident
//!   to the vertex currently being processed, whose residual then drops
//!   to zero — so among vertices with positive residual *no edges
//!   exist*, and connecting `v` to distinct positive-residual vertices
//!   can create neither a duplicate nor a self-loop. No adjacency
//!   lookups, no rejection loop.
//! - **The whole construction is a pure function of `(degrees, seed)`.**
//!   There is no data-dependent randomness beyond the one seeded
//!   processing permutation, so every rank of a distributed world can
//!   replay the identical edge sequence locally and keep only its owned
//!   share ([`crate::stream::OwnedOnly`]) — recomputation instead of
//!   communication, bit-identical across any processor count.
//!
//! The residual bookkeeping is O(1) per endpoint via a bucketed
//! permutation: `perm` keeps vertices sorted by residual descending,
//! `cnt_ge[d]` counts vertices with residual ≥ d, and decrementing a
//! vertex swaps it with the last entry of its equal-residual segment
//! and shrinks the segment boundary. Total O(n + m) time, O(n) state.

use crate::degree::{erdos_gallai, power_law_sequence};
use crate::graph::Graph;
use crate::hashing::mix64;
use crate::sampling::random_permutation;
use crate::stream::{EdgeStream, DEFAULT_CHUNK_EDGES};
use crate::types::{Edge, GraphError};
use rand::SeedableRng;
use rand_pcg::Pcg64;

/// Salt separating the processing-order stream from other users of the
/// same seed (e.g. the degree-sampling stream in [`DegreeSequence::power_law`]).
const ORDER_STREAM_SALT: u64 = 0x6465_675f_6f72_6472; // "deg_ordr"
/// Salt for the power-law degree-sampling stream.
const SAMPLE_STREAM_SALT: u64 = 0x6465_675f_7361_6d70; // "deg_samp"

/// A validated graphical degree sequence: the entry point of the
/// prescribed-degree constructor.
///
/// Construction validates via Erdős–Gallai, so every instance is
/// realizable; [`DegreeSequence::stream`] then yields a seeded
/// [`DegreeSeqStream`] producing a simple graph whose degree sequence
/// matches *exactly*.
#[derive(Clone, Debug)]
pub struct DegreeSequence {
    degrees: Vec<usize>,
}

impl DegreeSequence {
    /// Validate `degrees` (Erdős–Gallai); errors on non-graphical input.
    pub fn new(degrees: Vec<usize>) -> Result<Self, GraphError> {
        if !erdos_gallai(&degrees) {
            return Err(GraphError::UnrealizableDegreeSequence(
                "sequence fails the Erdős–Gallai realizability test".into(),
            ));
        }
        Ok(DegreeSequence { degrees })
    }

    /// A graphical power-law sequence: `Pr{d = k} ∝ k^(−gamma)` over
    /// `[d_min, d_max]`, sampled deterministically from `seed`.
    /// Sampled sequences are parity-fixed but not guaranteed graphical;
    /// this retries fresh substreams (deterministically) until one
    /// passes Erdős–Gallai, erroring after 64 attempts — in practice
    /// the first attempt passes for any reasonable `(gamma, d_max)`.
    pub fn power_law(
        n: usize,
        gamma: f64,
        d_min: usize,
        d_max: usize,
        seed: u64,
    ) -> Result<Self, GraphError> {
        for attempt in 0..64u64 {
            let mut rng = Pcg64::seed_from_u64(mix64(
                mix64(seed) ^ mix64(SAMPLE_STREAM_SALT) ^ mix64(attempt),
            ));
            let seq = power_law_sequence(n, gamma, d_min, d_max, &mut rng);
            if let Ok(ds) = Self::new(seq) {
                return Ok(ds);
            }
        }
        Err(GraphError::UnrealizableDegreeSequence(format!(
            "no graphical power-law sample in 64 attempts (n={n}, gamma={gamma}, \
             d_min={d_min}, d_max={d_max})"
        )))
    }

    /// The prescribed degrees, indexed by vertex label.
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Exact number of edges the realization will have (`Σd / 2`).
    pub fn num_edges(&self) -> usize {
        (self.degrees.iter().map(|&d| d as u64).sum::<u64>() / 2) as usize
    }

    /// The seeded streaming realization (see [`DegreeSeqStream`]).
    ///
    /// # Panics
    /// Panics if `n > 2^32` (the packed-edge limit, same as
    /// [`Graph::new`]).
    pub fn stream(&self, seed: u64) -> DegreeSeqStream {
        DegreeSeqStream::new(&self.degrees, seed)
    }

    /// Realize the sequence as a materialized [`Graph`].
    pub fn build(&self, seed: u64) -> Graph {
        Graph::from_stream(self.num_vertices(), &mut self.stream(seed))
            .expect("degree-sequence stream emits only in-range, distinct endpoints")
    }
}

/// The streaming generalized Havel–Hakimi realization of a
/// [`DegreeSequence`]: emits `Σd/2` edges in a deterministic order that
/// is a pure function of `(degrees, seed)`, O(n) working state.
pub struct DegreeSeqStream {
    /// Seeded processing order over vertices.
    order: Vec<u32>,
    /// Next index into `order`.
    next: usize,
    /// Vertices sorted by residual descending (ties in deterministic
    /// swap order); `perm[pos[v]] == v`.
    perm: Vec<u32>,
    pos: Vec<u32>,
    /// Residual degree per vertex.
    res: Vec<u32>,
    /// `cnt_ge[d]` = number of vertices with residual ≥ d; the
    /// exactly-d segment of `perm` is `[cnt_ge[d+1], cnt_ge[d])`.
    cnt_ge: Vec<usize>,
    /// Edges still to be emitted.
    remaining: usize,
    /// Scratch for one vertex's target list.
    targets: Vec<u32>,
    chunk_edges: usize,
}

impl DegreeSeqStream {
    /// Seeded stream over a sequence already known to be graphical
    /// (callers go through [`DegreeSequence`], which validates).
    fn new(degrees: &[usize], seed: u64) -> Self {
        let n = degrees.len();
        assert!(
            n as u128 <= 1 << 32,
            "degree sequence over {n} vertices exceeds the 2^32 packed-storage limit"
        );
        let d_max = degrees.iter().copied().max().unwrap_or(0);
        // Bucket counts → suffix counts cnt_ge.
        let mut count = vec![0usize; d_max + 1];
        for &d in degrees {
            count[d] += 1;
        }
        let mut cnt_ge = vec![0usize; d_max + 2];
        for d in (0..=d_max).rev() {
            cnt_ge[d] = cnt_ge[d + 1] + count[d];
        }
        // Counting-sort vertices into perm, descending by degree with
        // ties in ascending label order (deterministic).
        let mut fill: Vec<usize> = (0..=d_max).map(|d| cnt_ge[d + 1]).collect();
        let mut perm = vec![0u32; n];
        let mut pos = vec![0u32; n];
        for (v, &d) in degrees.iter().enumerate() {
            let slot = fill[d];
            fill[d] += 1;
            perm[slot] = v as u32;
            pos[v] = slot as u32;
        }
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mut rng = Pcg64::seed_from_u64(mix64(mix64(seed) ^ mix64(ORDER_STREAM_SALT)));
        let order: Vec<u32> = random_permutation(n, &mut rng)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        DegreeSeqStream {
            order,
            next: 0,
            perm,
            pos,
            res: degrees.iter().map(|&d| d as u32).collect(),
            cnt_ge,
            remaining: (total / 2) as usize,
            targets: Vec::new(),
            chunk_edges: DEFAULT_CHUNK_EDGES,
        }
    }

    /// Drop `u`'s residual by one, keeping `perm` sorted: swap `u` with
    /// the last entry of its equal-residual segment (also residual `d`,
    /// so order is preserved) and shrink the ≥d boundary over it.
    #[inline]
    fn decrement(&mut self, u: usize) {
        let d = self.res[u] as usize;
        debug_assert!(d > 0);
        let j = self.cnt_ge[d] - 1;
        let pu = self.pos[u] as usize;
        debug_assert!(self.cnt_ge[d + 1] <= pu && pu <= j);
        let w = self.perm[j];
        self.perm.swap(pu, j);
        self.pos[w as usize] = pu as u32;
        self.pos[u] = j as u32;
        self.cnt_ge[d] = j;
        self.res[u] = (d - 1) as u32;
    }

    /// Process the next vertex in the seeded order: emit its residual's
    /// worth of edges into `out`. Returns `false` when every vertex has
    /// been processed.
    fn process_next_vertex(&mut self, out: &mut Vec<Edge>) -> bool {
        loop {
            let Some(&v32) = self.order.get(self.next) else {
                return false;
            };
            self.next += 1;
            let v = v32 as usize;
            let k = self.res[v] as usize;
            if k == 0 {
                continue; // degree-0, or already saturated by earlier picks
            }
            // The k largest-residual vertices other than v, scanning the
            // sorted permutation front (collect first: decrements below
            // reshuffle perm).
            let mut targets = std::mem::take(&mut self.targets);
            targets.clear();
            let mut idx = 0usize;
            while targets.len() < k {
                let u = self.perm[idx];
                idx += 1;
                if u != v32 {
                    assert!(
                        self.res[u as usize] > 0,
                        "graphical degree sequence ran out of positive-residual \
                         candidates — generalized Havel–Hakimi invariant violated"
                    );
                    targets.push(u);
                }
            }
            for &u in &targets {
                out.push(Edge::new(v as u64, u as u64));
                self.decrement(u as usize);
            }
            for _ in 0..k {
                self.decrement(v);
            }
            self.remaining -= k;
            self.targets = targets;
            return true;
        }
    }
}

impl EdgeStream for DegreeSeqStream {
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool {
        chunk.clear();
        // Whole vertices are processed per refill, so a chunk may run
        // over the target by up to d_max − 1 edges.
        while chunk.len() < self.chunk_edges {
            if !self.process_next_vertex(chunk) {
                break;
            }
        }
        !chunk.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{IterStream, OwnedOnly};
    use crate::Partitioner;

    #[test]
    fn realizes_the_exact_sequence_simply() {
        let seq = vec![5, 3, 3, 2, 2, 2, 1, 1, 1, 0];
        let ds = DegreeSequence::new(seq.clone()).unwrap();
        let g = ds.build(7);
        assert_eq!(g.degree_sequence(), seq);
        assert_eq!(g.num_edges(), ds.num_edges());
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_non_graphical_sequences() {
        assert!(DegreeSequence::new(vec![3, 3, 1, 1]).is_err());
        assert!(DegreeSequence::new(vec![1, 1, 1]).is_err(), "odd sum");
        assert!(DegreeSequence::new(vec![2, 2]).is_err(), "degree ≥ n");
    }

    #[test]
    fn power_law_realization_is_exact_at_scale() {
        let ds = DegreeSequence::power_law(3000, 2.5, 2, 120, 42).unwrap();
        let g = ds.build(42);
        assert_eq!(g.degree_sequence(), ds.degrees());
        g.check_invariants().unwrap();
        // Heavy-tailed: someone got a big degree.
        assert!(g.max_degree() >= 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn stream_is_a_pure_function_of_seed() {
        let ds = DegreeSequence::power_law(500, 2.3, 2, 40, 3).unwrap();
        let collect = |seed: u64| {
            let mut s = ds.stream(seed);
            let (mut all, mut chunk) = (Vec::new(), Vec::new());
            while s.next_chunk(&mut chunk) {
                all.extend_from_slice(&chunk);
            }
            all
        };
        assert_eq!(collect(11), collect(11), "same seed, same edge sequence");
        assert_ne!(collect(11), collect(12), "seeds must decorrelate");
        // Different seeds still realize the same degrees.
        assert_eq!(ds.build(11).degree_sequence(), ds.degrees());
        assert_eq!(ds.build(12).degree_sequence(), ds.degrees());
    }

    #[test]
    fn rank_filtered_streams_are_bit_identical_across_p() {
        // The full sequence each rank replays is p-independent, so the
        // owner-filtered subsequence for a given scheme is exactly the
        // unfiltered sequence filtered — for every p.
        let ds = DegreeSequence::power_law(400, 2.4, 2, 30, 9).unwrap();
        let mut full = Vec::new();
        {
            let mut s = ds.stream(5);
            let mut chunk = Vec::new();
            while s.next_chunk(&mut chunk) {
                full.extend_from_slice(&chunk);
            }
        }
        for p in [1usize, 2, 4] {
            let part = Partitioner::hash_division(p);
            for rank in 0..p {
                let mut s = OwnedOnly::new(ds.stream(5), &part, rank);
                let (mut got, mut chunk) = (Vec::new(), Vec::new());
                while s.next_chunk(&mut chunk) {
                    got.extend_from_slice(&chunk);
                }
                let expect: Vec<Edge> = full
                    .iter()
                    .copied()
                    .filter(|e| part.owner(e.src()) == rank)
                    .collect();
                assert_eq!(got, expect, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn tiny_chunks_preserve_the_sequence() {
        let ds = DegreeSequence::new(vec![3, 3, 2, 2, 2, 2, 1, 1]).unwrap();
        let mut s = ds.stream(1);
        s.chunk_edges = 1;
        let (mut small, mut chunk) = (Vec::new(), Vec::new());
        while s.next_chunk(&mut chunk) {
            small.extend_from_slice(&chunk);
        }
        let mut big = Vec::new();
        let mut s2 = ds.stream(1);
        while s2.next_chunk(&mut chunk) {
            big.extend_from_slice(&chunk);
        }
        assert_eq!(small, big);
        let g = Graph::from_stream(8, &mut IterStream::new(small)).unwrap();
        assert_eq!(g.degree_sequence(), ds.degrees());
    }
}
