//! The paper's dataset inventory (Table 2), scaled to single-machine size.
//!
//! Each dataset is reproduced at 1/1000 of the paper's vertex count with
//! the *same average degree*, using the generator that matches the
//! original's structural class. `scale` rescales further (e.g. 0.1 for
//! smoke tests).

use super::{
    contact_network, erdos_renyi_gnm, preferential_attachment, small_world, ContactParams,
};
use crate::graph::Graph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The eight networks of Table 2 (PA-1B is generated on demand only; at
/// 1/1000 scale it is the `Pa1B` entry with 1M vertices / 10M edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// New York contact network: 20.38M vertices, 587.3M edges, deg 57.6.
    NewYork,
    /// Los Angeles contact network: 16.33M vertices, 479.4M edges, deg 58.7.
    LosAngeles,
    /// Miami contact network: 2.1M vertices, 52.7M edges, deg 50.4.
    Miami,
    /// Flickr online community: 2.3M vertices, 22.8M edges, deg 19.8.
    Flickr,
    /// LiveJournal social network: 4.8M vertices, 42.8M edges, deg 17.8.
    LiveJournal,
    /// Watts–Strogatz small world: 4.8M vertices, 48M edges, deg 20.
    SmallWorld,
    /// Erdős–Rényi: 4.8M vertices, 48M edges, deg 20.
    ErdosRenyi,
    /// Preferential attachment: 100M vertices, 1B edges, deg 20.
    Pa100M,
    /// Preferential attachment: 1B vertices, 10B edges, deg 20.
    Pa1B,
}

/// Concrete scaled-down parameters for a dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Display name matching the paper.
    pub name: &'static str,
    /// Structural class shown in Table 2.
    pub class: &'static str,
    /// Scaled vertex count.
    pub n: usize,
    /// Paper's average degree (the scaled graph matches it).
    pub avg_degree: f64,
    /// Paper's original vertex count, for reporting.
    pub paper_vertices: u64,
    /// Paper's original edge count, for reporting.
    pub paper_edges: u64,
}

impl Dataset {
    /// All datasets in Table 2's row order.
    pub fn all() -> [Dataset; 9] {
        [
            Dataset::NewYork,
            Dataset::LosAngeles,
            Dataset::Miami,
            Dataset::Flickr,
            Dataset::LiveJournal,
            Dataset::SmallWorld,
            Dataset::ErdosRenyi,
            Dataset::Pa100M,
            Dataset::Pa1B,
        ]
    }

    /// The eight datasets used in the strong-scaling figures (everything
    /// except the 10B-edge PA-1B demo graph).
    pub fn scaling_set() -> [Dataset; 8] {
        [
            Dataset::NewYork,
            Dataset::LosAngeles,
            Dataset::Miami,
            Dataset::Flickr,
            Dataset::LiveJournal,
            Dataset::SmallWorld,
            Dataset::ErdosRenyi,
            Dataset::Pa100M,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        self.spec(1.0).name
    }

    /// Scaled parameters: vertex counts are `scale / 1000` of the paper's
    /// (so `scale = 1.0` is the default 1/1000 reproduction size), with a
    /// floor that keeps every graph meaningful.
    pub fn spec(&self, scale: f64) -> DatasetSpec {
        let (name, class, paper_v, paper_e, deg): (&str, &str, u64, u64, f64) = match self {
            Dataset::NewYork => ("NewYork", "Social Contact", 20_380_000, 587_300_000, 57.63),
            Dataset::LosAngeles => (
                "LosAngeles",
                "Social Contact",
                16_330_000,
                479_400_000,
                58.66,
            ),
            Dataset::Miami => ("Miami", "Social Contact", 2_100_000, 52_700_000, 50.4),
            Dataset::Flickr => ("Flickr", "Online Community", 2_300_000, 22_800_000, 19.83),
            Dataset::LiveJournal => ("LiveJournal", "Social", 4_800_000, 42_800_000, 17.83),
            Dataset::SmallWorld => ("SmallWorld", "Random", 4_800_000, 48_000_000, 20.0),
            Dataset::ErdosRenyi => (
                "ErdosRenyi",
                "Erdos-Renyi Random",
                4_800_000,
                48_000_000,
                20.0,
            ),
            Dataset::Pa100M => (
                "PA-100M",
                "Pref. Attachment",
                100_000_000,
                1_000_000_000,
                20.0,
            ),
            Dataset::Pa1B => (
                "PA-1B",
                "Pref. Attachment",
                1_000_000_000,
                10_000_000_000,
                20.0,
            ),
        };
        let n = ((paper_v as f64 / 1000.0 * scale) as usize).max(600);
        DatasetSpec {
            dataset: *self,
            name,
            class,
            n,
            avg_degree: deg,
            paper_vertices: paper_v,
            paper_edges: paper_e,
        }
    }

    /// Generate the scaled dataset.
    pub fn generate<R: Rng + ?Sized>(&self, scale: f64, rng: &mut R) -> Graph {
        self.spec(scale).generate(rng)
    }
}

impl DatasetSpec {
    /// Scaled edge count this spec aims for.
    pub fn target_edges(&self) -> usize {
        (self.n as f64 * self.avg_degree / 2.0) as usize
    }

    /// Generate the graph for this spec.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        match self.dataset {
            Dataset::NewYork | Dataset::LosAngeles | Dataset::Miami => {
                let intra = self.avg_degree * 0.9;
                let inter = self.avg_degree * 0.1;
                contact_network(
                    ContactParams {
                        n: self.n,
                        community_size: 100,
                        intra_degree: intra,
                        inter_degree: inter,
                    },
                    rng,
                )
            }
            Dataset::Flickr | Dataset::LiveJournal => {
                // Heavy-tailed crawls: preferential attachment at matched
                // average degree (attachment parameter d ≈ avg/2).
                let d = (self.avg_degree / 2.0).round().max(1.0) as usize;
                preferential_attachment(self.n, d, rng)
            }
            Dataset::SmallWorld => {
                let k = (self.avg_degree.round() as usize).div_ceil(2) * 2;
                small_world(self.n, k, 0.1, rng)
            }
            Dataset::ErdosRenyi => erdos_renyi_gnm(self.n, self.target_edges(), rng),
            Dataset::Pa100M | Dataset::Pa1B => {
                let d = (self.avg_degree / 2.0).round().max(1.0) as usize;
                preferential_attachment(self.n, d, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn specs_scale_vertices() {
        let miami = Dataset::Miami.spec(1.0);
        assert_eq!(miami.n, 2100);
        let tiny = Dataset::Miami.spec(0.5);
        assert_eq!(tiny.n, 1050);
    }

    #[test]
    fn floor_prevents_degenerate_graphs() {
        let spec = Dataset::Miami.spec(0.001);
        assert!(spec.n >= 600);
    }

    #[test]
    fn generated_degree_matches_paper() {
        let mut rng = Pcg64::seed_from_u64(1);
        for ds in [
            Dataset::Miami,
            Dataset::Flickr,
            Dataset::ErdosRenyi,
            Dataset::SmallWorld,
        ] {
            let spec = ds.spec(0.5);
            let g = spec.generate(&mut rng);
            let avg = g.avg_degree();
            assert!(
                (avg - spec.avg_degree).abs() / spec.avg_degree < 0.3,
                "{}: generated avg degree {avg} vs paper {}",
                spec.name,
                spec.avg_degree
            );
        }
    }

    #[test]
    fn scaling_set_excludes_pa1b() {
        assert!(!Dataset::scaling_set().contains(&Dataset::Pa1B));
    }
}
