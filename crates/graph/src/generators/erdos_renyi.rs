//! Erdős–Rényi random graphs.

use crate::graph::Graph;
use crate::types::Edge;
use rand::Rng;

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly from all vertex
/// pairs, by rejection sampling. Efficient while `m ≪ n(n−1)/2`.
///
/// # Panics
/// Panics if `m` exceeds the number of possible simple edges.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n as u128 * (n as u128 - 1) / 2;
    assert!(
        (m as u128) <= max_edges,
        "G(n={n}, m={m}) wants more edges than the {max_edges} possible"
    );
    assert!(
        (m as u128) * 2 <= max_edges || n < 4000,
        "rejection sampling would crawl at density m/max = {:.2}; use a denser generator",
        m as f64 / max_edges as f64
    );
    let mut g = Graph::with_edge_capacity(n, m);
    while g.num_edges() < m {
        let a = rng.gen_range(0..n as u64);
        let b = rng.gen_range(0..n as u64);
        if let Some(e) = Edge::try_new(a, b) {
            let _ = g.add_edge(e); // duplicate draws are simply rejected
        }
    }
    g
}

/// `G(n, p)`: every pair independently with probability `p`, using the
/// geometric skip method of Batagelj–Brandes, `O(n + m)`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let expected = (p * (n as f64) * (n as f64 - 1.0) / 2.0) as usize;
    let mut g = Graph::with_edge_capacity(n, expected);
    if p == 0.0 || n < 2 {
        return g;
    }
    if p == 1.0 {
        for u in 0..n as u64 {
            for v in (u + 1)..n as u64 {
                g.add_edge(Edge::new(u, v)).unwrap();
            }
        }
        return g;
    }
    let lq = (1.0 - p).ln();
    let (mut v, mut w): (u64, i64) = (1, -1);
    while (v as usize) < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / lq).floor() as i64;
        while w >= v as i64 && (v as usize) < n {
            w -= v as i64;
            v += 1;
        }
        if (v as usize) < n {
            g.add_edge(Edge::new(w as u64, v)).unwrap();
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn gnm_has_exact_edge_count() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = erdos_renyi_gnm(500, 2500, &mut rng);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 2500);
        g.check_invariants().unwrap();
    }

    #[test]
    fn gnm_zero_edges() {
        let mut rng = Pcg64::seed_from_u64(2);
        let g = erdos_renyi_gnm(10, 0, &mut rng);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "more edges")]
    fn gnm_rejects_impossible() {
        let mut rng = Pcg64::seed_from_u64(3);
        erdos_renyi_gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = Pcg64::seed_from_u64(4);
        let n = 1000;
        let p = 0.01;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt(),
            "edges {got} too far from expectation {expected}"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = Pcg64::seed_from_u64(5);
        assert_eq!(erdos_renyi_gnp(20, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(20, 1.0, &mut rng).num_edges(), 190);
    }

    #[test]
    fn gnm_deterministic_under_seed() {
        let g1 = erdos_renyi_gnm(100, 300, &mut Pcg64::seed_from_u64(7));
        let g2 = erdos_renyi_gnm(100, 300, &mut Pcg64::seed_from_u64(7));
        assert!(g1.same_edge_set(&g2));
    }
}
