//! Deterministic graph families and additional random models: building
//! blocks for tests, baselines, and workloads beyond Table 2.

use crate::graph::Graph;
use crate::types::{Edge, GraphError, VertexId};
use rand::Rng;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for a in 0..n as u64 {
        for b in (a + 1)..n as u64 {
            g.add_edge(Edge::new(a, b)).expect("fresh pair");
        }
    }
    g
}

/// Path graph `P_n` (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n as u64 {
        g.add_edge(Edge::new(v - 1, v)).expect("fresh pair");
    }
    g
}

/// Cycle `C_n`.
///
/// # Panics
/// Panics for `n < 3` (smaller cycles need loops or parallel edges).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut g = path(n);
    g.add_edge(Edge::new(0, n as u64 - 1)).expect("fresh pair");
    g
}

/// Star `K_{1,n-1}` with the hub at label 0.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n as u64 {
        g.add_edge(Edge::new(0, v)).expect("fresh pair");
    }
    g
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let m = rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1);
    let mut g = Graph::with_edge_capacity(rows * cols, m);
    let at = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(Edge::new(at(r, c), at(r, c + 1))).unwrap();
            }
            if r + 1 < rows {
                g.add_edge(Edge::new(at(r, c), at(r + 1, c))).unwrap();
            }
        }
    }
    g
}

/// Random `d`-regular graph via the configuration (pairing) model with
/// retry-on-collision: stubs are shuffled and paired; a pairing with a
/// loop or duplicate is rediscovered from scratch (fast for `d ≪ n`).
///
/// # Errors
/// `n·d` must be even and `d < n`; gives up after a bounded number of
/// full restarts (astronomically unlikely for sparse inputs).
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::UnrealizableDegreeSequence(
            "n*d must be even".into(),
        ));
    }
    if d >= n {
        return Err(GraphError::UnrealizableDegreeSequence(format!(
            "d = {d} >= n = {n}"
        )));
    }
    if d == 0 {
        return Ok(Graph::new(n));
    }
    // Pairing model with local partner retries: a naive
    // pair-consecutive-stubs loop succeeds with probability
    // ≈ exp(−(d²−1)/4) per attempt, hopeless beyond small d. Instead,
    // each stub searches a bounded number of random partners that avoid
    // loops and duplicates; only a genuinely stuck tail forces a restart.
    let template: Vec<VertexId> = (0..n as u64)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    'restart: for _attempt in 0..64 {
        let mut stubs = template.clone();
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut g = Graph::with_edge_capacity(n, n * d / 2);
        while let Some(a) = stubs.pop() {
            let mut paired = false;
            for _try in 0..64 {
                if stubs.is_empty() {
                    break;
                }
                let idx = rng.gen_range(0..stubs.len());
                let b = stubs[idx];
                if let Some(e) = Edge::try_new(a, b) {
                    if !g.has_edge(e) {
                        g.add_edge(e).expect("checked absent");
                        stubs.swap_remove(idx);
                        paired = true;
                        break;
                    }
                }
            }
            if !paired {
                continue 'restart;
            }
        }
        return Ok(g);
    }
    Err(GraphError::UnrealizableDegreeSequence(format!(
        "pairing model failed to produce a simple {d}-regular graph on {n} vertices"
    )))
}

/// Stochastic block model: `sizes[i]` vertices per block (consecutive
/// labels), independent edge probability `probs[i][j]` between blocks
/// `i` and `j` (symmetric; only the upper triangle is read).
pub fn stochastic_block_model<R: Rng + ?Sized>(
    sizes: &[usize],
    probs: &[Vec<f64>],
    rng: &mut R,
) -> Graph {
    let k = sizes.len();
    assert_eq!(probs.len(), k, "probability matrix must be k x k");
    let n: usize = sizes.iter().sum();
    let mut starts = Vec::with_capacity(k + 1);
    let mut acc = 0u64;
    for &s in sizes {
        starts.push(acc);
        acc += s as u64;
    }
    starts.push(acc);
    let mut g = Graph::new(n);
    for i in 0..k {
        assert_eq!(probs[i].len(), k, "probability matrix must be k x k");
        for j in i..k {
            let p = probs[i][j];
            assert!((0.0..=1.0).contains(&p), "probability out of range");
            if p == 0.0 {
                continue;
            }
            // Bernoulli per pair; block pairs are small by construction.
            let (as_, ae) = (starts[i], starts[i + 1]);
            let (bs, be) = (starts[j], starts[j + 1]);
            for a in as_..ae {
                let from = if i == j { a + 1 } else { bs };
                for b in from.max(bs)..be {
                    if rng.gen_bool(p) {
                        let _ = g.add_edge(Edge::new(a, b));
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.degree_sequence().iter().all(|&d| d == 5));
    }

    #[test]
    fn path_cycle_star_grid_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).degree(0), 4);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        g.check_invariants().unwrap();
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = random_regular(200, 6, &mut rng).unwrap();
        assert!(g.degree_sequence().iter().all(|&d| d == 6));
        g.check_invariants().unwrap();
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut rng = Pcg64::seed_from_u64(2);
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n*d
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
        assert_eq!(random_regular(5, 0, &mut rng).unwrap().num_edges(), 0);
    }

    #[test]
    fn random_regular_varies_with_seed() {
        let a = random_regular(100, 4, &mut Pcg64::seed_from_u64(3)).unwrap();
        let b = random_regular(100, 4, &mut Pcg64::seed_from_u64(4)).unwrap();
        assert!(!a.same_edge_set(&b));
    }

    #[test]
    fn sbm_respects_block_structure() {
        let mut rng = Pcg64::seed_from_u64(5);
        let sizes = [50usize, 50];
        let probs = vec![vec![0.3, 0.0], vec![0.0, 0.3]];
        let g = stochastic_block_model(&sizes, &probs, &mut rng);
        // No cross-block edges.
        for e in g.edges() {
            assert_eq!(e.src() < 50, e.dst() < 50, "cross-block edge {e}");
        }
        // Intra-block density near 0.3.
        let expect = 2.0 * 0.3 * (50.0 * 49.0 / 2.0);
        assert!((g.num_edges() as f64 - expect).abs() < 4.0 * expect.sqrt() + 20.0);
    }

    #[test]
    fn sbm_cross_blocks_only() {
        let mut rng = Pcg64::seed_from_u64(6);
        let g = stochastic_block_model(&[30, 30], &[vec![0.0, 0.5], vec![0.5, 0.0]], &mut rng);
        for e in g.edges() {
            assert_ne!(e.src() < 30, e.dst() < 30, "intra-block edge {e}");
        }
    }

    #[test]
    #[should_panic(expected = "k x k")]
    fn sbm_rejects_ragged_matrix() {
        let mut rng = Pcg64::seed_from_u64(7);
        stochastic_block_model(&[10, 10], &[vec![0.1]], &mut rng);
    }
}
