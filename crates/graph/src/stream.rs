//! Streaming edge production: generator → consumer in bounded chunks.
//!
//! The scale ceiling of the materialized pipeline is memory, not
//! compute: a generator fills a global `Vec<Edge>`, `Graph::from_edges`
//! copies it into pool + adjacency, and `build_stores` copies it again
//! into per-rank stores — three O(m) residents at peak. [`EdgeStream`]
//! replaces the global list with a pull-based chunk protocol: the
//! consumer hands the stream a reusable buffer, the stream refills it
//! with the next few tens of thousands of edges, and the consumer
//! routes each chunk straight into its destination structure
//! ([`crate::graph::Graph::from_stream`],
//! [`crate::store::build_stores_streamed`]). Peak residency is the
//! destination itself plus one chunk.
//!
//! For distributed construction, [`OwnedOnly`] filters a stream down to
//! one rank's edges. Paired with a *recomputation-based* generator
//! (every rank re-derives the full deterministic edge sequence from the
//! seed — see `crate::generators`), rank `r` emits exactly the edges
//! whose owner is `r` with zero communication, so a process-backed
//! world can boot from an O(1) seed blob instead of an O(m) edge list.
//!
//! Streams are allowed to re-emit an edge (the recomputation PA model
//! produces occasional multi-edges); consumers deduplicate on insert.
//! Emission *order* is part of a stream's determinism contract: two
//! streams constructed with the same parameters and seed must produce
//! the identical edge sequence, chunk boundaries aside.

use crate::partition::Partitioner;
use crate::types::Edge;

/// Default edges per refilled chunk (64 Ki edges = 1 MiB of packed
/// endpoints): large enough to amortize per-chunk dispatch, small
/// enough to be RSS-invisible next to any graph worth streaming.
pub const DEFAULT_CHUNK_EDGES: usize = 1 << 16;

/// A finite edge producer consumed in chunks.
///
/// The contract mirrors `Iterator`, batched: `next_chunk` clears the
/// caller's buffer, refills it with the next run of edges (the stream
/// picks the batch size; [`DEFAULT_CHUNK_EDGES`] is conventional), and
/// returns `true` iff it produced at least one edge. After the first
/// `false` the stream is exhausted and every later call must also
/// leave the buffer empty and return `false`. Implementations must
/// never return `true` with an empty buffer — consumers drive plain
/// `while` loops off the return value.
pub trait EdgeStream {
    /// Bounds on the number of edges *remaining*, `(lower, upper)` with
    /// `upper = None` for unknown — same convention as
    /// `Iterator::size_hint`. Consumers use it to pre-size indexes;
    /// correctness never depends on it.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Refill `chunk` with the next run of edges. See the trait docs
    /// for the exhaustion contract.
    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool;
}

impl<S: EdgeStream + ?Sized> EdgeStream for &mut S {
    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }

    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool {
        (**self).next_chunk(chunk)
    }
}

/// Adapt any edge iterator into an [`EdgeStream`] (the bridge for the
/// materialized generators and for re-streaming an existing graph's
/// pool order via `Graph::edges`).
pub struct IterStream<I> {
    iter: I,
    chunk_edges: usize,
}

impl<I: Iterator<Item = Edge>> IterStream<I> {
    /// Stream `iter` in [`DEFAULT_CHUNK_EDGES`]-sized chunks.
    pub fn new<T: IntoIterator<IntoIter = I>>(iter: T) -> Self {
        Self::with_chunk_edges(iter, DEFAULT_CHUNK_EDGES)
    }

    /// Stream `iter` in `chunk_edges`-sized chunks (tests use tiny
    /// chunks to exercise boundary handling).
    pub fn with_chunk_edges<T: IntoIterator<IntoIter = I>>(iter: T, chunk_edges: usize) -> Self {
        IterStream {
            iter: iter.into_iter(),
            chunk_edges: chunk_edges.max(1),
        }
    }
}

impl<I: Iterator<Item = Edge>> EdgeStream for IterStream<I> {
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }

    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool {
        chunk.clear();
        chunk.extend(self.iter.by_ref().take(self.chunk_edges));
        !chunk.is_empty()
    }
}

/// Filter a stream down to the edges owned by one rank: edge `(u, v)`
/// with `u < v` passes iff `part.owner(u) == rank` — the same reduced
/// adjacency ownership rule as `build_stores`.
///
/// This is the communication-free emission adapter: every rank runs the
/// *full* generator (recomputing all random choices from the shared
/// seed) wrapped in its own `OwnedOnly`, and keeps only its share.
/// Generation work is O(m) per rank, memory is O(m/p) per rank, and
/// the union over ranks is exactly the unfiltered stream.
pub struct OwnedOnly<'p, S> {
    inner: S,
    part: &'p Partitioner,
    rank: usize,
}

impl<'p, S: EdgeStream> OwnedOnly<'p, S> {
    /// Wrap `inner`, keeping only edges `part` assigns to `rank`.
    pub fn new(inner: S, part: &'p Partitioner, rank: usize) -> Self {
        OwnedOnly { inner, part, rank }
    }
}

impl<S: EdgeStream> EdgeStream for OwnedOnly<'_, S> {
    fn size_hint(&self) -> (usize, Option<usize>) {
        // Anywhere from none to all of the inner edges may be owned.
        (0, self.inner.size_hint().1)
    }

    fn next_chunk(&mut self, chunk: &mut Vec<Edge>) -> bool {
        // An inner chunk can filter down to nothing; keep pulling until
        // an owned edge shows up so `true` always means non-empty.
        while self.inner.next_chunk(chunk) {
            chunk.retain(|e| self.part.owner(e.src()) == self.rank);
            if !chunk.is_empty() {
                return true;
            }
        }
        chunk.clear();
        false
    }
}

/// A size hint for pre-allocation: the checked upper bound when the
/// stream (or iterator) reports one, else the lower bound. An upper
/// bound below the lower bound is a contract violation; it is ignored
/// rather than trusted.
pub fn capacity_hint(size_hint: (usize, Option<usize>)) -> usize {
    let (lo, hi) = size_hint;
    hi.filter(|&h| h >= lo).unwrap_or(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn ring(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect()
    }

    #[test]
    fn iter_stream_yields_everything_in_order() {
        let edges = ring(100);
        let mut s = IterStream::with_chunk_edges(edges.clone(), 7);
        assert_eq!(capacity_hint(s.size_hint()), 100);
        let mut got = Vec::new();
        let mut chunk = Vec::new();
        while s.next_chunk(&mut chunk) {
            assert!(!chunk.is_empty());
            assert!(chunk.len() <= 7);
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, edges);
        // Exhausted streams stay exhausted with an empty buffer.
        assert!(!s.next_chunk(&mut chunk));
        assert!(chunk.is_empty());
    }

    #[test]
    fn owned_only_partitions_the_stream_exactly() {
        let edges = ring(257);
        let part = Partitioner::hash_division(4);
        let mut union: Vec<Edge> = Vec::new();
        for rank in 0..4 {
            let mut s =
                OwnedOnly::new(IterStream::with_chunk_edges(edges.clone(), 16), &part, rank);
            let mut chunk = Vec::new();
            while s.next_chunk(&mut chunk) {
                for &e in &chunk {
                    assert_eq!(part.owner(e.src()), rank);
                    union.push(e);
                }
            }
        }
        union.sort_unstable();
        let mut expect = edges;
        expect.sort_unstable();
        assert_eq!(union, expect, "rank streams must partition the edge set");
    }

    #[test]
    fn owned_only_skips_empty_inner_chunks() {
        // With 1-edge inner chunks most refills filter to nothing; the
        // adapter must keep pulling rather than report early exhaustion.
        let edges = ring(64);
        let part = Partitioner::hash_division(8);
        let mut total = 0usize;
        for rank in 0..8 {
            let mut s = OwnedOnly::new(IterStream::with_chunk_edges(edges.clone(), 1), &part, rank);
            let mut chunk = Vec::new();
            while s.next_chunk(&mut chunk) {
                total += chunk.len();
            }
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn capacity_hint_prefers_checked_upper_bound() {
        assert_eq!(capacity_hint((0, Some(10))), 10);
        assert_eq!(capacity_hint((3, Some(7))), 7);
        assert_eq!(capacity_hint((5, None)), 5);
        // A nonsense upper bound below the lower bound is ignored.
        assert_eq!(capacity_hint((5, Some(2))), 5);
    }
}
