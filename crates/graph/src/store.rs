//! Per-partition storage: the *reduced adjacency list* (Section 4.2).
//!
//! An edge `(u, v)` with `u < v` is stored exactly once, in the partition
//! that owns `u`. This guarantees an edge can be selected from only one
//! partition, halves the memory footprint, and reduces the number of
//! adjacency-list updates per switch from four to at most three.
//!
//! Reduced neighbor sets are flat sorted arrays ([`NeighborSet`]) and the
//! vertex→set map uses the in-repo Fx hasher ([`crate::hashing`]) — the
//! same cache-compact layout as the shared-memory [`Graph`], because the
//! per-rank switch loop hits these structures on every operation.

use crate::adjacency::NeighborSet;
use crate::graph::Graph;
use crate::hashing::{map_with_capacity, FxHashMap};
use crate::partition::Partitioner;
use crate::sampling::EdgePool;
use crate::stream::{capacity_hint, EdgeStream};
use crate::types::{Edge, VertexId};
use rand::Rng;

/// One processor's share of the distributed graph.
#[derive(Clone, Debug)]
pub struct PartitionStore {
    rank: usize,
    /// Reduced adjacency: `adj[u]` holds `{v : (u,v) ∈ E, u < v}` for
    /// every owned vertex `u` that currently has at least one such edge.
    adj: FxHashMap<VertexId, NeighborSet>,
    /// The same edges, in a uniformly sampleable pool.
    pool: EdgePool,
}

impl PartitionStore {
    /// Empty store for processor `rank`.
    pub fn new(rank: usize) -> Self {
        Self::with_capacity(rank, 0)
    }

    /// Empty store for processor `rank`, pre-sized for about `edges`
    /// owned edges (the adjacency map is sized at half that — reduced
    /// lists average two edges per non-empty vertex on real graphs; both
    /// structures still grow on demand if the estimate is low).
    pub fn with_capacity(rank: usize, edges: usize) -> Self {
        PartitionStore {
            rank,
            adj: map_with_capacity(edges / 2),
            pool: EdgePool::with_capacity(edges),
        }
    }

    /// The processor rank this store belongs to.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of edges `|E_i|` currently owned.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.pool.len()
    }

    /// `O(1)` existence test for an edge owned by this partition.
    ///
    /// The caller must only ask about edges whose lower endpoint is owned
    /// here; asking about a foreign edge returns `false`, which in the
    /// distributed protocol would be a routing bug, so debug builds do not
    /// check it — ownership is the protocol's responsibility.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.pool.contains(e)
    }

    /// Insert an owned edge; `false` if already present (parallel edge).
    pub fn insert(&mut self, e: Edge) -> bool {
        if !self.pool.insert(e) {
            return false;
        }
        self.adj.entry(e.src()).or_default().insert(e.dst());
        true
    }

    /// Remove an owned edge; `false` if absent.
    pub fn remove(&mut self, e: Edge) -> bool {
        if !self.pool.remove(e) {
            return false;
        }
        if let Some(set) = self.adj.get_mut(&e.src()) {
            set.remove(e.dst());
            if set.is_empty() {
                self.adj.remove(&e.src());
            }
        }
        true
    }

    /// Remove an owned edge, reporting the pool index it occupied so
    /// [`PartitionStore::unremove`] can restore it exactly; `None` if
    /// absent. The undo-log primitive of speculative batch rollback.
    pub fn remove_logged(&mut self, e: Edge) -> Option<u32> {
        let at = self.pool.remove_logged(e)?;
        if let Some(set) = self.adj.get_mut(&e.src()) {
            set.remove(e.dst());
            if set.is_empty() {
                self.adj.remove(&e.src());
            }
        }
        Some(at)
    }

    /// Undo a [`PartitionStore::remove_logged`] of `e` that reported
    /// `at`. Applied in exact reverse order of the logged operations,
    /// this restores the sampling pool's dense layout bit-for-bit (see
    /// [`EdgePool::unremove`]); the adjacency sets are order-free.
    ///
    /// Returns `false` (store unchanged) if `e` is already present.
    pub fn unremove(&mut self, e: Edge, at: u32) -> bool {
        if !self.pool.unremove(e, at) {
            return false;
        }
        self.adj.entry(e.src()).or_default().insert(e.dst());
        true
    }

    /// Draw a uniformly random owned edge.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Edge> {
        self.pool.sample(rng)
    }

    /// Iterate owned edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.pool.iter()
    }

    /// Reduced neighbor set of an owned vertex (empty if none).
    pub fn reduced_neighbors(&self, u: VertexId) -> Option<&NeighborSet> {
        self.adj.get(&u)
    }

    /// Internal consistency between the pool and the adjacency map.
    pub fn check_consistent(&self) -> bool {
        if !self.pool.check_consistent() {
            return false;
        }
        let from_adj: usize = self.adj.values().map(NeighborSet::len).sum();
        from_adj == self.pool.len()
            && self
                .pool
                .iter()
                .all(|e| self.adj.get(&e.src()).is_some_and(|s| s.contains(e.dst())))
    }
}

/// Split a graph into `p` partition stores under `part`.
///
/// Edge `(u,v)` with `u < v` goes to `part.owner(u)` — the distributed
/// distribution step of Section 4.3.
pub fn build_stores(graph: &Graph, part: &Partitioner) -> Vec<PartitionStore> {
    let p = part.num_parts();
    // `m` is known up front; size every store for the balanced share so
    // the distribution loop below never rehashes (skewed schemes may
    // still grow the heavy stores once or twice).
    let share = graph.num_edges() / p.max(1);
    let mut stores: Vec<PartitionStore> = (0..p)
        .map(|rank| PartitionStore::with_capacity(rank, share))
        .collect();
    for e in graph.edges() {
        let owner = part.owner(e.src());
        let inserted = stores[owner].insert(e);
        debug_assert!(inserted, "input graph contained duplicate edge {e}");
    }
    stores
}

/// Split a *streamed* edge sequence into `p` partition stores under
/// `part`, without ever materializing the global edge list: each chunk
/// is routed edge-by-edge to `part.owner(e.src())` and dropped.
///
/// Equivalence with [`build_stores`]: feeding the same edge sequence
/// (e.g. a graph's pool order via `IterStream::new(graph.edges())`)
/// produces stores whose pool orders match `build_stores` exactly,
/// because both insert in sequence order and deduplicate on insert —
/// re-emitted duplicates are *skipped* here rather than asserted away,
/// matching the streaming contract (see [`crate::stream`]).
pub fn build_stores_streamed<S>(stream: &mut S, part: &Partitioner) -> Vec<PartitionStore>
where
    S: EdgeStream + ?Sized,
{
    let p = part.num_parts();
    let share = capacity_hint(stream.size_hint()) / p.max(1);
    let mut stores: Vec<PartitionStore> = (0..p)
        .map(|rank| PartitionStore::with_capacity(rank, share))
        .collect();
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk) {
        for &e in &chunk {
            stores[part.owner(e.src())].insert(e);
        }
    }
    stores
}

/// Build *one* rank's partition store from a streamed edge sequence,
/// keeping only the edges `part` assigns to `rank` — the per-process
/// form of [`build_stores_streamed`] used by seed-booted children, who
/// regenerate the full deterministic sequence locally and keep their
/// share (peak memory O(m/p + chunk), zero communication).
pub fn build_rank_store_streamed<S>(
    stream: &mut S,
    part: &Partitioner,
    rank: usize,
) -> PartitionStore
where
    S: EdgeStream + ?Sized,
{
    let share = capacity_hint(stream.size_hint()) / part.num_parts().max(1);
    let mut store = PartitionStore::with_capacity(rank, share);
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk) {
        for &e in &chunk {
            if part.owner(e.src()) == rank {
                store.insert(e);
            }
        }
    }
    store
}

/// Reassemble the full graph from partition stores (gather step, used for
/// post-run validation and metric computation).
pub fn assemble_graph(n: usize, stores: &[PartitionStore]) -> Graph {
    let m: usize = stores.iter().map(PartitionStore::num_edges).sum();
    let mut g = Graph::with_edge_capacity(n, m);
    for s in stores {
        for e in s.edges() {
            g.add_edge(e)
                .expect("partition stores must hold disjoint simple edges");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn grid_graph() -> Graph {
        // 5x5 grid.
        let n = 25u64;
        let mut edges = vec![];
        for r in 0..5u64 {
            for c in 0..5u64 {
                let v = r * 5 + c;
                if c + 1 < 5 {
                    edges.push(Edge::new(v, v + 1));
                }
                if r + 1 < 5 {
                    edges.push(Edge::new(v, v + 5));
                }
            }
        }
        Graph::from_edges(n as usize, edges).unwrap()
    }

    #[test]
    fn build_assigns_every_edge_once() {
        let g = grid_graph();
        let part = Partitioner::hash_division(4);
        let stores = build_stores(&g, &part);
        let total: usize = stores.iter().map(PartitionStore::num_edges).sum();
        assert_eq!(total, g.num_edges());
        for s in &stores {
            assert!(s.check_consistent());
            for e in s.edges() {
                assert_eq!(part.owner(e.src()), s.rank());
            }
        }
    }

    #[test]
    fn assemble_round_trips() {
        let g = grid_graph();
        let part = Partitioner::consecutive(&g, 3);
        let stores = build_stores(&g, &part);
        let h = assemble_graph(g.num_vertices(), &stores);
        assert!(g.same_edge_set(&h));
    }

    #[test]
    fn insert_remove_keeps_adjacency_in_sync() {
        let mut s = PartitionStore::new(0);
        assert!(s.insert(Edge::new(1, 5)));
        assert!(s.insert(Edge::new(1, 7)));
        assert!(!s.insert(Edge::new(1, 5)), "duplicate rejected");
        assert_eq!(s.reduced_neighbors(1).unwrap().len(), 2);
        assert!(s.remove(Edge::new(1, 5)));
        assert_eq!(s.reduced_neighbors(1).unwrap().len(), 1);
        assert!(s.remove(Edge::new(1, 7)));
        assert!(s.reduced_neighbors(1).is_none(), "empty sets are pruned");
        assert!(!s.remove(Edge::new(1, 7)));
        assert!(s.check_consistent());
    }

    #[test]
    fn remove_logged_unremove_round_trips() {
        let g = grid_graph();
        let part = Partitioner::consecutive(&g, 2);
        let mut stores = build_stores(&g, &part);
        let s = &mut stores[0];
        let before: Vec<Edge> = s.edges().collect();
        let mut log = Vec::new();
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..6 {
            let e = s.sample(&mut rng).unwrap();
            let at = s.remove_logged(e).expect("sampled edge is present");
            assert!(s.remove_logged(e).is_none(), "second removal rejected");
            log.push((e, at));
        }
        for (e, at) in log.into_iter().rev() {
            assert!(s.unremove(e, at));
            assert!(!s.unremove(e, at), "double undo rejected");
        }
        assert!(s.check_consistent());
        let after: Vec<Edge> = s.edges().collect();
        assert_eq!(before, after, "pool order must be restored exactly");
    }

    #[test]
    fn sample_returns_owned_edges() {
        let g = grid_graph();
        let part = Partitioner::hash_multiplication(3);
        let stores = build_stores(&g, &part);
        let mut rng = Pcg64::seed_from_u64(11);
        for s in &stores {
            if s.num_edges() == 0 {
                continue;
            }
            for _ in 0..20 {
                let e = s.sample(&mut rng).unwrap();
                assert!(s.contains(e));
            }
        }
    }
}
