//! Fundamental identifier and edge types shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vertex label. The paper labels vertices `0, 1, ..., n-1`; we use `u64`
/// so that graphs with billions of vertices are representable.
pub type VertexId = u64;

/// Largest vertex label the packed-edge hot path supports (`2^32 - 1`).
///
/// [`Edge::key`] packs both endpoints of an edge into one `u64`, so the
/// cache-compact storage ([`crate::sampling::EdgePool`],
/// [`crate::adjacency::NeighborSet`]) handles graphs of up to `2^32`
/// vertices — comfortably past the paper's largest instance (Friendster,
/// 65M vertices). Larger graphs are rejected at construction
/// ([`crate::graph::Graph::new`]) rather than silently corrupted.
pub const MAX_PACKED_VERTEX: VertexId = u32::MAX as VertexId;

/// An undirected edge stored in canonical orientation: `src() < dst()`.
///
/// Simple graphs have no self-loops, so construction of an edge with equal
/// endpoints is rejected at the [`Edge::new`] boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Create a canonical edge from two distinct endpoints (in any order).
    ///
    /// # Panics
    /// Panics if `a == b` (a self-loop can never be materialized in a
    /// simple graph; callers must filter loops before constructing edges).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loop edge ({a},{b}) is not representable");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Create a canonical edge, returning `None` for a self-loop.
    #[inline]
    pub fn try_new(a: VertexId, b: VertexId) -> Option<Self> {
        if a == b {
            None
        } else {
            Some(Self::new(a, b))
        }
    }

    /// Lower endpoint (the vertex whose reduced adjacency list stores the edge).
    #[inline]
    pub fn src(&self) -> VertexId {
        self.u
    }

    /// Higher endpoint.
    #[inline]
    pub fn dst(&self) -> VertexId {
        self.v
    }

    /// Both endpoints as a `(low, high)` pair.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Whether `w` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, w: VertexId) -> bool {
        self.u == w || self.v == w
    }

    /// Both endpoints packed into a single `u64`: `src << 32 | dst`.
    ///
    /// This is the key the hot-path hash maps use: one register-wide
    /// value, one multiply to hash, no per-field dispatch. Because the
    /// edge is canonical (`src < dst`), the packing is injective over
    /// all edges with endpoints `<= MAX_PACKED_VERTEX`.
    ///
    /// # Panics
    /// Panics if either endpoint exceeds [`MAX_PACKED_VERTEX`]; graphs
    /// that large are rejected at [`crate::graph::Graph::new`], so the
    /// check only fires for hand-built edges fed directly into the
    /// storage layer.
    #[inline]
    pub fn key(&self) -> u64 {
        // Single-branch narrowing check for both endpoints: `v` is the
        // larger label, so `v` fitting implies `u` fits.
        assert!(
            self.v <= MAX_PACKED_VERTEX,
            "edge ({},{}) has an endpoint beyond 2^32-1; packed storage \
             supports at most 2^32 vertices",
            self.u,
            self.v
        );
        (self.u << 32) | self.v
    }

    /// Inverse of [`Edge::key`].
    #[inline]
    pub fn from_key(key: u64) -> Self {
        let e = Edge {
            u: key >> 32,
            v: key & 0xFFFF_FFFF,
        };
        debug_assert!(e.u < e.v, "key {key:#x} does not encode a canonical edge");
        e
    }

    /// The endpoint that is not `w`.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if self.u == w {
            self.v
        } else if self.v == w {
            self.u
        } else {
            panic!("vertex {w} is not an endpoint of {self:?}");
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

/// An edge whose orientation carries meaning during a switch operation.
///
/// The paper selects an edge `(u1, v1)` *from the reduced adjacency list*,
/// which always yields `tail < head`; the straight/cross coin then decides
/// how the oriented endpoints recombine (Fig. 3). We keep the orientation
/// explicit so the switch arithmetic mirrors the paper exactly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OrientedEdge {
    /// The lower-labelled endpoint (`u` in the paper).
    pub tail: VertexId,
    /// The higher-labelled endpoint (`v` in the paper).
    pub head: VertexId,
}

impl OrientedEdge {
    /// Orient a canonical edge (tail = lower endpoint).
    #[inline]
    pub fn from_edge(e: Edge) -> Self {
        OrientedEdge {
            tail: e.src(),
            head: e.dst(),
        }
    }

    /// Collapse back to the canonical undirected edge.
    #[inline]
    pub fn edge(&self) -> Edge {
        Edge::new(self.tail, self.head)
    }
}

/// Errors produced by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge already exists (would create a parallel edge).
    ParallelEdge(Edge),
    /// Attempted to add or reference a self-loop.
    SelfLoop(VertexId),
    /// Edge not present in the graph.
    MissingEdge(Edge),
    /// Vertex label out of the graph's `0..n` range.
    UnknownVertex(VertexId),
    /// A degree sequence that cannot be realized as a simple graph.
    UnrealizableDegreeSequence(String),
    /// Input parse failure.
    Parse(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ParallelEdge(e) => write!(f, "edge {e} already exists"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v}"),
            GraphError::MissingEdge(e) => write!(f, "edge {e} not in graph"),
            GraphError::UnknownVertex(v) => write!(f, "vertex {v} out of range"),
            GraphError::UnrealizableDegreeSequence(why) => {
                write!(f, "degree sequence not realizable: {why}")
            }
            GraphError::Parse(why) => write!(f, "parse error: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalizes_orientation() {
        let e = Edge::new(7, 3);
        assert_eq!(e.src(), 3);
        assert_eq!(e.dst(), 7);
        assert_eq!(e, Edge::new(3, 7));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(4, 4);
    }

    #[test]
    fn try_new_filters_loops() {
        assert_eq!(Edge::try_new(1, 1), None);
        assert_eq!(Edge::try_new(2, 1), Some(Edge::new(1, 2)));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        Edge::new(1, 9).other(5);
    }

    #[test]
    fn touches_checks_both_ends() {
        let e = Edge::new(2, 5);
        assert!(e.touches(2));
        assert!(e.touches(5));
        assert!(!e.touches(3));
    }

    #[test]
    fn oriented_round_trip() {
        let e = Edge::new(4, 11);
        let o = OrientedEdge::from_edge(e);
        assert_eq!(o.tail, 4);
        assert_eq!(o.head, 11);
        assert_eq!(o.edge(), e);
    }

    #[test]
    fn key_round_trips_and_orders() {
        let e = Edge::new(7, 3);
        assert_eq!(Edge::from_key(e.key()), e);
        assert_eq!(e.key(), (3u64 << 32) | 7);
        // Key order matches Ord order (both lexicographic on (src, dst)).
        let a = Edge::new(1, 9);
        let b = Edge::new(3, 4);
        assert_eq!(a < b, a.key() < b.key());
        let top = Edge::new(MAX_PACKED_VERTEX - 1, MAX_PACKED_VERTEX);
        assert_eq!(Edge::from_key(top.key()), top);
    }

    #[test]
    #[should_panic(expected = "2^32")]
    fn key_rejects_oversized_labels() {
        let _ = Edge::new(1, MAX_PACKED_VERTEX + 1).key();
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let mut v = vec![Edge::new(3, 4), Edge::new(1, 9), Edge::new(1, 2)];
        v.sort();
        assert_eq!(v, vec![Edge::new(1, 2), Edge::new(1, 9), Edge::new(3, 4)]);
    }
}
