//! Degree sequences: sampling, realizability, and Havel–Hakimi realization.
//!
//! The paper's flagship application pairs the deterministic Havel–Hakimi
//! construction with edge switching: Havel–Hakimi produces *one* graph
//! with the given degree sequence, and randomly switching its edges then
//! samples from the space of graphs with that degree sequence.

use crate::graph::Graph;
use crate::types::{Edge, GraphError, VertexId};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Erdős–Gallai test: is the sequence realizable as a simple graph?
///
/// Requires: Σdᵢ even, and for each k:
/// `Σ_{i≤k} dᵢ ≤ k(k−1) + Σ_{i>k} min(dᵢ, k)` over the sequence sorted
/// descending. `O(n log n)`.
pub fn erdos_gallai(degrees: &[usize]) -> bool {
    let n = degrees.len();
    if n == 0 {
        return true;
    }
    let mut d: Vec<usize> = degrees.to_vec();
    d.sort_unstable_by_key(|&x| Reverse(x));
    if d[0] >= n {
        return false;
    }
    let total: u64 = d.iter().map(|&x| x as u64).sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    // Suffix sums of min(d_i, k) computed incrementally: since d is sorted
    // descending, min(d_i, k) = k for i < cross(k), else d_i.
    let suffix: Vec<u64> = {
        let mut s = vec![0u64; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + d[i] as u64;
        }
        s
    };
    let mut lhs = 0u64;
    for k in 1..=n {
        lhs += d[k - 1] as u64;
        // Number of indices i > k (1-based) with d_i > k: binary search in
        // the descending array over positions k..n.
        let cross = partition_point_gt(&d[k..], k);
        let rhs = (k as u64) * (k as u64 - 1)
            + (cross as u64) * k as u64
            + (suffix[k + cross] - suffix[n]);
        if lhs > rhs {
            return false;
        }
    }
    true
}

/// Number of leading entries of the descending slice strictly greater
/// than `threshold`.
fn partition_point_gt(desc: &[usize], threshold: usize) -> usize {
    desc.partition_point(|&x| x > threshold)
}

/// Havel–Hakimi: deterministically realize a degree sequence as a simple
/// graph, or report why it cannot be done.
///
/// Highest-degree-first greedy with a max-heap: `O(m log n)`.
pub fn havel_hakimi(degrees: &[usize]) -> Result<Graph, GraphError> {
    let n = degrees.len();
    let total: u64 = degrees.iter().map(|&x| x as u64).sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::UnrealizableDegreeSequence(
            "odd degree sum".into(),
        ));
    }
    if degrees.iter().any(|&d| d >= n) {
        return Err(GraphError::UnrealizableDegreeSequence(format!(
            "a degree exceeds n-1 = {}",
            n.saturating_sub(1)
        )));
    }
    let mut g = Graph::with_edge_capacity(n, degrees.iter().sum::<usize>() / 2);
    let mut heap: BinaryHeap<(usize, VertexId)> = degrees
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0)
        .map(|(v, &d)| (d, v as VertexId))
        .collect();
    let mut scratch: Vec<(usize, VertexId)> = Vec::new();
    while let Some((d, v)) = heap.pop() {
        if d == 0 {
            continue;
        }
        scratch.clear();
        for _ in 0..d {
            match heap.pop() {
                Some((du, u)) if du > 0 => scratch.push((du, u)),
                _ => {
                    return Err(GraphError::UnrealizableDegreeSequence(format!(
                        "vertex {v} needs {d} more neighbors but fewer remain"
                    )));
                }
            }
        }
        for &(du, u) in &scratch {
            g.add_edge(Edge::new(v, u))?;
            if du > 1 {
                heap.push((du - 1, u));
            }
        }
    }
    debug_assert_eq!(g.degree_sequence(), degrees);
    Ok(g)
}

/// Sample a power-law degree sequence: `Pr{d = k} ∝ k^(−gamma)` for
/// `k ∈ [d_min, d_max]`, adjusted to an even sum (and renormalized so it
/// passes Erdős–Gallai, by capping `d_max < n`).
pub fn power_law_sequence<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    d_min: usize,
    d_max: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(n > 1 && d_min >= 1 && d_max >= d_min);
    let d_max = d_max.min(n - 1);
    let d_min = d_min.min(d_max);
    // Precompute the discrete CDF.
    let weights: Vec<f64> = (d_min..=d_max).map(|k| (k as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut seq: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            d_min + idx
        })
        .collect();
    // Fix parity by bumping a non-maximal entry.
    if seq.iter().map(|&d| d as u64).sum::<u64>() % 2 != 0 {
        if let Some(slot) = seq.iter_mut().find(|d| **d < d_max) {
            *slot += 1;
        } else {
            seq[0] -= 1; // all entries at d_max >= 1
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn erdos_gallai_accepts_valid() {
        assert!(erdos_gallai(&[])); // empty
        assert!(erdos_gallai(&[0, 0, 0]));
        assert!(erdos_gallai(&[1, 1]));
        assert!(erdos_gallai(&[2, 2, 2])); // triangle
        assert!(erdos_gallai(&[3, 3, 3, 3])); // K4
        assert!(erdos_gallai(&[2, 2, 1, 1])); // path + edge arrangements
    }

    #[test]
    fn erdos_gallai_rejects_invalid() {
        assert!(!erdos_gallai(&[1])); // odd sum
        assert!(!erdos_gallai(&[3, 1, 1])); // fails EG inequality... odd too
        assert!(!erdos_gallai(&[2, 2])); // degree >= n
        assert!(!erdos_gallai(&[4, 4, 4, 4])); // degree >= n
        assert!(!erdos_gallai(&[3, 3, 1, 1])); // classic non-graphical
    }

    #[test]
    fn havel_hakimi_realizes_regular() {
        let g = havel_hakimi(&[3, 3, 3, 3]).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 3, 3, 3]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn havel_hakimi_realizes_heterogeneous() {
        let seq = vec![5, 3, 3, 2, 2, 2, 1, 1, 1, 0];
        assert!(erdos_gallai(&seq));
        let g = havel_hakimi(&seq).unwrap();
        assert_eq!(g.degree_sequence(), seq);
        g.check_invariants().unwrap();
    }

    #[test]
    fn havel_hakimi_rejects_odd_sum() {
        assert!(matches!(
            havel_hakimi(&[1, 1, 1]),
            Err(GraphError::UnrealizableDegreeSequence(_))
        ));
    }

    #[test]
    fn havel_hakimi_rejects_non_graphical() {
        assert!(havel_hakimi(&[3, 3, 1, 1]).is_err());
    }

    #[test]
    fn havel_hakimi_deterministic() {
        let seq = vec![4, 3, 3, 2, 2, 2, 2];
        let a = havel_hakimi(&seq).unwrap();
        let b = havel_hakimi(&seq).unwrap();
        assert!(a.same_edge_set(&b), "Havel–Hakimi must be deterministic");
    }

    #[test]
    fn power_law_sequence_in_bounds_even_sum() {
        let mut rng = Pcg64::seed_from_u64(9);
        let seq = power_law_sequence(2000, 2.5, 2, 100, &mut rng);
        assert_eq!(seq.len(), 2000);
        assert!(seq.iter().all(|&d| (1..=101).contains(&d)));
        assert_eq!(seq.iter().map(|&d| d as u64).sum::<u64>() % 2, 0);
        // Power law: low degrees dominate.
        let low = seq.iter().filter(|&&d| d <= 4).count();
        let high = seq.iter().filter(|&&d| d >= 50).count();
        assert!(
            low > 10 * high.max(1),
            "not heavy-tailed: low={low} high={high}"
        );
    }

    #[test]
    fn power_law_sequence_is_graphical_and_realizable() {
        let mut rng = Pcg64::seed_from_u64(10);
        let seq = power_law_sequence(300, 2.2, 2, 40, &mut rng);
        assert!(erdos_gallai(&seq));
        let g = havel_hakimi(&seq).unwrap();
        assert_eq!(g.degree_sequence(), seq);
    }
}
