//! The shared-memory simple-graph type used by the sequential algorithm,
//! the generators, and the metrics.
//!
//! Invariants maintained at all times:
//! - no self-loops (unrepresentable via [`Edge`]),
//! - no parallel edges ([`Graph::add_edge`] rejects duplicates),
//! - full adjacency and the edge pool agree exactly.

use crate::adjacency::NeighborSet;
use crate::sampling::EdgePool;
use crate::stream::{capacity_hint, EdgeStream};
use crate::types::{Edge, GraphError, VertexId};
use rand::Rng;

/// An undirected simple graph over vertices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<NeighborSet>,
    pool: EdgePool,
}

impl Graph {
    /// Edgeless graph with `n` vertices labelled `0..n`.
    ///
    /// # Panics
    /// Panics if `n > 2^32`: the packed-edge hot path
    /// ([`crate::types::Edge::key`]) narrows endpoints to `u32`, so
    /// larger graphs are out of scope and rejected here — at build, with
    /// a clear message — rather than silently corrupted downstream.
    pub fn new(n: usize) -> Self {
        Self::with_edge_capacity(n, 0)
    }

    /// Edgeless graph with `n` vertices and room for `m` edges
    /// pre-allocated in the sampling pool (see [`Graph::new`] for the
    /// vertex-count limit).
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        assert!(
            n as u128 <= 1 << 32,
            "graph with {n} vertices exceeds the 2^32 packed-storage limit"
        );
        Graph {
            adj: vec![NeighborSet::new(); n],
            pool: EdgePool::with_capacity(m),
        }
    }

    /// Build a graph from an edge iterator, rejecting loops and duplicates.
    ///
    /// Pre-sizes from the checked `size_hint` upper bound when the
    /// iterator reports one (exact-size iterators behind adapters often
    /// report `(0, Some(m))`; sizing from the lower bound alone forced
    /// a rehash-and-regrow cascade on those).
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let edges = edges.into_iter();
        let mut g = Graph::with_edge_capacity(n, capacity_hint(edges.size_hint()));
        for e in edges {
            g.add_edge(e)?;
        }
        Ok(g)
    }

    /// Build a graph by draining an [`EdgeStream`] chunk by chunk, so no
    /// global edge list ever materializes alongside the graph.
    ///
    /// Unlike [`Graph::from_edges`], re-emitted duplicate edges are
    /// *skipped* rather than rejected: streams (notably the
    /// recomputation-based preferential-attachment generator) may
    /// produce occasional multi-edges, and deduplication-on-insert is
    /// part of the streaming contract (see [`crate::stream`]).
    /// Out-of-range endpoints still error.
    pub fn from_stream<S>(n: usize, stream: &mut S) -> Result<Self, GraphError>
    where
        S: EdgeStream + ?Sized,
    {
        let mut g = Graph::with_edge_capacity(n, capacity_hint(stream.size_hint()));
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk) {
            for &e in &chunk {
                match g.add_edge(e) {
                    Ok(()) | Err(GraphError::ParallelEdge(_)) => {}
                    Err(err) => return Err(err),
                }
            }
        }
        Ok(g)
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.pool.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all vertices (`0` for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(NeighborSet::len).max().unwrap_or(0)
    }

    /// Average degree `2m/n`.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.pool.len() as f64 / self.adj.len() as f64
        }
    }

    /// The degree of every vertex, indexed by label.
    pub fn degree_sequence(&self) -> Vec<usize> {
        self.adj.iter().map(NeighborSet::len).collect()
    }

    /// Full neighbor set of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &NeighborSet {
        &self.adj[v as usize]
    }

    /// `O(1)` edge-existence test via the pool's packed-key hash index
    /// (cheaper than probing either endpoint's adjacency array).
    #[inline]
    pub fn has_edge(&self, e: Edge) -> bool {
        self.pool.contains(e)
    }

    /// Add an edge; errors on duplicates or out-of-range endpoints.
    pub fn add_edge(&mut self, e: Edge) -> Result<(), GraphError> {
        let n = self.adj.len() as u64;
        if e.dst() >= n {
            return Err(GraphError::UnknownVertex(e.dst()));
        }
        if !self.pool.insert(e) {
            return Err(GraphError::ParallelEdge(e));
        }
        self.adj[e.src() as usize].insert(e.dst());
        self.adj[e.dst() as usize].insert(e.src());
        Ok(())
    }

    /// Remove an edge; errors if absent.
    pub fn remove_edge(&mut self, e: Edge) -> Result<(), GraphError> {
        if !self.pool.remove(e) {
            return Err(GraphError::MissingEdge(e));
        }
        self.adj[e.src() as usize].remove(e.dst());
        self.adj[e.dst() as usize].remove(e.src());
        Ok(())
    }

    /// Draw an edge uniformly at random.
    #[inline]
    pub fn sample_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Edge> {
        self.pool.sample(rng)
    }

    /// Iterate all edges in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.pool.iter()
    }

    /// Collect all edges into a sorted vector (stable across adjacency
    /// representation details; useful for equality checks in tests).
    pub fn sorted_edges(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self.pool.iter().collect();
        v.sort_unstable();
        v
    }

    /// Order-independent 64-bit digest of the graph: vertex count plus
    /// the sorted edge keys folded through a splitmix-style mixer. Two
    /// graphs digest equal iff they have the same vertex count and edge
    /// set regardless of pool order, so checkpoint/resume identity can
    /// be asserted (and wired over protocols) without shipping the edges.
    pub fn edge_digest(&self) -> u64 {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        let mut keys: Vec<u64> = self.pool.iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        let mut h = mix(0x65646765_u64 ^ self.num_vertices() as u64);
        for k in keys {
            h = mix(h ^ k.wrapping_mul(0x9e3779b97f4a7c15));
        }
        h
    }

    /// Structural equality: same vertex count and same edge set.
    pub fn same_edge_set(&self, other: &Graph) -> bool {
        self.num_vertices() == other.num_vertices()
            && self.num_edges() == other.num_edges()
            && self.edges().all(|e| other.has_edge(e))
    }

    /// Verify all internal invariants (adjacency symmetry, pool/adjacency
    /// agreement, no out-of-range labels). Intended for tests; `O(m log d)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.pool.check_consistent() {
            return Err("edge pool index inconsistent".into());
        }
        let n = self.adj.len() as u64;
        let mut adj_edge_count = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            let u = u as u64;
            for v in nbrs.iter() {
                if v >= n {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if !self.adj[v as usize].contains(u) {
                    return Err(format!("asymmetric adjacency {u}->{v}"));
                }
                if !self.pool.contains(Edge::new(u, v)) {
                    return Err(format!("adjacency edge ({u},{v}) missing from pool"));
                }
                adj_edge_count += 1;
            }
        }
        if adj_edge_count != 2 * self.pool.len() {
            return Err(format!(
                "adjacency lists hold {adj_edge_count} half-edges but pool has {} edges",
                self.pool.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u64 - 1).map(|i| Edge::new(i, i + 1))).unwrap()
    }

    #[test]
    fn edge_digest_is_order_independent_and_discriminating() {
        let g = path_graph(5);
        // Same edge set inserted in reverse pool order digests equal.
        let reversed = Graph::from_edges(5, (0..4u64).rev().map(|i| Edge::new(i, i + 1))).unwrap();
        assert_eq!(g.edge_digest(), reversed.edge_digest());
        // One different edge, or a different vertex count, digests apart.
        let rewired = Graph::from_edges(
            5,
            [(0, 1), (1, 2), (2, 3), (0, 4)].map(|(a, b)| Edge::new(a, b)),
        )
        .unwrap();
        assert_ne!(g.edge_digest(), rewired.edge_digest());
        let padded = Graph::from_edges(6, g.edges()).unwrap();
        assert_ne!(g.edge_digest(), padded.edge_digest());
    }

    #[test]
    fn build_and_query() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(Edge::new(0, 1)));
        assert!(!g.has_edge(Edge::new(0, 2)));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "2^32")]
    fn oversized_vertex_count_rejected_at_build() {
        // The assert fires before any allocation is attempted.
        let _ = Graph::new((1usize << 32) + 1);
    }

    #[test]
    fn with_edge_capacity_behaves_like_new() {
        let mut g = Graph::with_edge_capacity(3, 10);
        g.add_edge(Edge::new(0, 1)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_duplicate_rejected() {
        let mut g = path_graph(3);
        assert!(matches!(
            g.add_edge(Edge::new(1, 0)),
            Err(GraphError::ParallelEdge(_))
        ));
    }

    #[test]
    fn add_out_of_range_rejected() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(Edge::new(0, 3)),
            Err(GraphError::UnknownVertex(3))
        ));
    }

    #[test]
    fn remove_missing_rejected() {
        let mut g = path_graph(3);
        assert!(matches!(
            g.remove_edge(Edge::new(0, 2)),
            Err(GraphError::MissingEdge(_))
        ));
    }

    #[test]
    fn remove_updates_both_sides() {
        let mut g = path_graph(3);
        g.remove_edge(Edge::new(0, 1)).unwrap();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.num_edges(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_sequence_and_avg() {
        let g = path_graph(4);
        assert_eq!(g.degree_sequence(), vec![1, 2, 2, 1]);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_edge_comes_from_graph() {
        let g = path_graph(50);
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..100 {
            let e = g.sample_edge(&mut rng).unwrap();
            assert!(g.has_edge(e));
        }
    }

    #[test]
    fn same_edge_set_detects_difference() {
        let a = path_graph(4);
        let mut b = path_graph(4);
        assert!(a.same_edge_set(&b));
        b.remove_edge(Edge::new(2, 3)).unwrap();
        b.add_edge(Edge::new(1, 3)).unwrap();
        assert!(!a.same_edge_set(&b));
    }
}
