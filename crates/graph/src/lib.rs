//! # edgeswitch-graph
//!
//! Graph substrate for the edge-switching reproduction of Bhuiyan et al.,
//! *"Fast Parallel Algorithms for Edge-Switching to Achieve a Target Visit
//! Rate in Heterogeneous Graphs"* (ICPP 2014 / JPDC).
//!
//! Provides:
//! - simple undirected graphs with O(1) uniform edge sampling
//!   ([`graph::Graph`], [`sampling::EdgePool`]) over cache-compact
//!   packed-edge storage ([`hashing`], [`adjacency::NeighborSet`]),
//! - per-processor *reduced adjacency* partitions ([`store::PartitionStore`]),
//! - the paper's four partitioning schemes ([`partition::Partitioner`]),
//! - generators for the Table 2 dataset inventory ([`generators`]),
//!   including streaming prescribed-degree and preferential-attachment
//!   constructors that never materialize a global edge list ([`stream`]),
//! - degree-sequence tooling including Havel–Hakimi ([`degree`]),
//! - network metrics for the trajectory experiments ([`metrics`]),
//! - edge-list I/O ([`io`]).

#![warn(missing_docs)]

pub mod adjacency;
pub mod degree;
pub mod generators;
pub mod graph;
pub mod hashing;
pub mod io;
pub mod io_binary;
pub mod metrics;
pub mod partition;
pub mod sampling;
pub mod store;
pub mod stream;
pub mod types;

pub use graph::Graph;
pub use partition::{Partitioner, SchemeKind};
pub use store::PartitionStore;
pub use stream::{EdgeStream, IterStream, OwnedOnly};
pub use types::{Edge, GraphError, OrientedEdge, VertexId};
