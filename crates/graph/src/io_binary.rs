//! Compact binary edge-list format.
//!
//! Massive graphs (the paper's PA-1B has 10B edges) are impractical as
//! text; this module defines a little-endian binary framing with a
//! magic/version header and varint-delta edge encoding, cutting storage
//! to a few bytes per edge on vertex-sorted input.
//!
//! Layout:
//! ```text
//! magic  "ESGB"            4 bytes
//! version u8               (currently 1)
//! n       u64 LE           vertex count
//! m       u64 LE           edge count
//! edges   m × (varint Δsrc, varint dst-src)   sorted by (src, dst)
//! ```

use crate::graph::Graph;
use crate::types::{Edge, GraphError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ESGB";
const VERSION: u8 = 1;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, GraphError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(GraphError::Parse("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(GraphError::Parse("varint overflow".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize a graph to the binary format.
pub fn to_bytes(graph: &Graph) -> Bytes {
    let mut edges = graph.sorted_edges();
    edges.sort_unstable();
    let mut buf = BytesMut::with_capacity(21 + 4 * edges.len());
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(graph.num_vertices() as u64);
    buf.put_u64_le(edges.len() as u64);
    let mut prev_src = 0u64;
    for e in edges {
        put_varint(&mut buf, e.src() - prev_src);
        put_varint(&mut buf, e.dst() - e.src());
        prev_src = e.src();
    }
    buf.freeze()
}

/// Deserialize a graph from the binary format.
pub fn from_bytes(mut data: Bytes) -> Result<Graph, GraphError> {
    if data.remaining() < 21 {
        return Err(GraphError::Parse("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Parse(format!("bad magic {magic:?}")));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(GraphError::Parse(format!("unsupported version {version}")));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le();
    // Pre-size from the header, capped by what the payload could hold
    // (>= 2 bytes per edge) so a corrupt length cannot force a huge
    // allocation before the parse error surfaces.
    let mut g = Graph::with_edge_capacity(n, (m as usize).min(data.remaining() / 2));
    let mut prev_src = 0u64;
    for _ in 0..m {
        let src = prev_src + get_varint(&mut data)?;
        let delta = get_varint(&mut data)?;
        if delta == 0 {
            return Err(GraphError::SelfLoop(src));
        }
        g.add_edge(Edge::new(src, src + delta))?;
        prev_src = src;
    }
    if data.has_remaining() {
        return Err(GraphError::Parse(format!(
            "{} trailing bytes after {m} edges",
            data.remaining()
        )));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn round_trip_random_graph() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = erdos_renyi_gnm(500, 3000, &mut rng);
        let bytes = to_bytes(&g);
        let h = from_bytes(bytes).unwrap();
        assert!(g.same_edge_set(&h));
        assert_eq!(h.num_vertices(), 500);
    }

    #[test]
    fn round_trip_empty_graph() {
        let g = Graph::new(7);
        let h = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn compact_encoding_beats_text() {
        let mut rng = Pcg64::seed_from_u64(2);
        let g = erdos_renyi_gnm(2000, 20_000, &mut rng);
        let bin = to_bytes(&g).len();
        let mut text = Vec::new();
        crate::io::write_edge_list(&g, &mut text).unwrap();
        assert!(
            bin * 2 < text.len(),
            "binary {bin} bytes should be <50% of text {}",
            text.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let data = Bytes::from_static(b"XXXX\x01\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0");
        assert!(matches!(from_bytes(data), Err(GraphError::Parse(_))));
    }

    #[test]
    fn rejects_truncation() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = erdos_renyi_gnm(50, 100, &mut rng);
        let full = to_bytes(&g);
        let cut = full.slice(0..full.len() - 3);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let g = Graph::new(3);
        let mut raw = BytesMut::from(&to_bytes(&g)[..]);
        raw.put_u8(0xff);
        assert!(matches!(
            from_bytes(raw.freeze()),
            Err(GraphError::Parse(_))
        ));
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
            assert!(!b.has_remaining());
        }
    }
}
