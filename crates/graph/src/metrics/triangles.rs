//! Triangle counting and global clustering (transitivity).

use crate::graph::Graph;
use rayon::prelude::*;

/// Total number of triangles in the graph.
///
/// Per-vertex neighbor-pair intersection with the canonical `u < v < w`
/// ordering so each triangle is counted once; parallel over vertices.
pub fn triangle_count(graph: &Graph) -> u64 {
    let n = graph.num_vertices() as u64;
    (0..n)
        .into_par_iter()
        .map(|u| {
            let nu = graph.neighbors(u);
            let mut tri = 0u64;
            for v in nu.iter() {
                if v <= u {
                    continue;
                }
                // Count w > v adjacent to both u and v.
                for w in graph.neighbors(v).iter() {
                    if w > v && nu.contains(w) {
                        tri += 1;
                    }
                }
            }
            tri
        })
        .sum()
}

/// Number of connected ordered triples ("wedges"/paths of length 2,
/// counted as unordered center-based pairs): `Σ_v d_v (d_v − 1) / 2`.
pub fn wedge_count(graph: &Graph) -> u64 {
    (0..graph.num_vertices() as u64)
        .map(|v| {
            let d = graph.degree(v) as u64;
            d * (d.saturating_sub(1)) / 2
        })
        .sum()
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`;
/// `0` when the graph has no wedges.
pub fn transitivity(graph: &Graph) -> f64 {
    let wedges = wedge_count(graph);
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(graph) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::families::{complete, cycle, path, star};

    #[test]
    fn complete_graph_triangles() {
        // K5: C(5,3) = 10 triangles, transitivity 1.
        let g = complete(5);
        assert_eq!(triangle_count(&g), 10);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(triangle_count(&path(10)), 0);
        assert_eq!(triangle_count(&star(10)), 0);
        assert_eq!(triangle_count(&cycle(5)), 0);
        assert_eq!(transitivity(&path(10)), 0.0);
    }

    #[test]
    fn wedge_count_of_star() {
        // Star hub degree 9: C(9,2) = 36 wedges.
        assert_eq!(wedge_count(&star(10)), 36);
    }

    #[test]
    fn single_triangle() {
        let g = cycle(3);
        assert_eq!(triangle_count(&g), 1);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = crate::graph::Graph::new(5);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(transitivity(&g), 0.0);
    }
}
