//! Shortest-path distances.
//!
//! The paper computes *approximate* average shortest path distance for its
//! Figure 13 trajectories because exact all-pairs BFS is "very time
//! consuming"; we provide both the exact version (for tests and small
//! graphs) and the sampled-sources estimator the paper uses.

use super::sample_vertices;
use crate::graph::Graph;
use crate::types::VertexId;
use rand::Rng;
use rayon::prelude::*;
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for w in graph.neighbors(v).iter() {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Sum and count of finite, non-zero distances from `source`.
fn reachable_sum(graph: &Graph, source: VertexId) -> (u64, u64) {
    let dist = bfs_distances(graph, source);
    let mut sum = 0u64;
    let mut cnt = 0u64;
    for &d in &dist {
        if d != u32::MAX && d != 0 {
            sum += d as u64;
            cnt += 1;
        }
    }
    (sum, cnt)
}

/// Exact average shortest path over all connected ordered pairs.
/// `O(n(n+m))` — use only on small graphs.
pub fn average_shortest_path_exact(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n < 2 {
        return 0.0;
    }
    let (sum, cnt) = (0..n as u64)
        .into_par_iter()
        .map(|v| reachable_sum(graph, v))
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Approximate average shortest path: full BFS from `sources` sampled
/// vertices, averaging distances to every reached vertex — the standard
/// estimator the paper relies on for Figure 13.
pub fn average_shortest_path_sampled<R: Rng + ?Sized>(
    graph: &Graph,
    sources: usize,
    rng: &mut R,
) -> f64 {
    let n = graph.num_vertices();
    if n < 2 || sources == 0 {
        return 0.0;
    }
    let chosen = sample_vertices(n, sources, rng);
    let (sum, cnt) = chosen
        .par_iter()
        .map(|&v| reachable_sum(graph, v))
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u64 - 1).map(|i| Edge::new(i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, vec![Edge::new(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn exact_on_path_of_three() {
        // Pairs: (0,1)=1 (0,2)=2 (1,2)=1, each ordered twice: avg = 8/6.
        let g = path(3);
        assert!((average_shortest_path_exact(&g) - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn exact_on_complete_graph_is_one() {
        let mut edges = vec![];
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push(Edge::new(u, v));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        assert!((average_shortest_path_exact(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_close_to_exact() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = crate::generators::erdos_renyi_gnm(400, 1600, &mut rng);
        let exact = average_shortest_path_exact(&g);
        let approx = average_shortest_path_sampled(&g, 120, &mut rng);
        assert!(
            (exact - approx).abs() / exact < 0.1,
            "sampled {approx} vs exact {exact}"
        );
    }

    #[test]
    fn degenerate_graphs() {
        assert_eq!(average_shortest_path_exact(&Graph::new(0)), 0.0);
        assert_eq!(average_shortest_path_exact(&Graph::new(1)), 0.0);
        // All isolated: no reachable pairs.
        assert_eq!(average_shortest_path_exact(&Graph::new(5)), 0.0);
    }
}
