//! Degree assortativity: the Pearson correlation of degrees across
//! edges (Newman 2002). Switching drives heterogeneous graphs toward
//! zero assortativity as structure is randomized — a useful companion
//! metric to the paper's clustering/path trajectories.

use crate::graph::Graph;

/// Degree assortativity coefficient in `[-1, 1]`; `None` when undefined
/// (fewer than 2 edges, or zero degree variance — e.g. regular graphs).
pub fn degree_assortativity(graph: &Graph) -> Option<f64> {
    let m = graph.num_edges();
    if m < 2 {
        return None;
    }
    // Pearson correlation over the 2m ordered endpoint pairs.
    let mut sum_xy = 0.0f64;
    let mut sum_x = 0.0f64;
    let mut sum_x2 = 0.0f64;
    for e in graph.edges() {
        let du = graph.degree(e.src()) as f64;
        let dv = graph.degree(e.dst()) as f64;
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    let n = 2.0 * m as f64;
    let mean = sum_x / n;
    let var = sum_x2 / n - mean * mean;
    if var <= 1e-12 {
        return None; // regular graph: correlation undefined
    }
    let cov = sum_xy / n - mean * mean;
    Some((cov / var).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    #[test]
    fn undefined_for_tiny_or_regular() {
        assert_eq!(degree_assortativity(&Graph::new(3)), None);
        // Triangle: 2-regular.
        let tri =
            Graph::from_edges(3, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]).unwrap();
        assert_eq!(degree_assortativity(&tri), None);
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let star = Graph::from_edges(6, (1..6u64).map(|v| Edge::new(0, v))).unwrap();
        let r = degree_assortativity(&star).unwrap();
        assert!(r < -0.99, "star assortativity should be -1, got {r}");
    }

    #[test]
    fn paired_cliques_are_assortative() {
        // Two disjoint K4s plus a long path: high-degree vertices attach
        // to high-degree vertices, low to low.
        let mut edges = vec![];
        for base in [0u64, 4] {
            for a in 0..4u64 {
                for b in (a + 1)..4 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        for v in 8..15u64 {
            edges.push(Edge::new(v, v + 1));
        }
        let g = Graph::from_edges(16, edges).unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!(r > 0.5, "clique+path should be assortative, got {r}");
    }

    #[test]
    fn switching_pushes_toward_zero() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(1);
        let g0 = crate::generators::preferential_attachment(800, 4, &mut rng);
        let r0 = degree_assortativity(&g0).unwrap();
        // PA graphs are disassortative; after heavy randomization within
        // the degree class the magnitude should not grow.
        assert!(r0 < 0.0);
    }
}
