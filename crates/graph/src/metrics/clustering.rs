//! Clustering coefficients.

use super::sample_vertices;
use crate::graph::Graph;
use crate::types::VertexId;
use rand::Rng;
use rayon::prelude::*;

/// Local clustering coefficient of `v`: the fraction of neighbor pairs
/// that are themselves adjacent; `0` for degree < 2.
pub fn local_clustering(graph: &Graph, v: VertexId) -> f64 {
    let nbrs = graph.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    // Count edges among neighbors: for each neighbor u, intersect N(u)
    // with N(v); every triangle through v counted twice.
    let mut links = 0usize;
    for u in nbrs.iter() {
        links += graph.neighbors(u).intersection_size(nbrs);
    }
    links as f64 / (d * (d - 1)) as f64
}

/// Exact average clustering coefficient (mean of local coefficients over
/// all vertices). Parallelized over vertices with rayon.
pub fn average_clustering_exact(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n as u64)
        .into_par_iter()
        .map(|v| local_clustering(graph, v))
        .sum();
    total / n as f64
}

/// Sampled average clustering: mean of local coefficients over `samples`
/// uniformly chosen vertices — the estimator of Schank & Wagner, unbiased
/// for the exact average.
pub fn average_clustering_sampled<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = graph.num_vertices();
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let chosen = sample_vertices(n, samples, rng);
    let total: f64 = chosen.iter().map(|&v| local_clustering(graph, v)).sum();
    total / chosen.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn triangle_with_tail() -> Graph {
        Graph::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(0, 2),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn local_clustering_of_triangle_vertices() {
        let g = triangle_with_tail();
        assert_eq!(local_clustering(&g, 0), 1.0);
        assert_eq!(local_clustering(&g, 1), 1.0);
        // Vertex 2 has neighbors {0,1,3}; only (0,1) adjacent: 1/3.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        // Degree-1 vertex.
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn exact_average_matches_hand_computation() {
        let g = triangle_with_tail();
        let expect = (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0;
        assert!((average_clustering_exact(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_has_cc_one() {
        let mut edges = vec![];
        for u in 0..6u64 {
            for v in (u + 1)..6 {
                edges.push(Edge::new(u, v));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        assert!((average_clustering_exact(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_has_cc_zero() {
        let g = Graph::from_edges(7, (1..7u64).map(|v| Edge::new((v - 1) / 2, v))).unwrap();
        assert_eq!(average_clustering_exact(&g), 0.0);
    }

    #[test]
    fn sampled_close_to_exact() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = crate::generators::small_world(600, 8, 0.05, &mut rng);
        let exact = average_clustering_exact(&g);
        let approx = average_clustering_sampled(&g, 300, &mut rng);
        assert!(
            (exact - approx).abs() < 0.08,
            "sampled {approx} vs exact {exact}"
        );
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(average_clustering_exact(&Graph::new(0)), 0.0);
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(
            average_clustering_sampled(&Graph::new(0), 10, &mut rng),
            0.0
        );
    }
}
