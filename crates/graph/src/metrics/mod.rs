//! Network property metrics used by the paper's trajectory experiments
//! (Figures 12–13): average clustering coefficient and average shortest
//! path distance, each in exact and sampled (approximate) variants.

mod assortativity;
mod clustering;
mod paths;
mod triangles;

pub use assortativity::degree_assortativity;
pub use clustering::{average_clustering_exact, average_clustering_sampled, local_clustering};
pub use paths::{average_shortest_path_exact, average_shortest_path_sampled, bfs_distances};
pub use triangles::{transitivity, triangle_count, wedge_count};

use crate::graph::Graph;
use crate::types::VertexId;

/// Connected-component count via repeated BFS.
pub fn connected_components(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u64 {
        if seen[start as usize] {
            continue;
        }
        components += 1;
        seen[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for w in graph.neighbors(v).iter() {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    components
}

/// Whether the graph is connected (a single component; the empty graph is
/// trivially connected).
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph) <= 1
}

/// Histogram of degrees: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in 0..graph.num_vertices() as u64 {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Uniformly sample `k` distinct vertices (Floyd's algorithm when `k` is
/// small relative to `n`).
pub(crate) fn sample_vertices<R: rand::Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    use std::collections::HashSet;
    let k = k.min(n);
    if k * 3 >= n {
        let mut all: Vec<VertexId> = (0..n as u64).collect();
        // Partial Fisher–Yates.
        for i in 0..k {
            let j = rng.gen_range(i..n);
            all.swap(i, j);
        }
        all.truncate(k);
        return all;
    }
    let mut chosen = HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let v = rng.gen_range(0..n as u64);
        if chosen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn components_of_two_triangles() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(3, 5),
        ];
        let g = Graph::from_edges(6, edges).unwrap();
        assert_eq!(connected_components(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn path_is_connected() {
        let g = Graph::from_edges(4, (0..3u64).map(|i| Edge::new(i, i + 1))).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_vertices_count_as_components() {
        let g = Graph::new(3);
        assert_eq!(connected_components(&g), 3);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = Graph::from_edges(5, (1..5u64).map(|v| Edge::new(0, v))).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn sample_vertices_distinct_and_in_range() {
        let mut rng = Pcg64::seed_from_u64(1);
        for (n, k) in [(100, 10), (50, 50), (10, 3), (30, 25)] {
            let s = sample_vertices(n, k, &mut rng);
            assert_eq!(s.len(), k.min(n));
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), s.len(), "duplicates in sample");
            assert!(s.iter().all(|&v| (v as usize) < n));
        }
    }
}
