//! O(1) uniform edge sampling with O(1) insert/remove.
//!
//! Both the sequential algorithm (Alg. 1) and every partition of the
//! parallel algorithm must repeatedly draw edges uniformly at random from a
//! *dynamically changing* edge set. A `Vec` of edges paired with a
//! position index gives O(1) `sample`, O(1) `insert`, and O(1) `remove`
//! (swap-remove), which is what makes the `O(t log d_max)` bound of the
//! paper achievable in practice.
//!
//! The position index is keyed on the packed-`u64` edge key
//! ([`Edge::key`]) and hashed with the in-repo [`crate::hashing`]
//! multiply-rotate-xor hasher: one register-wide key, one multiply per
//! probe, versus SipHash over a 16-byte struct with the default hasher.
//! Every switch operation performs at least one existence probe and four
//! index updates, so this map is the hottest structure in the system.

use crate::hashing::{map_with_capacity, FxHashMap};
use crate::types::Edge;
use rand::Rng;

/// A dynamic multiset-free edge pool supporting uniform sampling.
#[derive(Clone, Debug, Default)]
pub struct EdgePool {
    edges: Vec<Edge>,
    pos: FxHashMap<u64, u32>,
}

impl EdgePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool pre-sized for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        EdgePool {
            edges: Vec::with_capacity(cap),
            pos: map_with_capacity(cap),
        }
    }

    /// Number of edges currently in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the pool holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the pool contains `e`.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.pos.contains_key(&e.key())
    }

    /// Insert `e`; returns `false` (and leaves the pool unchanged) if the
    /// edge is already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        debug_assert!(self.edges.len() < u32::MAX as usize, "EdgePool overflow");
        let idx = self.edges.len() as u32;
        match self.pos.entry(e.key()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(idx);
                self.edges.push(e);
                true
            }
        }
    }

    /// Remove `e`; returns `false` if it was not present.
    pub fn remove(&mut self, e: Edge) -> bool {
        let Some(idx) = self.pos.remove(&e.key()) else {
            return false;
        };
        let idx = idx as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(idx, last);
        self.edges.pop();
        if idx < self.edges.len() {
            // The formerly-last edge moved into `idx`.
            self.pos.insert(self.edges[idx].key(), idx as u32);
        }
        true
    }

    /// Draw one edge uniformly at random; `None` on an empty pool.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Edge> {
        if self.edges.is_empty() {
            None
        } else {
            Some(self.edges[rng.gen_range(0..self.edges.len())])
        }
    }

    /// Iterate over all edges in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// The edge stored at dense index `i` (used by deterministic drivers).
    #[inline]
    pub fn get(&self, i: usize) -> Option<Edge> {
        self.edges.get(i).copied()
    }

    /// Internal consistency check: the position index matches the dense
    /// array exactly. Used by tests and debug assertions.
    pub fn check_consistent(&self) -> bool {
        self.pos.len() == self.edges.len()
            && self
                .edges
                .iter()
                .enumerate()
                .all(|(i, e)| self.pos.get(&e.key()).map(|&p| p as usize) == Some(i))
    }
}

impl FromIterator<Edge> for EdgePool {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut pool = EdgePool::with_capacity(iter.size_hint().0);
        for e in iter {
            pool.insert(e);
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn e(a: u64, b: u64) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn insert_remove_contains() {
        let mut p = EdgePool::new();
        assert!(p.insert(e(1, 2)));
        assert!(p.insert(e(2, 3)));
        assert!(!p.insert(e(1, 2)), "duplicate insert must be rejected");
        assert!(p.contains(e(1, 2)));
        assert_eq!(p.len(), 2);
        assert!(p.remove(e(1, 2)));
        assert!(!p.remove(e(1, 2)));
        assert!(!p.contains(e(1, 2)));
        assert_eq!(p.len(), 1);
        assert!(p.check_consistent());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut p = EdgePool::new();
        for i in 0..50u64 {
            p.insert(e(i, i + 1));
        }
        // Remove from the middle repeatedly.
        for i in (0..50u64).step_by(3) {
            assert!(p.remove(e(i, i + 1)));
            assert!(p.check_consistent());
        }
    }

    #[test]
    fn sample_none_on_empty() {
        let p = EdgePool::new();
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), None);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut p = EdgePool::new();
        let k = 8u64;
        for i in 0..k {
            p.insert(e(i, i + 100));
        }
        let mut rng = Pcg64::seed_from_u64(42);
        let trials = 80_000;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..trials {
            let s = p.sample(&mut rng).unwrap();
            counts[s.src() as usize] += 1;
        }
        let expect = trials as f64 / k as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "sampling deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn from_iterator_dedups() {
        let p: EdgePool = vec![e(1, 2), e(2, 1), e(3, 4)].into_iter().collect();
        assert_eq!(p.len(), 2);
    }
}
