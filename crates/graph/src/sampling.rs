//! O(1) uniform edge sampling with O(1) insert/remove.
//!
//! Both the sequential algorithm (Alg. 1) and every partition of the
//! parallel algorithm must repeatedly draw edges uniformly at random from a
//! *dynamically changing* edge set. A dense array of edges paired with a
//! position index gives O(1) `sample`, O(1) `insert`, and O(1) `remove`
//! (swap-remove), which is what makes the `O(t log d_max)` bound of the
//! paper achievable in practice.
//!
//! The dense array is *chunked*: fixed-size edge blocks of
//! [`BLOCK_EDGES`] edges ([`EdgeBlocks`]) instead of one contiguous
//! `Vec`. Dense index `i` lives at `blocks[i >> BLOCK_SHIFT][i &
//! BLOCK_MASK]`, so indexing stays O(1) while memory grows and shrinks
//! in 128 KiB steps — no doubling reallocation that momentarily holds
//! 1.5× the edge set, and no up-front O(m) reservation. That bounds a
//! streamed build's peak RSS at O(edges stored + one block), which is
//! what lets the generate→partition pipeline run at 10⁷–10⁸ edges
//! without a global edge list (see `crate::stream`). A small free list
//! of emptied blocks absorbs remove/insert churn at a block boundary
//! without round-tripping the allocator.
//!
//! The position index is keyed on the packed-`u64` edge key
//! ([`Edge::key`]) and hashed with the in-repo [`crate::hashing`]
//! multiply-rotate-xor hasher: one register-wide key, one multiply per
//! probe, versus SipHash over a 16-byte struct with the default hasher.
//! Every switch operation performs at least one existence probe and four
//! index updates, so this map is the hottest structure in the system.

use crate::hashing::{map_with_capacity, FxHashMap};
use crate::types::{Edge, VertexId};
use rand::Rng;

/// In-place Fisher–Yates shuffle.
///
/// Draws exactly `items.len().saturating_sub(1)` values from `rng`
/// (one `gen_range` per position, back to front), so the consumed RNG
/// stream depends only on the slice length — a prerequisite for the
/// Curveball engines, which replay per-trade substreams bit-exactly
/// across sequential, threaded, and simulated drivers.
pub fn fisher_yates_shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A uniformly random permutation of `0..n`, seeded by `rng`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    fisher_yates_shuffle(&mut perm, rng);
    perm
}

/// A uniformly random perfect matching of the vertices `0..n`: `⌊n/2⌋`
/// disjoint pairs, each canonicalized as `(min, max)`. For odd `n` one
/// vertex is left unmatched.
///
/// This is the per-pass pairing primitive of the global Curveball
/// trade sequence: pair `k` is `(perm[2k], perm[2k+1])` of a random
/// permutation, so every vertex appears in at most one pair and every
/// matching is equally likely.
pub fn random_matching<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(VertexId, VertexId)> {
    let perm = random_permutation(n, rng);
    perm.chunks_exact(2)
        .map(|pair| (pair[0].min(pair[1]), pair[0].max(pair[1])))
        .collect()
}

/// log₂ of the edges per block: blocks hold 2¹⁴ = 16 384 packed edges
/// (128 KiB), small enough that a near-empty pool wastes at most one
/// block and large enough that the block table is negligible (6 103
/// pointers at m = 10⁸).
const BLOCK_SHIFT: usize = 14;
/// Edges per fixed-size block.
const BLOCK_EDGES: usize = 1 << BLOCK_SHIFT;
/// Within-block index mask.
const BLOCK_MASK: usize = BLOCK_EDGES - 1;
/// Emptied blocks kept on the free list before being returned to the
/// allocator (absorbs swap-remove/insert churn at a block boundary).
const SPARE_BLOCKS: usize = 4;

/// The chunked dense array behind [`EdgePool`]: a table of fixed-size
/// edge blocks with exact `Vec`-of-`Edge` semantics (push, pop, swap,
/// index) so pool order — and therefore sampling order and the
/// bit-identity guarantees of the deterministic drivers — is unchanged
/// from the contiguous representation it replaces.
#[derive(Clone, Debug, Default)]
struct EdgeBlocks {
    /// `blocks.len() == len.div_ceil(BLOCK_EDGES)`; every block but the
    /// last holds exactly [`BLOCK_EDGES`] edges.
    blocks: Vec<Vec<Edge>>,
    /// Emptied blocks retained for reuse, each with full capacity.
    spare: Vec<Vec<Edge>>,
    len: usize,
}

impl EdgeBlocks {
    fn with_capacity(cap: usize) -> Self {
        // Only the block *table* is reserved; blocks themselves are
        // allocated on demand, 128 KiB at a time.
        EdgeBlocks {
            blocks: Vec::with_capacity(cap.div_ceil(BLOCK_EDGES)),
            spare: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> Edge {
        self.blocks[i >> BLOCK_SHIFT][i & BLOCK_MASK]
    }

    #[inline]
    fn set(&mut self, i: usize, e: Edge) {
        self.blocks[i >> BLOCK_SHIFT][i & BLOCK_MASK] = e;
    }

    #[inline]
    fn try_get(&self, i: usize) -> Option<Edge> {
        if i < self.len {
            Some(self.get(i))
        } else {
            None
        }
    }

    fn push(&mut self, e: Edge) {
        if self.len & BLOCK_MASK == 0 {
            debug_assert_eq!(self.blocks.len(), self.len >> BLOCK_SHIFT);
            let block = self
                .spare
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(BLOCK_EDGES));
            self.blocks.push(block);
        }
        self.blocks.last_mut().expect("block just ensured").push(e);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Edge> {
        if self.len == 0 {
            return None;
        }
        let e = self
            .blocks
            .last_mut()
            .expect("non-empty")
            .pop()
            .expect("last block non-empty");
        self.len -= 1;
        if self.len & BLOCK_MASK == 0 {
            let block = self.blocks.pop().expect("emptied block present");
            debug_assert!(block.is_empty());
            if self.spare.len() < SPARE_BLOCKS {
                self.spare.push(block);
            }
        }
        Some(e)
    }

    #[inline]
    fn swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let (a, b) = (self.get(i), self.get(j));
        self.set(i, b);
        self.set(j, a);
    }

    fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.blocks.iter().flat_map(|b| b.iter().copied())
    }

    /// Block-structure invariants (used by `check_consistent`).
    fn check_blocks(&self) -> bool {
        self.blocks.len() == self.len.div_ceil(BLOCK_EDGES)
            && self.len == self.blocks.iter().map(Vec::len).sum::<usize>()
            && self
                .blocks
                .iter()
                .rev()
                .skip(1)
                .all(|b| b.len() == BLOCK_EDGES)
    }
}

/// Content equality in dense order; the free list is not observable.
impl PartialEq for EdgeBlocks {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

/// A dynamic multiset-free edge pool supporting uniform sampling.
#[derive(Clone, Debug, Default)]
pub struct EdgePool {
    edges: EdgeBlocks,
    pos: FxHashMap<u64, u32>,
}

impl EdgePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool pre-sized for `cap` edges. Only the position index and the
    /// block table reserve memory up front; edge blocks are allocated
    /// on demand in [`BLOCK_EDGES`]-edge steps.
    pub fn with_capacity(cap: usize) -> Self {
        EdgePool {
            edges: EdgeBlocks::with_capacity(cap),
            pos: map_with_capacity(cap),
        }
    }

    /// Number of edges currently in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the pool holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.len() == 0
    }

    /// Whether the pool contains `e`.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.pos.contains_key(&e.key())
    }

    /// Insert `e`; returns `false` (and leaves the pool unchanged) if the
    /// edge is already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        debug_assert!(self.edges.len() < u32::MAX as usize, "EdgePool overflow");
        let idx = self.edges.len() as u32;
        match self.pos.entry(e.key()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(idx);
                self.edges.push(e);
                true
            }
        }
    }

    /// Remove `e`; returns `false` if it was not present.
    pub fn remove(&mut self, e: Edge) -> bool {
        let Some(idx) = self.pos.remove(&e.key()) else {
            return false;
        };
        let idx = idx as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(idx, last);
        self.edges.pop();
        if idx < self.edges.len() {
            // The formerly-last edge moved into `idx`.
            self.pos.insert(self.edges.get(idx).key(), idx as u32);
        }
        true
    }

    /// Remove `e`, reporting the dense index it occupied so the removal
    /// can be undone exactly with [`EdgePool::unremove`]. Returns `None`
    /// (pool unchanged) if the edge was not present.
    ///
    /// This is the undo-log primitive of the speculative batch path: a
    /// rank applies switches optimistically, logs `(edge, index)` pairs,
    /// and on a rejected verdict replays them in reverse.
    pub fn remove_logged(&mut self, e: Edge) -> Option<u32> {
        let idx = self.pos.remove(&e.key())?;
        let i = idx as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(i, last);
        self.edges.pop();
        if i < self.edges.len() {
            // The formerly-last edge moved into `i`.
            self.pos.insert(self.edges.get(i).key(), idx);
        }
        Some(idx)
    }

    /// Undo a [`EdgePool::remove_logged`] of `e` that reported `at`:
    /// the edge currently occupying `at` (the one swap-remove moved
    /// there) returns to the end of the array, and `e` takes its old
    /// slot back. When undone in exact reverse order of a remove/insert
    /// sequence, this restores the dense array *and* the position index
    /// bit-for-bit. If `at` is out of range (possible only when later
    /// operations were committed rather than undone, shrinking the
    /// pool), the edge is appended instead — content-equivalent and
    /// still deterministic, just not position-identical.
    ///
    /// Returns `false` (pool unchanged) if `e` is already present.
    pub fn unremove(&mut self, e: Edge, at: u32) -> bool {
        if self.pos.contains_key(&e.key()) {
            return false;
        }
        let i = at as usize;
        if i >= self.edges.len() {
            return self.insert(e);
        }
        let displaced = self.edges.get(i);
        let end = self.edges.len() as u32;
        self.edges.push(displaced);
        self.pos.insert(displaced.key(), end);
        self.edges.set(i, e);
        self.pos.insert(e.key(), at);
        true
    }

    /// Draw one edge uniformly at random; `None` on an empty pool.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Edge> {
        if self.edges.len() == 0 {
            None
        } else {
            Some(self.edges.get(rng.gen_range(0..self.edges.len())))
        }
    }

    /// Iterate over all edges in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter()
    }

    /// The edge stored at dense index `i` (used by deterministic drivers).
    #[inline]
    pub fn get(&self, i: usize) -> Option<Edge> {
        self.edges.try_get(i)
    }

    /// Internal consistency check: the position index matches the dense
    /// array exactly and the block structure is well-formed. Used by
    /// tests and debug assertions.
    pub fn check_consistent(&self) -> bool {
        self.edges.check_blocks()
            && self.pos.len() == self.edges.len()
            && self
                .edges
                .iter()
                .enumerate()
                .all(|(i, e)| self.pos.get(&e.key()).map(|&p| p as usize) == Some(i))
    }
}

impl FromIterator<Edge> for EdgePool {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut pool = EdgePool::with_capacity(iter.size_hint().0);
        for e in iter {
            pool.insert(e);
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn e(a: u64, b: u64) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn insert_remove_contains() {
        let mut p = EdgePool::new();
        assert!(p.insert(e(1, 2)));
        assert!(p.insert(e(2, 3)));
        assert!(!p.insert(e(1, 2)), "duplicate insert must be rejected");
        assert!(p.contains(e(1, 2)));
        assert_eq!(p.len(), 2);
        assert!(p.remove(e(1, 2)));
        assert!(!p.remove(e(1, 2)));
        assert!(!p.contains(e(1, 2)));
        assert_eq!(p.len(), 1);
        assert!(p.check_consistent());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut p = EdgePool::new();
        for i in 0..50u64 {
            p.insert(e(i, i + 1));
        }
        // Remove from the middle repeatedly.
        for i in (0..50u64).step_by(3) {
            assert!(p.remove(e(i, i + 1)));
            assert!(p.check_consistent());
        }
    }

    #[test]
    fn pool_spans_block_boundaries_consistently() {
        // Fill past two block boundaries, then churn across them: the
        // chunked array must behave exactly like one dense Vec.
        let total = 2 * BLOCK_EDGES + 1000;
        let mut p = EdgePool::new();
        for i in 0..total as u64 {
            assert!(p.insert(e(i, i + total as u64)));
        }
        assert_eq!(p.len(), total);
        assert!(p.check_consistent());
        // Dense order is insertion order before any removal.
        for (i, edge) in p.iter().enumerate() {
            assert_eq!(edge, e(i as u64, (i + total) as u64));
            if i > 10 {
                break;
            }
        }
        assert_eq!(
            p.get(BLOCK_EDGES),
            Some(e(BLOCK_EDGES as u64, (BLOCK_EDGES + total) as u64))
        );
        // Remove enough to cross back over a boundary (exercises the
        // free list), then refill.
        for i in 0..(BLOCK_EDGES + 500) as u64 {
            assert!(p.remove(e(i, i + total as u64)));
        }
        assert!(p.check_consistent());
        assert_eq!(p.len(), total - BLOCK_EDGES - 500);
        for i in 0..600u64 {
            assert!(p.insert(e(i, i + 1)));
        }
        assert!(p.check_consistent());
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..200 {
            let s = p.sample(&mut rng).unwrap();
            assert!(p.contains(s));
        }
    }

    #[test]
    fn sample_none_on_empty() {
        let p = EdgePool::new();
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), None);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut p = EdgePool::new();
        let k = 8u64;
        for i in 0..k {
            p.insert(e(i, i + 100));
        }
        let mut rng = Pcg64::seed_from_u64(42);
        let trials = 80_000;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..trials {
            let s = p.sample(&mut rng).unwrap();
            counts[s.src() as usize] += 1;
        }
        let expect = trials as f64 / k as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "sampling deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn remove_logged_round_trips_exactly() {
        let mut p = EdgePool::new();
        for i in 0..20u64 {
            p.insert(e(i, i + 1));
        }
        let snapshot = p.clone();
        // A LIFO remove/unremove sequence restores positions bit-exactly,
        // including removals of the current last element.
        let mut log = Vec::new();
        for target in [e(3, 4), e(19, 20), e(0, 1), e(7, 8)] {
            let at = p.remove_logged(target).expect("present");
            log.push((target, at));
        }
        assert!(p.remove_logged(e(3, 4)).is_none(), "already gone");
        for (edge, at) in log.into_iter().rev() {
            assert!(p.unremove(edge, at));
        }
        assert!(p.check_consistent());
        assert_eq!(p.edges, snapshot.edges, "dense array must match exactly");
        // Undo of a still-present edge is rejected.
        assert!(!p.unremove(e(0, 1), 0));
    }

    #[test]
    fn unremove_falls_back_to_append_when_position_vanished() {
        let mut p = EdgePool::new();
        for i in 0..5u64 {
            p.insert(e(i, i + 1));
        }
        let at = p.remove_logged(e(2, 3)).unwrap();
        // A committed later operation shrank the pool past `at`.
        while p.len() > at as usize {
            let victim = p.get(p.len() - 1).unwrap();
            p.remove(victim);
        }
        assert!(p.unremove(e(2, 3), at));
        assert!(p.contains(e(2, 3)));
        assert!(p.check_consistent());
    }

    #[test]
    fn from_iterator_dedups() {
        let p: EdgePool = vec![e(1, 2), e(2, 1), e(3, 4)].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(7);
        for n in [0usize, 1, 2, 3, 17, 100] {
            let mut v: Vec<u64> = (0..n as u64).collect();
            fisher_yates_shuffle(&mut v, &mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn shuffle_and_permutation_are_deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        assert_eq!(
            random_permutation(64, &mut a),
            random_permutation(64, &mut b)
        );
        assert_eq!(random_matching(33, &mut a), random_matching(33, &mut b));
        let mut c = Pcg64::seed_from_u64(100);
        assert_ne!(
            random_permutation(64, &mut a),
            random_permutation(64, &mut c),
            "different seeds should diverge on 64 elements"
        );
    }

    #[test]
    fn matching_pairs_are_disjoint_and_canonical() {
        let mut rng = Pcg64::seed_from_u64(5);
        for n in [0usize, 1, 2, 5, 6, 101] {
            let pairs = random_matching(n, &mut rng);
            assert_eq!(pairs.len(), n / 2);
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &pairs {
                assert!(u < v, "pair must be canonicalized (min, max)");
                assert!(v < n as u64);
                assert!(seen.insert(u) && seen.insert(v), "vertex reused");
            }
        }
    }

    #[test]
    fn shuffle_uniformity_chi_square_smoke() {
        // All 4! = 24 orderings of a 4-element shuffle should be
        // equally likely. With 48k trials the chi-square statistic over
        // 23 degrees of freedom stays far below the ~49.7 cutoff
        // (p = 0.001) unless the shuffle is biased.
        let mut rng = Pcg64::seed_from_u64(20140901);
        let trials = 48_000usize;
        let mut counts = [0u32; 24];
        for _ in 0..trials {
            let mut v = [0u8, 1, 2, 3];
            fisher_yates_shuffle(&mut v, &mut rng);
            // Lehmer code of the permutation -> index in 0..24.
            let mut code = 0usize;
            for i in 0..3 {
                let smaller = v[i + 1..].iter().filter(|&&x| x < v[i]).count();
                code = code * (4 - i) + smaller;
            }
            counts[code] += 1;
        }
        let expect = trials as f64 / 24.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 49.7, "chi-square {chi2:.1} exceeds p=0.001 cutoff");
    }
}
