//! O(1) uniform edge sampling with O(1) insert/remove.
//!
//! Both the sequential algorithm (Alg. 1) and every partition of the
//! parallel algorithm must repeatedly draw edges uniformly at random from a
//! *dynamically changing* edge set. A `Vec` of edges paired with a
//! position index gives O(1) `sample`, O(1) `insert`, and O(1) `remove`
//! (swap-remove), which is what makes the `O(t log d_max)` bound of the
//! paper achievable in practice.
//!
//! The position index is keyed on the packed-`u64` edge key
//! ([`Edge::key`]) and hashed with the in-repo [`crate::hashing`]
//! multiply-rotate-xor hasher: one register-wide key, one multiply per
//! probe, versus SipHash over a 16-byte struct with the default hasher.
//! Every switch operation performs at least one existence probe and four
//! index updates, so this map is the hottest structure in the system.

use crate::hashing::{map_with_capacity, FxHashMap};
use crate::types::{Edge, VertexId};
use rand::Rng;

/// In-place Fisher–Yates shuffle.
///
/// Draws exactly `items.len().saturating_sub(1)` values from `rng`
/// (one `gen_range` per position, back to front), so the consumed RNG
/// stream depends only on the slice length — a prerequisite for the
/// Curveball engines, which replay per-trade substreams bit-exactly
/// across sequential, threaded, and simulated drivers.
pub fn fisher_yates_shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A uniformly random permutation of `0..n`, seeded by `rng`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    fisher_yates_shuffle(&mut perm, rng);
    perm
}

/// A uniformly random perfect matching of the vertices `0..n`: `⌊n/2⌋`
/// disjoint pairs, each canonicalized as `(min, max)`. For odd `n` one
/// vertex is left unmatched.
///
/// This is the per-pass pairing primitive of the global Curveball
/// trade sequence: pair `k` is `(perm[2k], perm[2k+1])` of a random
/// permutation, so every vertex appears in at most one pair and every
/// matching is equally likely.
pub fn random_matching<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(VertexId, VertexId)> {
    let perm = random_permutation(n, rng);
    perm.chunks_exact(2)
        .map(|pair| (pair[0].min(pair[1]), pair[0].max(pair[1])))
        .collect()
}

/// A dynamic multiset-free edge pool supporting uniform sampling.
#[derive(Clone, Debug, Default)]
pub struct EdgePool {
    edges: Vec<Edge>,
    pos: FxHashMap<u64, u32>,
}

impl EdgePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool pre-sized for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        EdgePool {
            edges: Vec::with_capacity(cap),
            pos: map_with_capacity(cap),
        }
    }

    /// Number of edges currently in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the pool holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the pool contains `e`.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.pos.contains_key(&e.key())
    }

    /// Insert `e`; returns `false` (and leaves the pool unchanged) if the
    /// edge is already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        debug_assert!(self.edges.len() < u32::MAX as usize, "EdgePool overflow");
        let idx = self.edges.len() as u32;
        match self.pos.entry(e.key()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(idx);
                self.edges.push(e);
                true
            }
        }
    }

    /// Remove `e`; returns `false` if it was not present.
    pub fn remove(&mut self, e: Edge) -> bool {
        let Some(idx) = self.pos.remove(&e.key()) else {
            return false;
        };
        let idx = idx as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(idx, last);
        self.edges.pop();
        if idx < self.edges.len() {
            // The formerly-last edge moved into `idx`.
            self.pos.insert(self.edges[idx].key(), idx as u32);
        }
        true
    }

    /// Remove `e`, reporting the dense index it occupied so the removal
    /// can be undone exactly with [`EdgePool::unremove`]. Returns `None`
    /// (pool unchanged) if the edge was not present.
    ///
    /// This is the undo-log primitive of the speculative batch path: a
    /// rank applies switches optimistically, logs `(edge, index)` pairs,
    /// and on a rejected verdict replays them in reverse.
    pub fn remove_logged(&mut self, e: Edge) -> Option<u32> {
        let idx = self.pos.remove(&e.key())?;
        let i = idx as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(i, last);
        self.edges.pop();
        if i < self.edges.len() {
            // The formerly-last edge moved into `i`.
            self.pos.insert(self.edges[i].key(), idx);
        }
        Some(idx)
    }

    /// Undo a [`EdgePool::remove_logged`] of `e` that reported `at`:
    /// the edge currently occupying `at` (the one swap-remove moved
    /// there) returns to the end of the array, and `e` takes its old
    /// slot back. When undone in exact reverse order of a remove/insert
    /// sequence, this restores the dense array *and* the position index
    /// bit-for-bit. If `at` is out of range (possible only when later
    /// operations were committed rather than undone, shrinking the
    /// pool), the edge is appended instead — content-equivalent and
    /// still deterministic, just not position-identical.
    ///
    /// Returns `false` (pool unchanged) if `e` is already present.
    pub fn unremove(&mut self, e: Edge, at: u32) -> bool {
        if self.pos.contains_key(&e.key()) {
            return false;
        }
        let i = at as usize;
        if i >= self.edges.len() {
            return self.insert(e);
        }
        let displaced = self.edges[i];
        let end = self.edges.len() as u32;
        self.edges.push(displaced);
        self.pos.insert(displaced.key(), end);
        self.edges[i] = e;
        self.pos.insert(e.key(), at);
        true
    }

    /// Draw one edge uniformly at random; `None` on an empty pool.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Edge> {
        if self.edges.is_empty() {
            None
        } else {
            Some(self.edges[rng.gen_range(0..self.edges.len())])
        }
    }

    /// Iterate over all edges in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// The edge stored at dense index `i` (used by deterministic drivers).
    #[inline]
    pub fn get(&self, i: usize) -> Option<Edge> {
        self.edges.get(i).copied()
    }

    /// Internal consistency check: the position index matches the dense
    /// array exactly. Used by tests and debug assertions.
    pub fn check_consistent(&self) -> bool {
        self.pos.len() == self.edges.len()
            && self
                .edges
                .iter()
                .enumerate()
                .all(|(i, e)| self.pos.get(&e.key()).map(|&p| p as usize) == Some(i))
    }
}

impl FromIterator<Edge> for EdgePool {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut pool = EdgePool::with_capacity(iter.size_hint().0);
        for e in iter {
            pool.insert(e);
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn e(a: u64, b: u64) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn insert_remove_contains() {
        let mut p = EdgePool::new();
        assert!(p.insert(e(1, 2)));
        assert!(p.insert(e(2, 3)));
        assert!(!p.insert(e(1, 2)), "duplicate insert must be rejected");
        assert!(p.contains(e(1, 2)));
        assert_eq!(p.len(), 2);
        assert!(p.remove(e(1, 2)));
        assert!(!p.remove(e(1, 2)));
        assert!(!p.contains(e(1, 2)));
        assert_eq!(p.len(), 1);
        assert!(p.check_consistent());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut p = EdgePool::new();
        for i in 0..50u64 {
            p.insert(e(i, i + 1));
        }
        // Remove from the middle repeatedly.
        for i in (0..50u64).step_by(3) {
            assert!(p.remove(e(i, i + 1)));
            assert!(p.check_consistent());
        }
    }

    #[test]
    fn sample_none_on_empty() {
        let p = EdgePool::new();
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), None);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut p = EdgePool::new();
        let k = 8u64;
        for i in 0..k {
            p.insert(e(i, i + 100));
        }
        let mut rng = Pcg64::seed_from_u64(42);
        let trials = 80_000;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..trials {
            let s = p.sample(&mut rng).unwrap();
            counts[s.src() as usize] += 1;
        }
        let expect = trials as f64 / k as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "sampling deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn remove_logged_round_trips_exactly() {
        let mut p = EdgePool::new();
        for i in 0..20u64 {
            p.insert(e(i, i + 1));
        }
        let snapshot = p.clone();
        // A LIFO remove/unremove sequence restores positions bit-exactly,
        // including removals of the current last element.
        let mut log = Vec::new();
        for target in [e(3, 4), e(19, 20), e(0, 1), e(7, 8)] {
            let at = p.remove_logged(target).expect("present");
            log.push((target, at));
        }
        assert!(p.remove_logged(e(3, 4)).is_none(), "already gone");
        for (edge, at) in log.into_iter().rev() {
            assert!(p.unremove(edge, at));
        }
        assert!(p.check_consistent());
        assert_eq!(p.edges, snapshot.edges, "dense array must match exactly");
        // Undo of a still-present edge is rejected.
        assert!(!p.unremove(e(0, 1), 0));
    }

    #[test]
    fn unremove_falls_back_to_append_when_position_vanished() {
        let mut p = EdgePool::new();
        for i in 0..5u64 {
            p.insert(e(i, i + 1));
        }
        let at = p.remove_logged(e(2, 3)).unwrap();
        // A committed later operation shrank the pool past `at`.
        while p.len() > at as usize {
            let victim = p.get(p.len() - 1).unwrap();
            p.remove(victim);
        }
        assert!(p.unremove(e(2, 3), at));
        assert!(p.contains(e(2, 3)));
        assert!(p.check_consistent());
    }

    #[test]
    fn from_iterator_dedups() {
        let p: EdgePool = vec![e(1, 2), e(2, 1), e(3, 4)].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(7);
        for n in [0usize, 1, 2, 3, 17, 100] {
            let mut v: Vec<u64> = (0..n as u64).collect();
            fisher_yates_shuffle(&mut v, &mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn shuffle_and_permutation_are_deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        assert_eq!(
            random_permutation(64, &mut a),
            random_permutation(64, &mut b)
        );
        assert_eq!(random_matching(33, &mut a), random_matching(33, &mut b));
        let mut c = Pcg64::seed_from_u64(100);
        assert_ne!(
            random_permutation(64, &mut a),
            random_permutation(64, &mut c),
            "different seeds should diverge on 64 elements"
        );
    }

    #[test]
    fn matching_pairs_are_disjoint_and_canonical() {
        let mut rng = Pcg64::seed_from_u64(5);
        for n in [0usize, 1, 2, 5, 6, 101] {
            let pairs = random_matching(n, &mut rng);
            assert_eq!(pairs.len(), n / 2);
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &pairs {
                assert!(u < v, "pair must be canonicalized (min, max)");
                assert!(v < n as u64);
                assert!(seen.insert(u) && seen.insert(v), "vertex reused");
            }
        }
    }

    #[test]
    fn shuffle_uniformity_chi_square_smoke() {
        // All 4! = 24 orderings of a 4-element shuffle should be
        // equally likely. With 48k trials the chi-square statistic over
        // 23 degrees of freedom stays far below the ~49.7 cutoff
        // (p = 0.001) unless the shuffle is biased.
        let mut rng = Pcg64::seed_from_u64(20140901);
        let trials = 48_000usize;
        let mut counts = [0u32; 24];
        for _ in 0..trials {
            let mut v = [0u8, 1, 2, 3];
            fisher_yates_shuffle(&mut v, &mut rng);
            // Lehmer code of the permutation -> index in 0..24.
            let mut code = 0usize;
            for i in 0..3 {
                let smaller = v[i + 1..].iter().filter(|&&x| x < v[i]).count();
                code = code * (4 - i) + smaller;
            }
            counts[code] += 1;
        }
        let expect = trials as f64 / 24.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 49.7, "chi-square {chi2:.1} exceeds p=0.001 cutoff");
    }
}
