//! In-repo Fx-style hashing for the hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose per-lookup
//! cost dominates the switch inner loop (one existence probe plus up to
//! four index updates per operation). The keys we hash are small integers
//! — packed edges ([`crate::types::Edge::key`]) and vertex labels — for
//! which a multiply-rotate-xor hash (the "Fx" scheme popularized by the
//! Firefox and rustc codebases) is both faster and diffuse enough.
//!
//! Implemented in-repo because the build environment has no crates.io
//! access; the algorithm is a dozen lines and needs no external crate.
//! This is **not** a DoS-resistant hash: keys here come from graph
//! structure we generate or load ourselves, not from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: `2^64 / φ`, the 64-bit golden-ratio mixer.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A 64-bit Fx hasher: `hash = (rotl5(hash) ^ word) * K` per input word.
///
/// Word-at-a-time for the integer `write_*` fast paths the hot maps use;
/// arbitrary byte slices are folded in 8-byte chunks so composite keys
/// (e.g. derived `Hash` impls) also work.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Builder for [`FxHasher64`] (zero-sized, all hashers start identical).
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using [`FxHasher64`]. Drop-in for `std::HashMap` on keys
/// that are not attacker-controlled.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher64`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `FxHashMap` pre-sized for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// `FxHashSet` pre-sized for `cap` entries.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// SplitMix64 finalizer: a bijective avalanche mix over `u64`.
///
/// The seeded-substream primitive of the recomputation-based generators
/// (`crate::generators`): hashing `(seed, index, attempt)` tuples
/// through nested `mix64` calls yields independent deterministic draws
/// addressable by index, which is what lets every rank re-derive any
/// predecessor's random choice without storing or communicating it.
/// Same construction as `edgeswitch_dist::splitmix64`, duplicated here
/// because the graph crate sits below `dist` in the dependency order.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("edge"), hash_of("edge"));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(i));
        }
        assert_eq!(seen.len(), 10_000, "u64 keys must not collide in-range");
    }

    #[test]
    fn low_bits_are_diffuse() {
        // HashMap indexes with the low bits; sequential keys must not
        // land in sequential buckets' worth of identical low bits.
        let mask = 0xFFu64;
        let mut buckets = [0u32; 256];
        for i in 0..4096u64 {
            buckets[(hash_of(i) & mask) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 64, "low-bit bucket skew too high: {max}");
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher64::default();
        a.write(b"0123456789abcdef");
        let mut b = FxHasher64::default();
        b.write(b"0123456789abcdef");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher64::default();
        c.write(b"0123456789abcdeX");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn presized_collections_start_empty() {
        let m: FxHashMap<u64, u32> = map_with_capacity(100);
        assert!(m.is_empty() && m.capacity() >= 100);
        let s: FxHashSet<u64> = set_with_capacity(100);
        assert!(s.is_empty() && s.capacity() >= 100);
    }
}
