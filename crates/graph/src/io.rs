//! Edge-list I/O: whitespace-separated `u v` lines, `#` comments.

use crate::graph::Graph;
use crate::types::{Edge, GraphError};
use std::io::{BufRead, BufWriter, Write};

/// Parse an edge-list from a reader. The vertex count is
/// `max label + 1` unless `n` is given (which must dominate all labels).
pub fn read_edge_list<R: BufRead>(reader: R, n: Option<usize>) -> Result<Graph, GraphError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_label = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let (a, b) = match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(GraphError::Parse(format!(
                    "line {}: expected `u v`, got {body:?}",
                    lineno + 1
                )))
            }
        };
        let a: u64 = a
            .parse()
            .map_err(|_| GraphError::Parse(format!("line {}: bad label {a:?}", lineno + 1)))?;
        let b: u64 = b
            .parse()
            .map_err(|_| GraphError::Parse(format!("line {}: bad label {b:?}", lineno + 1)))?;
        let e = Edge::try_new(a, b).ok_or(GraphError::SelfLoop(a))?;
        max_label = max_label.max(e.dst());
        edges.push(e);
    }
    let n = match n {
        Some(n) => {
            if !edges.is_empty() && (n as u64) <= max_label {
                return Err(GraphError::Parse(format!(
                    "declared n = {n} but labels reach {max_label}"
                )));
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_label as usize + 1
            }
        }
    };
    Graph::from_edges(n, edges)
}

/// Write a graph as an edge list with a header comment.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# simple graph: n = {}, m = {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    let mut edges = graph.sorted_edges();
    edges.sort_unstable();
    for e in edges {
        writeln!(w, "{} {}", e.src(), e.dst())?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g =
            Graph::from_edges(5, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], Some(5)).unwrap();
        assert!(g.same_edge_set(&h));
    }

    #[test]
    fn infers_vertex_count() {
        let input = b"0 1\n7 2\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let input = b"# header\n\n0 1 # trailing\n  \n2 3\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_edge_list(&b"0 1 2\n"[..], None),
            Err(GraphError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list(&b"zero one\n"[..], None),
            Err(GraphError::Parse(_))
        ));
    }

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(
            read_edge_list(&b"3 3\n"[..], None),
            Err(GraphError::SelfLoop(3))
        ));
    }

    #[test]
    fn rejects_duplicate_edge() {
        assert!(matches!(
            read_edge_list(&b"0 1\n1 0\n"[..], None),
            Err(GraphError::ParallelEdge(_))
        ));
    }

    #[test]
    fn rejects_undersized_declared_n() {
        assert!(matches!(
            read_edge_list(&b"0 9\n"[..], Some(5)),
            Err(GraphError::Parse(_))
        ));
    }
}
