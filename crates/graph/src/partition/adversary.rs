//! Adversarial relabeling (Section 5.2, Figures 21–22).
//!
//! The division and multiplication hashes are deterministic, so an
//! adversary who knows the hash can relabel vertices to pile the highest
//! degree vertices onto a single processor. The paper simulates this for
//! HP-D on a preferential-attachment graph: the `n/p` highest-degree
//! vertices are given labels congruent to a chosen rank modulo `p`.

use crate::graph::Graph;
use crate::types::{Edge, VertexId};

/// A vertex relabeling: `mapping[old_label] = new_label` (a bijection).
#[derive(Clone, Debug)]
pub struct Relabeling {
    mapping: Vec<VertexId>,
}

impl Relabeling {
    /// Identity relabeling over `n` vertices.
    pub fn identity(n: usize) -> Self {
        Relabeling {
            mapping: (0..n as u64).collect(),
        }
    }

    /// Build from an explicit map; panics unless it is a bijection on
    /// `0..n`.
    pub fn from_mapping(mapping: Vec<VertexId>) -> Self {
        let n = mapping.len() as u64;
        let mut seen = vec![false; mapping.len()];
        for &t in &mapping {
            assert!(t < n, "relabel target {t} out of range");
            assert!(!seen[t as usize], "relabel target {t} duplicated");
            seen[t as usize] = true;
        }
        Relabeling { mapping }
    }

    /// New label of `old`.
    #[inline]
    pub fn map(&self, old: VertexId) -> VertexId {
        self.mapping[old as usize]
    }

    /// Apply to a graph, producing the isomorphic relabeled graph.
    pub fn apply(&self, graph: &Graph) -> Graph {
        let n = graph.num_vertices();
        assert_eq!(n, self.mapping.len());
        Graph::from_edges(
            n,
            graph
                .edges()
                .map(|e| Edge::new(self.map(e.src()), self.map(e.dst()))),
        )
        .expect("bijective relabeling preserves simplicity")
    }
}

/// The worst-case relabeling for HP-D: the `⌈n/p⌉` highest-degree vertices
/// receive labels `target_rank, target_rank + p, target_rank + 2p, ...`,
/// concentrating them on processor `target_rank`; remaining vertices fill
/// the remaining labels in arbitrary (degree-descending) order.
pub fn division_worst_case(graph: &Graph, p: usize, target_rank: usize) -> Relabeling {
    assert!(target_rank < p, "target rank must be < p");
    let n = graph.num_vertices();
    // Vertices sorted by degree, highest first (ties by label for
    // determinism).
    let mut by_degree: Vec<VertexId> = (0..n as u64).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

    // Labels owned by target_rank under HP-D, ascending.
    let hot_labels = (0..n as u64).filter(|l| (*l % p as u64) as usize == target_rank);
    // All other labels, ascending.
    let cold_labels = (0..n as u64).filter(|l| (*l % p as u64) as usize != target_rank);

    let mut mapping = vec![0u64; n];
    let mut assigned = hot_labels.chain(cold_labels);
    for &v in &by_degree {
        mapping[v as usize] = assigned.next().expect("label supply matches vertex count");
    }
    Relabeling::from_mapping(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;

    fn star(n: u64) -> Graph {
        Graph::from_edges(n as usize, (1..n).map(|v| Edge::new(0, v))).unwrap()
    }

    #[test]
    fn identity_maps_to_self() {
        let r = Relabeling::identity(5);
        for v in 0..5u64 {
            assert_eq!(r.map(v), v);
        }
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn rejects_non_bijection() {
        Relabeling::from_mapping(vec![0, 0, 1]);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = star(6);
        let r = Relabeling::from_mapping(vec![5, 0, 1, 2, 3, 4]);
        let h = r.apply(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        // The hub moved to label 5.
        assert_eq!(h.degree(5), 5);
        assert_eq!(h.degree(0), 1);
        h.check_invariants().unwrap();
    }

    #[test]
    fn worst_case_concentrates_high_degree() {
        // A graph with a few hubs: union of 4 stars of decreasing size.
        let n = 64usize;
        let mut edges = vec![];
        let hubs = [0u64, 1, 2, 3];
        for (i, &h) in hubs.iter().enumerate() {
            for v in 4 + (i as u64 * 15)..4 + (i as u64 + 1) * 15 {
                edges.push(Edge::new(h, v));
            }
        }
        let g = Graph::from_edges(n, edges).unwrap();

        let p = 8;
        let target = 3;
        let relab = division_worst_case(&g, p, target);
        let h = relab.apply(&g);
        let part = Partitioner::hash_division(p);

        // All hubs (degree 15) should now live on partition `target`.
        let mut hot_degree_total = 0usize;
        let mut per_part_reduced = vec![0u64; p];
        for e in h.edges() {
            per_part_reduced[part.owner(e.src())] += 1;
        }
        for v in 0..n as u64 {
            if part.owner(v) == target {
                hot_degree_total += h.degree(v);
            }
        }
        // The hot partition must see far more than its fair share of
        // incident edges.
        assert!(
            hot_degree_total as f64 > 2.0 * (2 * h.num_edges()) as f64 / p as f64,
            "adversary failed: hot partition degree {hot_degree_total}"
        );
        assert_eq!(per_part_reduced.iter().sum::<u64>() as usize, h.num_edges());
    }
}
