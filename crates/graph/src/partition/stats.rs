//! Per-partition load statistics (Figures 16–20 of the paper).

use super::{reduced_degrees, Partitioner};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Vertex/edge counts per partition for a given scheme, as plotted in the
/// paper's load-balancing figures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Number of vertices assigned to each partition.
    pub vertices: Vec<u64>,
    /// Number of (reduced-adjacency) edges assigned to each partition.
    pub edges: Vec<u64>,
}

impl PartitionStats {
    /// Compute the initial distribution of vertices and edges.
    pub fn measure(graph: &Graph, part: &Partitioner) -> Self {
        let p = part.num_parts();
        let mut vertices = vec![0u64; p];
        let mut edges = vec![0u64; p];
        let reduced = reduced_degrees(graph);
        for v in 0..graph.num_vertices() as u64 {
            let owner = part.owner(v);
            vertices[owner] += 1;
            edges[owner] += reduced[v as usize];
        }
        PartitionStats { vertices, edges }
    }

    /// Largest / mean edge count: 1.0 means perfectly balanced.
    pub fn edge_imbalance(&self) -> f64 {
        imbalance(&self.edges)
    }

    /// Largest / mean vertex count.
    pub fn vertex_imbalance(&self) -> f64 {
        imbalance(&self.vertices)
    }
}

/// Ratio of the maximum entry to the mean entry (1.0 = perfectly even).
/// Returns `f64::INFINITY` when the mean is zero but some entry is not.
pub fn imbalance(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    if mean == 0.0 {
        if max == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / mean
    }
}

/// Coefficient of variation (stddev / mean) of a count vector; a scale-free
/// skew measure used when comparing workload distributions across schemes.
pub fn coefficient_of_variation(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn ring(n: u64) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|v| Edge::new(v, (v + 1) % n))).unwrap()
    }

    #[test]
    fn measure_counts_everything_once() {
        let g = ring(40);
        let part = Partitioner::hash_division(4);
        let stats = PartitionStats::measure(&g, &part);
        assert_eq!(stats.vertices.iter().sum::<u64>(), 40);
        assert_eq!(stats.edges.iter().sum::<u64>() as usize, g.num_edges());
    }

    #[test]
    fn perfectly_balanced_ring() {
        let g = ring(40);
        let part = Partitioner::hash_division(4);
        let stats = PartitionStats::measure(&g, &part);
        assert_eq!(stats.vertex_imbalance(), 1.0);
        // Each vertex has reduced degree 1, except n-1 whose successor
        // wraps to 0 making the edge (0, n-1): reduced degree counted at 0.
        assert!(stats.edge_imbalance() < 1.5);
    }

    #[test]
    fn imbalance_of_skewed_counts() {
        assert_eq!(imbalance(&[4, 0, 0, 0]), 4.0);
        assert_eq!(imbalance(&[2, 2, 2, 2]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
        assert!(imbalance(&[]).is_finite());
    }

    #[test]
    fn cv_zero_for_uniform() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5]), 0.0);
        assert!(coefficient_of_variation(&[0, 10]) > 0.9);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }
}
