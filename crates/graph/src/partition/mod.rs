//! Vertex-partitioning schemes (Sections 4.3 and 5.1 of the paper).
//!
//! Every scheme assigns each vertex — together with its *reduced* adjacency
//! list — to exactly one of `p` partitions:
//!
//! - **CP** (consecutive partitioning): consecutive vertex-label ranges,
//!   balanced so each partition starts with roughly `m/p` edges.
//! - **HP-D** (division hash): `h(v) = v mod p`.
//! - **HP-M** (multiplication hash): `h(v) = ⌊p · frac(v·a)⌋` with
//!   `a = (√5−1)/2`.
//! - **HP-U** (universal hash): `h(v) = ((a·v + b) mod c) mod p` for a
//!   random `a ∈ [1, c)`, `b ∈ [0, c)` and a prime `c` larger than every
//!   label, drawn per instance so no adversary can predict the function.

pub mod adversary;
pub mod stats;

use crate::graph::Graph;
use crate::types::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `2^61 - 1`, a Mersenne prime comfortably above any vertex label this
/// library produces; used as the universal-hash modulus `c`.
pub const UNIVERSAL_PRIME: u64 = (1u64 << 61) - 1;

/// The golden-ratio constant `(√5 − 1)/2` recommended by Cormen et al. and
/// used by the paper for the multiplication hash.
pub const KNUTH_A: f64 = 0.618_033_988_749_894_9;

/// Names of the four schemes, for configuration and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Consecutive partitioning (CP).
    Consecutive,
    /// Division hash (HP-D).
    HashDivision,
    /// Multiplication hash (HP-M).
    HashMultiplication,
    /// Universal hash (HP-U).
    HashUniversal,
}

impl SchemeKind {
    /// The abbreviation the paper uses in its figures.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Consecutive => "CP",
            SchemeKind::HashDivision => "HP-D",
            SchemeKind::HashMultiplication => "HP-M",
            SchemeKind::HashUniversal => "HP-U",
        }
    }

    /// All four schemes, in the paper's presentation order.
    pub fn all() -> [SchemeKind; 4] {
        [
            SchemeKind::Consecutive,
            SchemeKind::HashDivision,
            SchemeKind::HashMultiplication,
            SchemeKind::HashUniversal,
        ]
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete vertex→partition map.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Partitioner {
    /// Consecutive ranges; `starts[i]` is the first label owned by
    /// partition `i` (`starts[0] == 0`, strictly increasing).
    Consecutive {
        /// `starts[i]` is the first label owned by partition `i`.
        starts: Vec<VertexId>,
    },
    /// `v mod p`.
    HashDivision {
        /// Number of partitions.
        p: u32,
    },
    /// `⌊p · frac(v·a)⌋`.
    HashMultiplication {
        /// Number of partitions.
        p: u32,
        /// Multiplier in `(0, 1)`; the paper uses `(√5−1)/2`.
        a: f64,
    },
    /// `((a·v + b) mod c) mod p`.
    HashUniversal {
        /// Number of partitions.
        p: u32,
        /// Random multiplier in `[1, c)`.
        a: u64,
        /// Random offset in `[0, c)`.
        b: u64,
        /// Prime modulus larger than every vertex label.
        c: u64,
    },
}

impl Partitioner {
    /// Which scheme this instance implements.
    pub fn kind(&self) -> SchemeKind {
        match self {
            Partitioner::Consecutive { .. } => SchemeKind::Consecutive,
            Partitioner::HashDivision { .. } => SchemeKind::HashDivision,
            Partitioner::HashMultiplication { .. } => SchemeKind::HashMultiplication,
            Partitioner::HashUniversal { .. } => SchemeKind::HashUniversal,
        }
    }

    /// Number of partitions `p`.
    pub fn num_parts(&self) -> usize {
        match self {
            Partitioner::Consecutive { starts } => starts.len(),
            Partitioner::HashDivision { p } => *p as usize,
            Partitioner::HashMultiplication { p, .. } => *p as usize,
            Partitioner::HashUniversal { p, .. } => *p as usize,
        }
    }

    /// The partition (processor rank) owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        match self {
            Partitioner::Consecutive { starts } => {
                // Largest i with starts[i] <= v.
                match starts.binary_search(&v) {
                    Ok(i) => i,
                    Err(ins) => ins - 1,
                }
            }
            Partitioner::HashDivision { p } => (v % *p as u64) as usize,
            Partitioner::HashMultiplication { p, a } => {
                let va = v as f64 * a;
                let frac = va - va.floor();
                // frac ∈ [0, 1); guard against frac*p == p from rounding.
                ((*p as f64 * frac) as usize).min(*p as usize - 1)
            }
            Partitioner::HashUniversal { p, a, b, c } => {
                let av = (*a as u128 * v as u128) % *c as u128;
                let h = (av + *b as u128) % *c as u128;
                (h % *p as u128) as usize
            }
        }
    }

    /// Build a partitioner of the given kind with scheme-appropriate
    /// parameters. CP balances initial reduced-edge counts from `graph`;
    /// hash schemes ignore the graph structure entirely (that is their
    /// defining property).
    pub fn build<R: Rng + ?Sized>(kind: SchemeKind, graph: &Graph, p: usize, rng: &mut R) -> Self {
        match kind {
            SchemeKind::Consecutive => Self::consecutive(graph, p),
            SchemeKind::HashDivision => Self::hash_division(p),
            SchemeKind::HashMultiplication => Self::hash_multiplication(p),
            SchemeKind::HashUniversal => Self::hash_universal(p, rng),
        }
    }

    /// Consecutive partitioning balanced on reduced-edge counts: partition
    /// `i` receives a maximal label range whose reduced degrees sum to
    /// roughly `m/p` (Section 4.3).
    pub fn consecutive(graph: &Graph, p: usize) -> Self {
        assert!(p >= 1, "need at least one partition");
        let reduced: Vec<u64> = reduced_degrees(graph);
        Self::consecutive_from_reduced_degrees(&reduced, p)
    }

    /// CP construction from a precomputed reduced-degree array.
    pub fn consecutive_from_reduced_degrees(reduced: &[u64], p: usize) -> Self {
        assert!(p >= 1);
        let n = reduced.len();
        let m: u64 = reduced.iter().sum();
        let mut starts = Vec::with_capacity(p);
        starts.push(0u64);
        let mut acc = 0u64;
        let mut v = 0usize;
        for i in 1..p {
            // Advance until partition i-1 holds at least i*m/p cumulative
            // edges, while leaving at least one vertex per remaining part.
            let target = (m as u128 * i as u128 / p as u128) as u64;
            let max_v = n.saturating_sub(p - i); // leave room for the rest
            while v < max_v && acc < target {
                acc += reduced[v];
                v += 1;
            }
            // Ensure strictly increasing starts even on degenerate inputs.
            let start = (v as u64).max(starts[i - 1] + 1);
            v = start as usize;
            starts.push(start);
        }
        Partitioner::Consecutive { starts }
    }

    /// Division hash `v mod p` (HP-D).
    pub fn hash_division(p: usize) -> Self {
        assert!(p >= 1 && p <= u32::MAX as usize);
        Partitioner::HashDivision { p: p as u32 }
    }

    /// Multiplication hash with the golden-ratio constant (HP-M).
    pub fn hash_multiplication(p: usize) -> Self {
        assert!(p >= 1 && p <= u32::MAX as usize);
        Partitioner::HashMultiplication {
            p: p as u32,
            a: KNUTH_A,
        }
    }

    /// Universal hash with random `a, b` and prime modulus `2^61 − 1`
    /// (HP-U). A fresh draw of `(a, b)` picks a function the adversary
    /// cannot predict.
    pub fn hash_universal<R: Rng + ?Sized>(p: usize, rng: &mut R) -> Self {
        assert!(p >= 1 && p <= u32::MAX as usize);
        let c = UNIVERSAL_PRIME;
        Partitioner::HashUniversal {
            p: p as u32,
            a: rng.gen_range(1..c),
            b: rng.gen_range(0..c),
            c,
        }
    }
}

/// Reduced degree of each vertex: the number of neighbors with a *higher*
/// label (the size of the reduced adjacency list `N(u) = {v : u < v}`).
pub fn reduced_degrees(graph: &Graph) -> Vec<u64> {
    let n = graph.num_vertices();
    let mut reduced = vec![0u64; n];
    for e in graph.edges() {
        reduced[e.src() as usize] += 1;
    }
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn star_plus_path(n: usize) -> Graph {
        // Vertex 0 connected to everyone, plus a path over 1..n.
        let mut edges = vec![];
        for v in 1..n as u64 {
            edges.push(Edge::new(0, v));
        }
        for v in 1..(n as u64 - 1) {
            edges.push(Edge::new(v, v + 1));
        }
        Graph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn consecutive_covers_all_vertices() {
        let g = star_plus_path(100);
        let part = Partitioner::consecutive(&g, 8);
        assert_eq!(part.num_parts(), 8);
        let mut counts = vec![0usize; 8];
        for v in 0..100u64 {
            counts[part.owner(v)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|&c| c > 0), "empty partition: {counts:?}");
    }

    #[test]
    fn consecutive_balances_reduced_edges() {
        // Uniformly random-ish graph: ER-like ring of chords.
        let n = 400u64;
        let mut edges = vec![];
        for v in 0..n {
            edges.push(Edge::new(v, (v + 1) % n));
            edges.push(Edge::new(v, (v + 7) % n));
        }
        let g = Graph::from_edges(n as usize, edges.into_iter().filter(|e| e.src() != e.dst()))
            .unwrap();
        let p = 8;
        let part = Partitioner::consecutive(&g, p);
        let reduced = reduced_degrees(&g);
        let mut per_part = vec![0u64; p];
        for v in 0..n {
            per_part[part.owner(v)] += reduced[v as usize];
        }
        let target = g.num_edges() as f64 / p as f64;
        for &c in &per_part {
            assert!(
                (c as f64 - target).abs() / target < 0.25,
                "partition edge counts too skewed: {per_part:?}"
            );
        }
    }

    #[test]
    fn consecutive_owner_matches_ranges() {
        let part = Partitioner::Consecutive {
            starts: vec![0, 10, 20],
        };
        assert_eq!(part.owner(0), 0);
        assert_eq!(part.owner(9), 0);
        assert_eq!(part.owner(10), 1);
        assert_eq!(part.owner(19), 1);
        assert_eq!(part.owner(20), 2);
        assert_eq!(part.owner(1_000_000), 2);
    }

    #[test]
    fn division_hash_is_mod_p() {
        let part = Partitioner::hash_division(7);
        for v in 0..100u64 {
            assert_eq!(part.owner(v), (v % 7) as usize);
        }
    }

    #[test]
    fn multiplication_hash_in_range_and_spread() {
        let p = 16;
        let part = Partitioner::hash_multiplication(p);
        let mut counts = vec![0usize; p];
        for v in 0..16_000u64 {
            let o = part.owner(v);
            assert!(o < p);
            counts[o] += 1;
        }
        // Golden-ratio hashing is a low-discrepancy sequence; all buckets
        // should be very close to 1000.
        for &c in &counts {
            assert!((800..=1200).contains(&c), "skewed buckets: {counts:?}");
        }
    }

    #[test]
    fn universal_hash_in_range_and_spread() {
        let p = 16;
        let mut rng = Pcg64::seed_from_u64(5);
        let part = Partitioner::hash_universal(p, &mut rng);
        let mut counts = vec![0usize; p];
        for v in 0..16_000u64 {
            let o = part.owner(v);
            assert!(o < p);
            counts[o] += 1;
        }
        for &c in &counts {
            assert!((850..=1150).contains(&c), "skewed buckets: {counts:?}");
        }
    }

    #[test]
    fn universal_hash_varies_with_seed() {
        let mut r1 = Pcg64::seed_from_u64(1);
        let mut r2 = Pcg64::seed_from_u64(2);
        let p1 = Partitioner::hash_universal(64, &mut r1);
        let p2 = Partitioner::hash_universal(64, &mut r2);
        let differs = (0..1000u64).any(|v| p1.owner(v) != p2.owner(v));
        assert!(differs, "two random universal hashes should not coincide");
    }

    #[test]
    fn single_partition_owns_everything() {
        let g = star_plus_path(10);
        let mut rng = Pcg64::seed_from_u64(3);
        for kind in SchemeKind::all() {
            let part = Partitioner::build(kind, &g, 1, &mut rng);
            for v in 0..10u64 {
                assert_eq!(part.owner(v), 0, "{kind} with p=1");
            }
        }
    }

    #[test]
    fn more_partitions_than_vertices() {
        let g = star_plus_path(4);
        let part = Partitioner::consecutive(&g, 4);
        // Every partition gets exactly one vertex.
        let owners: Vec<usize> = (0..4u64).map(|v| part.owner(v)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reduced_degrees_sum_to_m() {
        let g = star_plus_path(50);
        let reduced = reduced_degrees(&g);
        assert_eq!(reduced.iter().sum::<u64>() as usize, g.num_edges());
        // Vertex 0 has the lowest label, so its reduced degree equals its
        // full degree.
        assert_eq!(reduced[0] as usize, g.degree(0));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(SchemeKind::Consecutive.label(), "CP");
        assert_eq!(SchemeKind::HashDivision.label(), "HP-D");
        assert_eq!(SchemeKind::HashMultiplication.label(), "HP-M");
        assert_eq!(SchemeKind::HashUniversal.label(), "HP-U");
    }
}
