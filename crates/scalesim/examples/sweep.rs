//! Developer sweep: speedup across world sizes under the default cost
//! model, on a mid-size Erdős–Rényi workload.
//!
//! ```text
//! cargo run --release -p edgeswitch-scalesim --example sweep
//! ```

use edgeswitch_core::config::*;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::erdos_renyi_gnm;
use edgeswitch_graph::SchemeKind;
use edgeswitch_scalesim::{des_parallel, CostModel};

fn main() {
    let mut rng = root_rng(42);
    let g = erdos_renyi_gnm(20000, 200_000, &mut rng);
    let t = 1_200_000u64;
    let cost = CostModel::default();
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let cfg = ParallelConfig::new(p)
            .with_scheme(SchemeKind::HashUniversal)
            .with_step_size(StepSize::FractionOfT(100))
            .with_seed(7);
        let (out, rep) = des_parallel(&g, t, &cfg, &cost);
        println!(
            "p={:4}  time={:9.3}ms  speedup={:7.2}  msgs/op={:.1}  local%={:.0}",
            p,
            rep.runtime_ns / 1e6,
            rep.speedup,
            rep.packets as f64 / t as f64,
            100.0 * out.per_rank.iter().map(|s| s.performed_local).sum::<u64>() as f64
                / out.performed() as f64
        );
    }
}
