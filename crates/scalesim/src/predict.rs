//! Scaling-study runners: strong/weak scaling sweeps over virtual world
//! sizes, and the analytic multinomial scaling series (Figures 24–25).

use crate::des::{des_parallel_with, DesReport};
use crate::model::CostModel;
use edgeswitch_core::config::ParallelConfig;
use edgeswitch_core::ParallelOutcome;
use edgeswitch_graph::{Graph, Partitioner};
use serde::{Deserialize, Serialize};

/// One point of a scaling curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalePoint {
    /// World size `p`.
    pub p: usize,
    /// Predicted runtime (virtual seconds).
    pub runtime_s: f64,
    /// Speedup over the modeled sequential baseline.
    pub speedup: f64,
    /// Network packets exchanged (= logical messages under the DES).
    pub packets: u64,
    /// Max/mean workload imbalance across ranks.
    pub workload_imbalance: f64,
}

/// Run a strong-scaling sweep: fixed graph and `t`, varying `p`.
///
/// `make_config` receives each `p` and returns the run configuration
/// (scheme, step size, seed); the partitioner is rebuilt per `p`.
pub fn strong_scaling<F>(
    graph: &Graph,
    t: u64,
    ps: &[usize],
    cost: &CostModel,
    make_config: F,
) -> Vec<ScalePoint>
where
    F: Fn(usize) -> ParallelConfig,
{
    ps.iter()
        .map(|&p| {
            let config = make_config(p);
            assert_eq!(config.processors, p);
            let mut rng = config.root_rng();
            let part = Partitioner::build(config.scheme, graph, p, &mut rng);
            let (outcome, report) = des_parallel_with(graph, t, &config, &part, cost);
            scale_point(p, &outcome, &report)
        })
        .collect()
}

/// Run a strong-scaling sweep with an explicit partitioner per `p`
/// (adversarial relabeling experiments).
pub fn strong_scaling_with<F, G>(
    graph: &Graph,
    t: u64,
    ps: &[usize],
    cost: &CostModel,
    make_config: F,
    make_part: G,
) -> Vec<ScalePoint>
where
    F: Fn(usize) -> ParallelConfig,
    G: Fn(usize) -> Partitioner,
{
    ps.iter()
        .map(|&p| {
            let config = make_config(p);
            let part = make_part(p);
            let (outcome, report) = des_parallel_with(graph, t, &config, &part, cost);
            scale_point(p, &outcome, &report)
        })
        .collect()
}

/// Run a weak-scaling sweep: per-`p` graph and `t` supplied by closures
/// (the paper grows the graph with `p` in one variant and fixes it in
/// the other, with `t = p · c` in both).
pub fn weak_scaling<F, G>(
    ps: &[usize],
    cost: &CostModel,
    make_instance: F,
    make_config: G,
) -> Vec<ScalePoint>
where
    F: Fn(usize) -> (Graph, u64),
    G: Fn(usize) -> ParallelConfig,
{
    ps.iter()
        .map(|&p| {
            let (graph, t) = make_instance(p);
            let config = make_config(p);
            let mut rng = config.root_rng();
            let part = Partitioner::build(config.scheme, &graph, p, &mut rng);
            let (outcome, report) = des_parallel_with(&graph, t, &config, &part, cost);
            scale_point(p, &outcome, &report)
        })
        .collect()
}

fn scale_point(p: usize, outcome: &ParallelOutcome, report: &DesReport) -> ScalePoint {
    let workload = outcome.workload();
    ScalePoint {
        p,
        runtime_s: report.runtime_ns / 1e9,
        speedup: report.speedup,
        packets: report.packets,
        workload_imbalance: edgeswitch_graph::partition::stats::imbalance(&workload),
    }
}

/// Analytic multinomial strong-scaling series (Figure 24): fixed
/// `n` trials and `l` outcomes, varying `p`.
pub fn multinomial_strong_scaling(
    n: u64,
    l: usize,
    ps: &[usize],
    cost: &CostModel,
) -> Vec<(usize, f64, f64)> {
    let seq = cost.sequential_multinomial_ns(n);
    ps.iter()
        .map(|&p| {
            let t = cost.parallel_multinomial_ns(n, l, p);
            (p, t / 1e9, seq / t)
        })
        .collect()
}

/// Analytic multinomial weak-scaling series (Figure 25): `n = p·per_p`,
/// `l = p`.
pub fn multinomial_weak_scaling(per_p: u64, ps: &[usize], cost: &CostModel) -> Vec<(usize, f64)> {
    ps.iter()
        .map(|&p| {
            let n = p as u64 * per_p;
            (p, cost.parallel_multinomial_ns(n, p, p) / 1e9)
        })
        .collect()
}

/// Measure real per-operation costs on this host to ground the cost
/// model: times a short sequential switch run and a binomial draw.
/// Returns a calibrated model (latency parameters keep their defaults —
/// they describe the simulated interconnect, not this host).
pub fn calibrate(sample_graph: &Graph, seed: u64) -> CostModel {
    use std::time::Instant;
    let mut model = CostModel::default();

    // Sequential switch cost.
    let mut g = sample_graph.clone();
    let mut rng = edgeswitch_dist::root_rng(seed);
    let ops = 50_000u64.min(10 * g.num_edges() as u64);
    let start = Instant::now();
    let out = edgeswitch_core::sequential::sequential_edge_switch(&mut g, ops, &mut rng);
    let elapsed = start.elapsed().as_nanos() as f64;
    if out.performed > 0 {
        model.seq_switch_ns = elapsed / out.performed as f64;
        model.local_op_ns = model.seq_switch_ns * 0.8;
        model.msg_handle_ns = model.seq_switch_ns * 0.4;
        model.latency_ns = model.seq_switch_ns * 2.3;
    }

    // BINV trial cost.
    let n = 20_000_000u64;
    let start = Instant::now();
    let x = edgeswitch_dist::binomial(n, 0.5, &mut rng);
    let elapsed = start.elapsed().as_nanos() as f64;
    if x > 0 {
        model.binv_trial_ns = (elapsed / x as f64).clamp(0.5, 100.0);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_core::config::StepSize;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;
    use edgeswitch_graph::SchemeKind;

    #[test]
    fn strong_scaling_produces_monotone_points() {
        let mut rng = root_rng(1);
        let g = erdos_renyi_gnm(300, 1800, &mut rng);
        let pts = strong_scaling(&g, 6000, &[4, 16, 64], &CostModel::default(), |p| {
            ParallelConfig::new(p)
                .with_scheme(SchemeKind::HashUniversal)
                .with_step_size(StepSize::FractionOfT(4))
                .with_seed(5)
        });
        assert_eq!(pts.len(), 3);
        assert!(pts[0].runtime_s > pts[2].runtime_s, "runtime must drop");
        assert!(pts[2].speedup > pts[0].speedup);
    }

    #[test]
    fn weak_scaling_runtime_is_bounded() {
        let pts = weak_scaling(
            &[2, 4, 8],
            &CostModel::default(),
            |p| {
                let mut rng = root_rng(p as u64);
                let g = erdos_renyi_gnm(100 * p, 500 * p, &mut rng);
                (g, 500 * p as u64)
            },
            |p| {
                ParallelConfig::new(p)
                    .with_step_size(StepSize::FractionOfT(2))
                    .with_seed(6)
            },
        );
        // Runtime may grow (communication) but must stay within a small
        // factor — each rank's share of work is constant. (p = 1 is
        // excluded: it pays no network latency at all.)
        let ratio = pts[2].runtime_s / pts[0].runtime_s;
        assert!(ratio < 4.0, "weak scaling blew up: ratio {ratio}");
    }

    #[test]
    fn multinomial_series_shapes() {
        let cost = CostModel::default();
        let strong = multinomial_strong_scaling(10_000_000_000_000, 20, &[64, 256, 1024], &cost);
        assert!(strong[2].2 > strong[0].2, "speedup grows with p");
        assert!(strong[2].2 > 800.0, "paper reports ≈925 at p=1024");

        let weak = multinomial_weak_scaling(20_000_000_000, &[64, 256, 1024], &cost);
        let ratio = weak[2].1 / weak[0].1;
        assert!(ratio < 1.3, "weak multinomial near-flat, got {ratio}");
    }

    #[test]
    fn calibrate_returns_positive_costs() {
        let mut rng = root_rng(2);
        let g = erdos_renyi_gnm(200, 1000, &mut rng);
        let m = calibrate(&g, 3);
        assert!(m.seq_switch_ns > 0.0);
        assert!(m.binv_trial_ns > 0.0);
        assert!(m.latency_ns > m.msg_handle_ns);
    }
}
