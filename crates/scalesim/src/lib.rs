//! # edgeswitch-scalesim
//!
//! Virtual-time cluster substrate: predicts the distributed runtime and
//! speedup of the parallel edge-switch algorithm for processor counts far
//! beyond the host machine (the paper evaluates up to 1024 MPI ranks on
//! an InfiniBand cluster; this repository runs on whatever machine it is
//! checked out on).
//!
//! - [`model::CostModel`]: LogGP-style parameters (latency, per-message
//!   overhead, per-switch compute, per-trial BINV cost),
//! - [`des`]: a discrete-event driver that executes the *actual*
//!   protocol state machines on virtual clocks,
//! - [`predict`]: strong/weak scaling sweeps, the analytic multinomial
//!   scaling series, and host calibration.
//!
//! The logical results of a DES run (final graph, workload distribution,
//! visit rate) are genuine outputs of the parallel algorithm; only the
//! wall-clock axis is modeled. See DESIGN.md §2.

#![warn(missing_docs)]

pub mod des;
pub mod model;
pub mod predict;

pub use des::{
    des_curveball, des_curveball_with, des_parallel, des_parallel_with, DesReport, DesTransport,
};
pub use model::CostModel;
pub use predict::{
    calibrate, multinomial_strong_scaling, multinomial_weak_scaling, strong_scaling,
    strong_scaling_with, weak_scaling, ScalePoint,
};
