//! The LogGP-style cost model of the simulated cluster.
//!
//! The paper's testbed is 64 dual-socket Sandy Bridge nodes (1024 cores)
//! on QDR InfiniBand. This reproduction has one core, so runtime-vs-`p`
//! curves are produced by charging *measured operation counts* from real
//! protocol executions to this cost model inside a discrete-event
//! simulation. Defaults are calibrated so that the sequential-per-switch
//! to message-latency ratio matches the efficiency regime the paper
//! reports (speedup ≈ 110 at 640 ranks on the largest graph); see
//! EXPERIMENTS.md for the calibration narrative.

use serde::{Deserialize, Serialize};

/// Cost-model parameters. All times in nanoseconds of virtual time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Sequential algorithm: cost of one switch operation
    /// (`O(log d_max)` adjacency probes + bookkeeping).
    pub seq_switch_ns: f64,
    /// Parallel rank: local CPU work to initiate/apply one operation.
    pub local_op_ns: f64,
    /// CPU overhead of sending or handling one protocol message (`o` in
    /// LogP terms).
    pub msg_handle_ns: f64,
    /// Network latency of one message (`L` / `α`).
    pub latency_ns: f64,
    /// Per-trial cost of BINV-based multinomial generation.
    pub binv_trial_ns: f64,
    /// Fixed per-step overhead besides the `log p` collective terms.
    pub step_fixed_ns: f64,
    /// Large-`p` parallel efficiency factor for embarrassingly parallel
    /// phases (system noise, stragglers, startup): the paper's measured
    /// multinomial speedup of 925 on 1024 ranks implies ≈ 0.90.
    pub parallel_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated defaults (see EXPERIMENTS.md): a ~0.6 µs sequential
        // switch against ~1.4 µs one-way latency lands parallel
        // efficiency in the paper's observed band.
        CostModel {
            seq_switch_ns: 600.0,
            local_op_ns: 350.0,
            msg_handle_ns: 150.0,
            latency_ns: 700.0,
            binv_trial_ns: 7.0,
            step_fixed_ns: 10_000.0,
            parallel_efficiency: 0.90,
        }
    }
}

impl CostModel {
    /// Virtual time of the sequential algorithm for `t` operations.
    pub fn sequential_time_ns(&self, t: u64) -> f64 {
        t as f64 * self.seq_switch_ns
    }

    /// Cost of the step-boundary collectives at world size `p`:
    /// end-of-step dissemination + edge-count allgather (both `O(log p)`
    /// on a tree network).
    pub fn step_collective_ns(&self, p: usize) -> f64 {
        let rounds = ceil_log2(p) as f64;
        self.step_fixed_ns + 2.0 * rounds * self.latency_ns
    }

    /// Cost of the parallel multinomial draw of `s` trials over `p`
    /// ranks: `O(s/p + p·log p)` with the exchange on a tree.
    pub fn multinomial_step_ns(&self, s: u64, p: usize) -> f64 {
        let rounds = ceil_log2(p) as f64;
        self.binv_trial_ns * (s as f64 / p as f64) + rounds * self.latency_ns + p as f64 * 2.0
        // O(p) local vector update, a few ns per slot
    }

    /// Virtual time of the *sequential* multinomial generation of `n`
    /// trials (conditional-distribution method, `Θ(n)`).
    pub fn sequential_multinomial_ns(&self, n: u64) -> f64 {
        n as f64 * self.binv_trial_ns
    }

    /// Virtual time of the parallel multinomial algorithm for `n` trials,
    /// `l` outcomes, `p` ranks: `O(n/p + l·log p)` (Section 6.2).
    pub fn parallel_multinomial_ns(&self, n: u64, l: usize, p: usize) -> f64 {
        let rounds = ceil_log2(p) as f64;
        let eff = if p > 1 { self.parallel_efficiency } else { 1.0 };
        self.binv_trial_ns * (n as f64 / p as f64) / eff
            + (l as f64) * rounds * self.latency_ns / 16.0 // vectorized exchange
            + rounds * self.latency_ns
    }
}

/// `⌈log₂ p⌉`, with `p = 1 → 0`.
pub fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn sequential_time_scales_linearly() {
        let m = CostModel::default();
        assert!(m.sequential_time_ns(2000) == 2.0 * m.sequential_time_ns(1000));
    }

    #[test]
    fn collective_cost_grows_with_p() {
        let m = CostModel::default();
        assert!(m.step_collective_ns(1024) > m.step_collective_ns(2));
    }

    #[test]
    fn parallel_multinomial_speedup_shape() {
        // The model must reproduce Figure 24's near-linear scaling: at
        // N = 10⁴ billion trials and ℓ = 20, speedup at p = 1024 lands
        // in the 900s.
        let m = CostModel::default();
        let n = 10_000_000_000_000u64; // 10000B
        let seq = m.sequential_multinomial_ns(n);
        let par = m.parallel_multinomial_ns(n, 20, 1024);
        let speedup = seq / par;
        assert!(
            (850.0..975.0).contains(&speedup),
            "multinomial speedup {speedup} out of the paper's band (925)"
        );
    }

    #[test]
    fn multinomial_weak_scaling_is_flat() {
        // Figure 25: N = p · 20B, ℓ = p — runtime nearly constant.
        let m = CostModel::default();
        let t64 = m.parallel_multinomial_ns(64 * 20_000_000_000, 64, 64);
        let t1024 = m.parallel_multinomial_ns(1024 * 20_000_000_000, 1024, 1024);
        let ratio = t1024 / t64;
        assert!(
            ratio < 1.25,
            "weak scaling should be near-flat, got ratio {ratio}"
        );
    }
}
