//! Discrete-event execution of the parallel edge-switch protocol under
//! the virtual-time cost model.
//!
//! This driver runs the *same* shared world loop as the deterministic
//! FIFO simulator in `edgeswitch-core` — every message of Section 4.4 is
//! logically exchanged in the same global causal order — but the
//! transport charges virtual time as it goes (trace-driven simulation):
//! handling charges CPU overhead to the receiving rank, remote delivery
//! adds network latency, and step boundaries add the collective and
//! multinomial costs of Section 4.5. Because the logical schedule is the
//! FIFO one, a DES run and a FIFO run of the same `(graph, t, config)`
//! produce identical [`ParallelOutcome`] results; the DES adds the
//! timing axis. The maximum rank clock at the end is the predicted
//! distributed runtime, from which speedup-vs-`p` curves are produced
//! for worlds far larger than the host machine.

use crate::model::CostModel;
use edgeswitch_core::config::ParallelConfig;
use edgeswitch_core::obs::{Clock, Obs, Phase, VirtualClock};
use edgeswitch_core::parallel::{
    run_simulated_trades, run_simulated_world, Msg, StepTelemetry, Transport, WorldTransport,
};
use edgeswitch_core::{ParallelOutcome, TradeBudget};
use edgeswitch_graph::{Graph, Partitioner};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual-time report of a DES run.
#[derive(Clone, Debug)]
pub struct DesReport {
    /// Total predicted runtime in virtual nanoseconds.
    pub runtime_ns: f64,
    /// Network packets exchanged (the DES delivers one logical message
    /// per packet, so this also equals the logical message total).
    pub packets: u64,
    /// Predicted runtime of each step.
    pub step_ns: Vec<f64>,
    /// Predicted speedup over the modeled sequential run of the same
    /// operation count.
    pub speedup: f64,
    /// Per-rank busy CPU time (ns) — the rest of each rank's clock is
    /// latency/idle; `busy/runtime` is the rank's utilization.
    pub busy_ns: Vec<f64>,
}

/// The cost-charging transport: global causal-FIFO delivery (identical
/// logical schedule to the core FIFO simulator) with per-rank virtual
/// clocks advanced by the [`CostModel`] hooks.
pub struct DesTransport {
    clocks: Vec<u64>,
    busy: Vec<u64>,
    /// In-flight messages `(dst, src, msg, arrival_time)` in causal
    /// order.
    queue: VecDeque<(usize, usize, Msg, u64)>,
    cost: CostModel,
    /// Max clock when the current step began.
    step_start: u64,
    /// Boundary cost charged at the current step's start.
    boundary: u64,
    /// Collective share of `boundary` (the rest is the multinomial).
    coll: u64,
    /// Virtual time receivers spent waiting for arrivals this step (sum
    /// of `arrival − clock` gaps).
    wait_gap: u64,
    /// The shared cell behind the probes' [`VirtualClock`]: always holds
    /// the clock of the rank whose event was processed last, so observed
    /// spans and round trips land on the virtual timeline.
    now_cell: Arc<AtomicU64>,
}

impl DesTransport {
    /// Fresh clocks for a `p`-rank world under `cost`.
    pub fn new(p: usize, cost: CostModel) -> Self {
        DesTransport {
            clocks: vec![0; p],
            busy: vec![0; p],
            queue: VecDeque::new(),
            cost,
            step_start: 0,
            boundary: 0,
            coll: 0,
            wait_gap: 0,
            now_cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Predicted total runtime so far: the maximum rank clock.
    pub fn runtime_ns(&self) -> f64 {
        self.clocks.iter().copied().max().unwrap_or(0) as f64
    }

    /// Per-rank busy CPU time in nanoseconds.
    pub fn busy_ns(&self) -> Vec<f64> {
        self.busy.iter().map(|&b| b as f64).collect()
    }

    fn charge(&mut self, rank: usize, ns: f64) {
        self.clocks[rank] += ns as u64;
        self.busy[rank] += ns as u64;
        self.now_cell.store(self.clocks[rank], Ordering::Relaxed);
    }
}

impl Transport for DesTransport {
    fn on_op_started(&mut self, rank: usize) {
        self.charge(rank, self.cost.local_op_ns);
    }
    fn on_self_delivery(&mut self, rank: usize) {
        // Local role change: pure CPU handling cost.
        self.charge(rank, self.cost.msg_handle_ns);
    }
}

impl WorldTransport for DesTransport {
    fn deliver(&mut self, src: usize, dst: usize, msg: Msg) {
        // Send overhead at the source, then latency on the wire.
        self.charge(src, self.cost.msg_handle_ns);
        let at = self.clocks[src] + self.cost.latency_ns as u64;
        self.queue.push_back((dst, src, msg, at));
    }

    fn pop_any(&mut self) -> Option<(usize, usize, Msg)> {
        let (dst, src, msg, at) = self.queue.pop_front()?;
        // The receiver can't handle a message before it arrives; the gap
        // is virtual wait time.
        self.wait_gap += at.saturating_sub(self.clocks[dst]);
        self.clocks[dst] = self.clocks[dst].max(at) + self.cost.msg_handle_ns as u64;
        self.busy[dst] += self.cost.msg_handle_ns as u64;
        self.now_cell.store(self.clocks[dst], Ordering::Relaxed);
        Some((dst, src, msg))
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn begin_step(&mut self, step_ops: u64, p: usize) {
        // Step boundary: q refresh + multinomial, synchronizing all
        // ranks (the collectives are barriers).
        let coll = self.cost.step_collective_ns(p);
        let multi = self.cost.multinomial_step_ns(step_ops, p);
        self.step_start = self.clocks.iter().copied().max().unwrap_or(0);
        self.coll = coll as u64;
        self.boundary = (coll + multi) as u64;
        self.wait_gap = 0;
        let start = self.step_start + self.boundary;
        for c in self.clocks.iter_mut() {
            *c = start;
        }
        self.now_cell.store(start, Ordering::Relaxed);
    }

    fn end_step(&mut self) -> (f64, f64) {
        let end = self.clocks.iter().copied().max().unwrap_or(0);
        (
            self.boundary as f64,
            (end - self.step_start - self.boundary) as f64,
        )
    }

    fn obs_clock(&mut self) -> Option<Arc<dyn Clock>> {
        // Probes read the shared cell the transport advances: an
        // observed DES run reports in virtual nanoseconds.
        Some(Arc::new(VirtualClock::new(self.now_cell.clone())))
    }

    fn record_step_spans(&mut self, obs: &mut Obs, tel: &mut StepTelemetry) -> bool {
        // The DES owns the step spans: the boundary splits into its
        // collective (barrier) and multinomial (q-refresh) shares, and
        // message waiting is the accumulated virtual arrival gap.
        // Handler-internal spans (sampling, legality, switch apply) are
        // zero-width on this timeline — the cost model charges handling
        // as a whole, not its interior — which the report makes explicit.
        let barrier_ns = self.coll;
        let qrefresh_ns = self.boundary - self.coll;
        obs.span(Phase::StepBarrier, barrier_ns);
        obs.span(Phase::QRefresh, qrefresh_ns);
        obs.span(Phase::MsgWait, self.wait_gap);
        tel.barrier_ns = barrier_ns as f64;
        tel.qrefresh_ns = qrefresh_ns as f64;
        tel.wait_ns = self.wait_gap as f64;
        true
    }
}

/// Run the protocol on `p` virtual ranks under the cost model, returning
/// the logical outcome and the timing report.
pub fn des_parallel(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    des_parallel_with(graph, t, config, &part, cost)
}

/// [`des_parallel`] with an explicit partitioner.
pub fn des_parallel_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let p = config.processors;
    let mut transport = DesTransport::new(p, *cost);
    let outcome = run_simulated_world(graph, t, config, part, &mut transport);

    let runtime_ns = transport.runtime_ns();
    let step_ns: Vec<f64> = outcome
        .telemetry
        .iter()
        .map(|s| s.boundary_ns + s.drain_ns)
        .collect();
    let packets: u64 = outcome.comm.iter().map(|c| c.packets_sent).sum();
    let seq_ns = cost.sequential_time_ns(t);
    let report = DesReport {
        runtime_ns,
        packets,
        step_ns,
        speedup: if runtime_ns > 0.0 {
            seq_ns / runtime_ns
        } else {
            1.0
        },
        busy_ns: transport.busy_ns(),
    };
    (outcome, report)
}

/// Curveball trades on `p` virtual ranks under the cost model — the
/// trade analogue of [`des_parallel`]. The logical schedule is the core
/// FIFO trade simulator's, so the outcome is bit-identical to
/// `simulate_curveball` (and to the sequential engine) under the same
/// seed; the DES adds the virtual-time axis.
pub fn des_curveball(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    des_curveball_with(graph, budget, config, &part, cost)
}

/// [`des_curveball`] with an explicit partitioner.
pub fn des_curveball_with(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
    part: &Partitioner,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let p = config.processors;
    let mut transport = DesTransport::new(p, *cost);
    let outcome = run_simulated_trades(graph, budget, config, part, &mut transport);

    let runtime_ns = transport.runtime_ns();
    let step_ns: Vec<f64> = outcome
        .telemetry
        .iter()
        .map(|s| s.boundary_ns + s.drain_ns)
        .collect();
    let packets: u64 = outcome.comm.iter().map(|c| c.packets_sent).sum();
    let report = DesReport {
        runtime_ns,
        packets,
        step_ns,
        // No modeled sequential trade baseline: report parity.
        speedup: 1.0,
        busy_ns: transport.busy_ns(),
    };
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_core::config::StepSize;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;
    use edgeswitch_graph::SchemeKind;

    fn graph() -> Graph {
        let mut rng = root_rng(42);
        erdos_renyi_gnm(400, 2400, &mut rng)
    }

    #[test]
    fn des_preserves_logical_invariants() {
        let g = graph();
        let t = 2000;
        let cfg = ParallelConfig::new(16)
            .with_scheme(SchemeKind::HashUniversal)
            .with_step_size(StepSize::FractionOfT(5))
            .with_seed(1);
        let (out, report) = des_parallel(&g, t, &cfg, &CostModel::default());
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
        assert!(report.runtime_ns > 0.0);
        assert_eq!(report.step_ns.len(), 5);
        assert!(report.packets > 0);
        // The step phases and message kinds surface in the telemetry.
        assert_eq!(out.telemetry.len(), 5);
        assert!(out.telemetry.iter().all(|s| s.boundary_ns > 0.0));
        assert_eq!(out.telemetry.iter().map(|s| s.ops).sum::<u64>(), t);
        assert_eq!(out.logical_msg_totals().total(), report.packets);
    }

    #[test]
    fn des_speedup_grows_with_p() {
        // Note: p = 2 is *slower* than p = 1 (half the switches pay full
        // network latency) — a real property of latency-bound distributed
        // switching; the paper's plots start at p = 64. We assert growth
        // within the rising regime.
        let g = graph();
        let t = 8000;
        let cost = CostModel::default();
        let mut prev = 0.0;
        for p in [4, 16, 64] {
            let cfg = ParallelConfig::new(p)
                .with_step_size(StepSize::FractionOfT(4))
                .with_seed(2);
            let (_, report) = des_parallel(&g, t, &cfg, &cost);
            assert!(
                report.speedup > prev,
                "speedup must grow: p={p} gave {} after {prev}",
                report.speedup
            );
            prev = report.speedup;
        }
    }

    #[test]
    fn des_single_rank_speedup_below_one() {
        // p = 1 pays protocol overhead with no parallelism.
        let g = graph();
        let cfg = ParallelConfig::new(1).with_seed(3);
        let (_, report) = des_parallel(&g, 1000, &cfg, &CostModel::default());
        assert!(report.speedup <= 1.1, "speedup {} at p=1", report.speedup);
    }

    #[test]
    fn des_deterministic() {
        let g = graph();
        let cfg = ParallelConfig::new(8).with_seed(9);
        let (a, ra) = des_parallel(&g, 1500, &cfg, &CostModel::default());
        let (b, rb) = des_parallel(&g, 1500, &cfg, &CostModel::default());
        assert!(a.graph.same_edge_set(&b.graph));
        assert_eq!(ra.runtime_ns, rb.runtime_ns);
        assert_eq!(ra.packets, rb.packets);
    }
}
