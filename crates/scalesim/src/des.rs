//! Discrete-event execution of the parallel edge-switch protocol under
//! the virtual-time cost model.
//!
//! This driver runs the *same* [`RankState`] machines as the threaded
//! engine — every message of Section 4.4 is logically exchanged — but
//! delivery happens on a virtual clock: handling charges CPU overhead to
//! the receiving rank, remote delivery adds network latency, and step
//! boundaries add the collective and multinomial costs of Section 4.5.
//! The maximum rank clock at the end is the predicted distributed
//! runtime, from which speedup-vs-`p` curves are produced for worlds far
//! larger than the host machine.

use crate::model::CostModel;
use edgeswitch_core::config::{ParallelConfig, QuotaPolicy};
use edgeswitch_core::parallel::{Msg, Outbox, RankState, StartResult};
use edgeswitch_core::visit::VisitTracker;
use edgeswitch_core::ParallelOutcome;
use edgeswitch_dist::multinomial::multinomial;
use edgeswitch_dist::parallel::trial_share;
use edgeswitch_graph::store::{assemble_graph, build_stores};
use edgeswitch_graph::{Graph, Partitioner};
use mpilite::CommStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual-time report of a DES run.
#[derive(Clone, Debug)]
pub struct DesReport {
    /// Total predicted runtime in virtual nanoseconds.
    pub runtime_ns: f64,
    /// Predicted runtime of each step.
    pub step_ns: Vec<f64>,
    /// Transport messages exchanged.
    pub messages: u64,
    /// Predicted speedup over the modeled sequential run of the same
    /// operation count.
    pub speedup: f64,
    /// Per-rank busy CPU time (ns) — the rest of each rank's clock is
    /// latency/idle; `busy/runtime` is the rank's utilization.
    pub busy_ns: Vec<f64>,
}

/// A scheduled message delivery (min-heap on arrival time).
struct Delivery {
    at: u64,
    seq: u64,
    dst: usize,
    src: usize,
    msg: Msg,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Run the protocol on `p` virtual ranks under the cost model, returning
/// the logical outcome and the timing report.
pub fn des_parallel(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let mut rng = edgeswitch_dist::root_rng(config.seed ^ 0x9a17);
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    des_parallel_with(graph, t, config, &part, cost)
}

/// [`des_parallel`] with an explicit partitioner.
pub fn des_parallel_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
    cost: &CostModel,
) -> (ParallelOutcome, DesReport) {
    let p = config.processors;
    assert_eq!(part.num_parts(), p);
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();

    let mut states: Vec<RankState> = stores
        .into_iter()
        .enumerate()
        .map(|(rank, store)| RankState::new(rank, part.clone(), store, config.seed))
        .collect();

    let s = config.step_size.resolve(t);
    let steps = t.div_ceil(s.max(1));
    let mut world = DesWorld {
        clocks: vec![0u64; p],
        busy: vec![0u64; p],
        heap: BinaryHeap::new(),
        seq: 0,
        messages: 0,
        cost: *cost,
    };
    let mut step_ns = Vec::with_capacity(steps as usize);
    let mut step_start = 0u64;
    let uniform_q = config.quota_policy == QuotaPolicy::Uniform;
    for step in 0..steps {
        let step_ops = if step == steps - 1 { t - s * (steps - 1) } else { s };
        run_step(&mut world, &mut states, step_ops, uniform_q);
        let end = *world.clocks.iter().max().unwrap();
        step_ns.push((end - step_start) as f64);
        step_start = end;
    }
    let runtime_ns = step_start as f64;

    // Gather logical results.
    let mut per_rank = Vec::with_capacity(p);
    let mut final_edges = Vec::with_capacity(p);
    let mut tracker_acc: Option<VisitTracker> = None;
    let mut final_stores = Vec::with_capacity(p);
    for state in states {
        let (store, tracker, stats) = state.into_parts();
        per_rank.push(stats);
        final_edges.push(store.num_edges() as u64);
        final_stores.push(store);
        match &mut tracker_acc {
            None => tracker_acc = Some(tracker),
            Some(acc) => acc.merge_disjoint(tracker),
        }
    }
    let outcome = ParallelOutcome {
        graph: assemble_graph(n, &final_stores),
        steps,
        per_rank,
        final_edges,
        initial_edges,
        comm: vec![CommStats::default(); p],
        tracker: tracker_acc.unwrap_or_else(|| VisitTracker::new(std::iter::empty())),
    };
    let seq_ns = cost.sequential_time_ns(t);
    let report = DesReport {
        runtime_ns,
        step_ns,
        messages: world.messages,
        speedup: if runtime_ns > 0.0 { seq_ns / runtime_ns } else { 1.0 },
        busy_ns: world.busy.iter().map(|&b| b as f64).collect(),
    };
    (outcome, report)
}

struct DesWorld {
    clocks: Vec<u64>,
    busy: Vec<u64>,
    heap: BinaryHeap<Reverse<Delivery>>,
    seq: u64,
    messages: u64,
    cost: CostModel,
}

impl DesWorld {
    /// Route queued outbox messages from `src`: self-addressed ones are
    /// handled inline (pure CPU), remote ones are scheduled after
    /// latency.
    fn route(&mut self, states: &mut [RankState], src: usize, out: &mut Outbox) {
        while let Some((dst, msg)) = out.pop() {
            if dst == src {
                // Local role change: charge handling cost and recurse.
                self.clocks[src] += self.cost.msg_handle_ns as u64;
                self.busy[src] += self.cost.msg_handle_ns as u64;
                let mut out2 = Outbox::new();
                states[src].handle(src, msg, &mut out2);
                // Merge follow-ups into the same queue to preserve FIFO.
                while let Some(x) = out2.pop() {
                    out.push(x.0, x.1);
                }
            } else {
                self.messages += 1;
                self.clocks[src] += self.cost.msg_handle_ns as u64; // send overhead
                self.busy[src] += self.cost.msg_handle_ns as u64;
                self.seq += 1;
                self.heap.push(Reverse(Delivery {
                    at: self.clocks[src] + self.cost.latency_ns as u64,
                    seq: self.seq,
                    dst,
                    src,
                    msg,
                }));
            }
        }
    }

    /// Start as many own operations on `rank` as possible right now.
    fn pump(&mut self, states: &mut [RankState], rank: usize) {
        let mut out = Outbox::new();
        while let StartResult::Started = states[rank].try_start(&mut out) {
            self.clocks[rank] += self.cost.local_op_ns as u64;
            self.busy[rank] += self.cost.local_op_ns as u64;
            self.route(states, rank, &mut out);
        }
    }
}

fn run_step(world: &mut DesWorld, states: &mut [RankState], step_ops: u64, uniform_q: bool) {
    let p = states.len();
    // Step boundary: q refresh + multinomial, charged to every rank.
    let counts: Vec<u64> = states.iter().map(|st| st.edge_count()).collect();
    let total: u64 = counts.iter().sum();
    let q: Vec<f64> = if total == 0 || uniform_q {
        vec![1.0 / p as f64; p]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    };
    let boundary = world.cost.step_collective_ns(p) + world.cost.multinomial_step_ns(step_ops, p);
    let start = *world.clocks.iter().max().unwrap() + boundary as u64;
    for c in world.clocks.iter_mut() {
        *c = start;
    }
    let mut quota = vec![0u64; p];
    for (i, st) in states.iter_mut().enumerate() {
        let share = trial_share(step_ops, p, i);
        let row = multinomial(share, &q, st.rng_mut());
        for (qj, xi) in quota.iter_mut().zip(row) {
            *qj += xi;
        }
    }
    for (st, &qi) in states.iter_mut().zip(&quota) {
        st.begin_step(qi, &q);
    }

    // Kick every rank off, then drain deliveries in time order.
    for rank in 0..p {
        world.pump(states, rank);
    }
    while let Some(Reverse(d)) = world.heap.pop() {
        let rank = d.dst;
        let begin = world.clocks[rank].max(d.at);
        world.clocks[rank] = begin + world.cost.msg_handle_ns as u64;
        world.busy[rank] += world.cost.msg_handle_ns as u64;
        let mut out = Outbox::new();
        states[rank].handle(d.src, d.msg, &mut out);
        world.route(states, rank, &mut out);
        // Handling may have unblocked this rank's own pipeline.
        world.pump(states, rank);
    }
    debug_assert!(
        states.iter().all(|st| st.step_done()),
        "DES step drained with unfinished quotas"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_core::config::StepSize;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;
    use edgeswitch_graph::SchemeKind;

    fn graph() -> Graph {
        let mut rng = root_rng(42);
        erdos_renyi_gnm(400, 2400, &mut rng)
    }

    #[test]
    fn des_preserves_logical_invariants() {
        let g = graph();
        let t = 2000;
        let cfg = ParallelConfig::new(16)
            .with_scheme(SchemeKind::HashUniversal)
            .with_step_size(StepSize::FractionOfT(5))
            .with_seed(1);
        let (out, report) = des_parallel(&g, t, &cfg, &CostModel::default());
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
        assert!(report.runtime_ns > 0.0);
        assert_eq!(report.step_ns.len(), 5);
        assert!(report.messages > 0);
    }

    #[test]
    fn des_speedup_grows_with_p() {
        // Note: p = 2 is *slower* than p = 1 (half the switches pay full
        // network latency) — a real property of latency-bound distributed
        // switching; the paper's plots start at p = 64. We assert growth
        // within the rising regime.
        let g = graph();
        let t = 8000;
        let cost = CostModel::default();
        let mut prev = 0.0;
        for p in [4, 16, 64] {
            let cfg = ParallelConfig::new(p)
                .with_step_size(StepSize::FractionOfT(4))
                .with_seed(2);
            let (_, report) = des_parallel(&g, t, &cfg, &cost);
            assert!(
                report.speedup > prev,
                "speedup must grow: p={p} gave {} after {prev}",
                report.speedup
            );
            prev = report.speedup;
        }
    }

    #[test]
    fn des_single_rank_speedup_below_one() {
        // p = 1 pays protocol overhead with no parallelism.
        let g = graph();
        let cfg = ParallelConfig::new(1).with_seed(3);
        let (_, report) = des_parallel(&g, 1000, &cfg, &CostModel::default());
        assert!(report.speedup <= 1.1, "speedup {} at p=1", report.speedup);
    }

    #[test]
    fn des_deterministic() {
        let g = graph();
        let cfg = ParallelConfig::new(8).with_seed(9);
        let (a, ra) = des_parallel(&g, 1500, &cfg, &CostModel::default());
        let (b, rb) = des_parallel(&g, 1500, &cfg, &CostModel::default());
        assert!(a.graph.same_edge_set(&b.graph));
        assert_eq!(ra.runtime_ns, rb.runtime_ns);
        assert_eq!(ra.messages, rb.messages);
    }
}
