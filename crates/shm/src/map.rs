//! Anonymous shared-memory mappings backed by `memfd_create`.

use std::io;

use crate::sys;

/// A shared, writable memory mapping identified by an inheritable file
/// descriptor.
///
/// The creating process passes the fd (plus the byte length) to child
/// processes — the fd is deliberately created without `CLOEXEC` so it survives
/// `exec` — and each child attaches with [`SharedMapping::from_fd`]. All
/// attachments see the same physical pages.
pub struct SharedMapping {
    ptr: *mut u8,
    len: usize,
    fd: i32,
}

// The mapping itself is plain shared memory; all concurrent access goes
// through atomics managed by the ring/world layers.
unsafe impl Send for SharedMapping {}
unsafe impl Sync for SharedMapping {}

impl SharedMapping {
    /// Create a fresh zero-filled mapping of `len` bytes.
    pub fn create(len: usize) -> io::Result<Self> {
        let fd = sys::shm_create(len)?;
        match sys::shm_map(fd, len) {
            Ok(ptr) => Ok(SharedMapping { ptr, len, fd }),
            Err(err) => {
                sys::close_fd(fd);
                Err(err)
            }
        }
    }

    /// Attach to an existing mapping through an inherited fd.
    pub fn from_fd(fd: i32, len: usize) -> io::Result<Self> {
        let ptr = sys::shm_map(fd, len)?;
        Ok(SharedMapping { ptr, len, fd })
    }

    /// The file descriptor to hand to child processes.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live mapping).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the mapping (page-aligned).
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }
}

impl Drop for SharedMapping {
    fn drop(&mut self) {
        sys::shm_unmap(self.ptr, self.len);
        sys::close_fd(self.fd);
    }
}
