//! Shared-memory plumbing for the process-backed parallel transport.
//!
//! Three layers, bottom-up:
//!
//! * [`sys`]-level raw syscalls (`memfd_create`, `mmap`, `futex`, `prctl`)
//!   declared by hand so the crate needs no dependencies;
//! * [`SpscRing`], a lock-free single-producer/single-consumer byte ring with
//!   `[u32 len]`-framed messages over any 8-byte-aligned memory;
//! * [`ShmWorld`], one anonymous mapping holding a boot blob, per-participant
//!   futex doorbells, and a k×k grid of rings, attachable from child
//!   processes through an inherited file descriptor.
//!
//! The crate knows nothing about edge switching: it moves tagged byte frames
//! between processes. See `edgeswitch-core`'s `parallel::proc` module for the
//! protocol layered on top.

#![warn(missing_docs)]

mod map;
mod ring;
mod sys;
mod world;

pub use map::SharedMapping;
pub use ring::{SpscRing, FRAME_OVERHEAD, RING_HDR};
pub use sys::{die_with_parent, parent_pid, SUPPORTED};
pub use world::{Endpoint, ShmWorld, WaitOutcome};
