//! A "world": one shared mapping holding a boot blob, per-participant
//! doorbells, and a full grid of point-to-point SPSC rings.
//!
//! Memory layout (all offsets 64-byte aligned, `k` = participants):
//!
//! ```text
//! [ header 64B ][ k doorbells × 64B ][ boot region ][ k×k rings ]
//!
//! header:   magic u64 | version u32 | participants u32 | ring_cap u64
//!           | boot_cap u64 | boot_len u64 | live u32 | parent_pid u32
//! doorbell: seq AtomicU32 | waiters AtomicU32   (one cache line each)
//! ring i→j: at index i*k + j, RING_HDR + ring_cap bytes (diagonal unused)
//! ```
//!
//! Doorbell protocol (eventcount): a producer pushes a frame into ring `me→dst`,
//! then `seq[dst].fetch_add(1, Release)` and — only if `waiters[dst] > 0` — a
//! `futex_wake`. A consumer that found all rings empty snapshots its `seq`,
//! re-checks the rings, registers in `waiters`, re-checks again (so a wake
//! between snapshot and sleep is never lost), and `futex_wait`s on `seq` with
//! a short slice so it also notices `live == 0` (orphan backstop).

use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::map::SharedMapping;
use crate::ring::SpscRing;
use crate::sys;

const MAGIC: u64 = 0x4544_4745_5348_4D31; // "EDGESHM1"
const VERSION: u32 = 1;
const HDR_BYTES: usize = 64;
const DOORBELL_BYTES: usize = 64;
/// How long a parked consumer sleeps per futex slice before re-checking the
/// liveness word. Bounds orphan-detection latency when PDEATHSIG is missing.
const PARK_SLICE: Duration = Duration::from_millis(10);

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_PARTICIPANTS: usize = 12;
const OFF_RING_CAP: usize = 16;
const OFF_BOOT_CAP: usize = 24;
const OFF_BOOT_LEN: usize = 32;
const OFF_LIVE: usize = 40;
const OFF_PARENT_PID: usize = 44;

fn pad64(n: usize) -> usize {
    n.div_ceil(64) * 64
}

/// A shared-memory world connecting `k` participants.
pub struct ShmWorld {
    map: SharedMapping,
    k: usize,
    ring_cap: usize,
    boot_cap: usize,
    creator: bool,
}

/// Outcome of [`Endpoint::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// At least one incoming ring has a frame (may have been found while
    /// spinning — no park happened).
    Ready,
    /// A frame arrived after parking; carries nanoseconds spent parked.
    ParkedReady(u64),
    /// The total timeout elapsed with no traffic.
    TimedOut,
    /// The world was marked dead (creator exited or torn down).
    Dead,
}

impl ShmWorld {
    fn layout(k: usize, ring_cap: usize, boot_cap: usize) -> (usize, usize, usize) {
        let boot_off = HDR_BYTES + k * DOORBELL_BYTES;
        let rings_off = boot_off + pad64(boot_cap);
        let total = rings_off + k * k * SpscRing::footprint(ring_cap);
        (boot_off, rings_off, pad64(total))
    }

    /// Create a fresh world for `k` participants with the given per-pair ring
    /// capacity (rounded up to a power of two, min 4 KiB) and boot-blob
    /// capacity. The calling process becomes the creator: dropping the world
    /// marks it dead and wakes every parked participant.
    pub fn create(k: usize, ring_cap: usize, boot_cap: usize) -> io::Result<ShmWorld> {
        assert!(k >= 1);
        let ring_cap = ring_cap.next_power_of_two().max(4096);
        let (_, _, total) = Self::layout(k, ring_cap, boot_cap);
        let map = SharedMapping::create(total)?;
        let world = ShmWorld {
            map,
            k,
            ring_cap,
            boot_cap,
            creator: true,
        };
        // The mapping starts zero-filled, which is already a valid state for
        // every ring and doorbell; only the header needs writing.
        world.hdr_u64(OFF_MAGIC).store(MAGIC, Ordering::Relaxed);
        world.hdr_u32(OFF_VERSION).store(VERSION, Ordering::Relaxed);
        world
            .hdr_u32(OFF_PARTICIPANTS)
            .store(k as u32, Ordering::Relaxed);
        world
            .hdr_u64(OFF_RING_CAP)
            .store(ring_cap as u64, Ordering::Relaxed);
        world
            .hdr_u64(OFF_BOOT_CAP)
            .store(boot_cap as u64, Ordering::Relaxed);
        world
            .hdr_u32(OFF_PARENT_PID)
            .store(std::process::id(), Ordering::Relaxed);
        world.hdr_u32(OFF_LIVE).store(1, Ordering::Release);
        Ok(world)
    }

    /// Attach to an inherited world by fd + mapping length.
    pub fn open(fd: i32, len: usize) -> io::Result<ShmWorld> {
        let map = SharedMapping::from_fd(fd, len)?;
        let mut world = ShmWorld {
            map,
            k: 1,
            ring_cap: 4096,
            boot_cap: 0,
            creator: false,
        };
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shm world header: {what}"),
            )
        };
        if world.hdr_u64(OFF_MAGIC).load(Ordering::Relaxed) != MAGIC {
            return Err(bad("bad magic"));
        }
        if world.hdr_u32(OFF_VERSION).load(Ordering::Relaxed) != VERSION {
            return Err(bad("version mismatch"));
        }
        world.k = world.hdr_u32(OFF_PARTICIPANTS).load(Ordering::Relaxed) as usize;
        world.ring_cap = world.hdr_u64(OFF_RING_CAP).load(Ordering::Relaxed) as usize;
        world.boot_cap = world.hdr_u64(OFF_BOOT_CAP).load(Ordering::Relaxed) as usize;
        let (_, _, total) = Self::layout(world.k, world.ring_cap, world.boot_cap);
        if total != len {
            return Err(bad("length mismatch"));
        }
        Ok(world)
    }

    fn hdr_u64(&self, off: usize) -> &AtomicU64 {
        unsafe { &*(self.map.as_ptr().add(off) as *const AtomicU64) }
    }

    fn hdr_u32(&self, off: usize) -> &AtomicU32 {
        unsafe { &*(self.map.as_ptr().add(off) as *const AtomicU32) }
    }

    fn doorbell_seq(&self, who: usize) -> &AtomicU32 {
        debug_assert!(who < self.k);
        unsafe { &*(self.map.as_ptr().add(HDR_BYTES + who * DOORBELL_BYTES) as *const AtomicU32) }
    }

    fn doorbell_waiters(&self, who: usize) -> &AtomicU32 {
        debug_assert!(who < self.k);
        unsafe {
            &*(self.map.as_ptr().add(HDR_BYTES + who * DOORBELL_BYTES + 4) as *const AtomicU32)
        }
    }

    fn ring(&self, from: usize, to: usize) -> SpscRing {
        debug_assert!(from < self.k && to < self.k);
        let (_, rings_off, _) = Self::layout(self.k, self.ring_cap, self.boot_cap);
        let at = rings_off + (from * self.k + to) * SpscRing::footprint(self.ring_cap);
        unsafe { SpscRing::attach(self.map.as_ptr().add(at), self.ring_cap) }
    }

    /// Inheritable file descriptor identifying the mapping.
    pub fn fd(&self) -> i32 {
        self.map.fd()
    }

    /// Total mapping length in bytes (children need it to re-attach).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the world holds no participants (never true; see `len`).
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Number of participants `k`.
    pub fn participants(&self) -> usize {
        self.k
    }

    /// Per-pair ring data capacity in bytes.
    pub fn ring_capacity(&self) -> usize {
        self.ring_cap
    }

    /// Pid of the creating process, as recorded in the header.
    pub fn parent_pid(&self) -> u32 {
        self.hdr_u32(OFF_PARENT_PID).load(Ordering::Relaxed)
    }

    /// Write the boot blob (creator, before spawning participants).
    pub fn write_boot(&self, bytes: &[u8]) {
        assert!(
            bytes.len() <= self.boot_cap,
            "boot blob exceeds reserved capacity"
        );
        let (boot_off, _, _) = Self::layout(self.k, self.ring_cap, self.boot_cap);
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                self.map.as_ptr().add(boot_off),
                bytes.len(),
            );
        }
        self.hdr_u64(OFF_BOOT_LEN)
            .store(bytes.len() as u64, Ordering::Release);
    }

    /// Read the boot blob (participants, after attaching).
    pub fn boot(&self) -> &[u8] {
        let len = self.hdr_u64(OFF_BOOT_LEN).load(Ordering::Acquire) as usize;
        assert!(len <= self.boot_cap);
        let (boot_off, _, _) = Self::layout(self.k, self.ring_cap, self.boot_cap);
        unsafe { std::slice::from_raw_parts(self.map.as_ptr().add(boot_off), len) }
    }

    /// Whether the world is still live (creator has not torn it down).
    pub fn alive(&self) -> bool {
        self.hdr_u32(OFF_LIVE).load(Ordering::Acquire) == 1
    }

    /// Mark the world dead and wake every parked participant.
    pub fn mark_dead(&self) {
        self.hdr_u32(OFF_LIVE).store(0, Ordering::Release);
        for who in 0..self.k {
            self.doorbell_seq(who).fetch_add(1, Ordering::Release);
            sys::futex_wake_all(self.doorbell_seq(who));
        }
    }

    /// Build the endpoint for participant `me`. Each participant index must be
    /// claimed by exactly one process/thread.
    pub fn endpoint(&self, me: usize) -> Endpoint<'_> {
        assert!(me < self.k);
        let incoming = (0..self.k).map(|src| self.ring(src, me)).collect();
        let outgoing = (0..self.k).map(|dst| self.ring(me, dst)).collect();
        Endpoint {
            world: self,
            me,
            incoming,
            outgoing,
            scratch: Vec::new(),
            next_src: 0,
        }
    }
}

impl Drop for ShmWorld {
    fn drop(&mut self) {
        if self.creator {
            self.mark_dead();
        }
    }
}

/// One participant's view of a world: its incoming/outgoing rings plus its
/// doorbell.
pub struct Endpoint<'w> {
    world: &'w ShmWorld,
    me: usize,
    incoming: Vec<SpscRing>,
    outgoing: Vec<SpscRing>,
    scratch: Vec<u8>,
    next_src: usize,
}

impl Endpoint<'_> {
    /// This endpoint's participant index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// The world this endpoint belongs to.
    pub fn world(&self) -> &ShmWorld {
        self.world
    }

    /// Send one tagged frame to `dst`, blocking (spin, then yield) while the
    /// destination ring is full. Panics if the world dies or the peer stops
    /// draining for `timeout`.
    pub fn send(&self, dst: usize, tag: u32, payload: &[u8], timeout: Duration) {
        assert_ne!(dst, self.me, "self-sends never cross the shm transport");
        let ring = &self.outgoing[dst];
        let tag_bytes = tag.to_le_bytes();
        let parts: [&[u8]; 2] = [&tag_bytes, payload];
        if !ring.try_push(&parts) {
            let start = Instant::now();
            let mut spins = 0u32;
            loop {
                if ring.try_push(&parts) {
                    break;
                }
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(1024) {
                    if !self.world.alive() {
                        panic!(
                            "shm endpoint {}: world died while sending to {dst}",
                            self.me
                        );
                    }
                    if start.elapsed() >= timeout {
                        panic!(
                            "shm endpoint {}: ring to {dst} full for {timeout:?} (peer dead?)",
                            self.me
                        );
                    }
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        // Eventcount publish: bump seq, then wake only if someone is parked.
        let seq = self.world.doorbell_seq(dst);
        seq.fetch_add(1, Ordering::Release);
        if self.world.doorbell_waiters(dst).load(Ordering::Acquire) > 0 {
            sys::futex_wake_all(seq);
        }
    }

    /// Whether any incoming ring currently holds a frame.
    pub fn has_incoming(&self) -> bool {
        (0..self.incoming.len()).any(|src| src != self.me && self.incoming[src].has_frame())
    }

    /// Pop one incoming frame, scanning sources round-robin for fairness.
    /// The payload borrows this endpoint's scratch buffer — decode it before
    /// the next call.
    pub fn try_recv(&mut self) -> Option<(usize, u32, &[u8])> {
        let k = self.incoming.len();
        for i in 0..k {
            let src = (self.next_src + i) % k;
            if src == self.me {
                continue;
            }
            if self.incoming[src].try_pop(&mut self.scratch) {
                self.next_src = (src + 1) % k;
                let tag = u32::from_le_bytes(self.scratch[..4].try_into().unwrap());
                return Some((src, tag, &self.scratch[4..]));
            }
        }
        None
    }

    /// Wait until a frame is available: spin `spin_relax` times with CPU
    /// relax hints, keep spinning with `yield_now` up to `spin_total`, then
    /// park on the doorbell futex until woken, the world dies, or `timeout`
    /// elapses in total.
    pub fn wait(&self, spin_relax: u32, spin_total: u32, timeout: Duration) -> WaitOutcome {
        for spin in 0..spin_total {
            if self.has_incoming() {
                return WaitOutcome::Ready;
            }
            if spin < spin_relax {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let seq = self.world.doorbell_seq(self.me);
        let waiters = self.world.doorbell_waiters(self.me);
        let start = Instant::now();
        loop {
            let snapshot = seq.load(Ordering::Acquire);
            if self.has_incoming() {
                return self.parked_ready(start);
            }
            if !self.world.alive() {
                return WaitOutcome::Dead;
            }
            if start.elapsed() >= timeout {
                return WaitOutcome::TimedOut;
            }
            waiters.fetch_add(1, Ordering::SeqCst);
            // Re-check after registering so a producer that published between
            // our ring scan and the waiter increment still wakes us.
            if self.has_incoming() {
                waiters.fetch_sub(1, Ordering::SeqCst);
                return self.parked_ready(start);
            }
            sys::futex_wait(seq, snapshot, PARK_SLICE);
            waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn parked_ready(&self, start: Instant) -> WaitOutcome {
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        WaitOutcome::ParkedReady(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_roundtrips_boot_and_frames_between_endpoints() {
        if !sys::SUPPORTED {
            return;
        }
        let world = ShmWorld::create(3, 4096, 128).unwrap();
        world.write_boot(b"hello-boot");
        assert_eq!(world.boot(), b"hello-boot");
        assert!(world.alive());

        // Re-open through the fd as a second attachment (same process).
        let peer = ShmWorld::open(world.fd(), world.len()).unwrap();
        assert_eq!(peer.participants(), 3);
        assert_eq!(peer.boot(), b"hello-boot");

        let a = world.endpoint(0);
        let mut b = peer.endpoint(1);
        a.send(1, 7, b"payload", Duration::from_secs(5));
        assert_eq!(b.wait(4, 8, Duration::from_secs(5)), WaitOutcome::Ready);
        let (src, tag, bytes) = b.try_recv().unwrap();
        assert_eq!((src, tag, bytes), (0, 7, &b"payload"[..]));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn parked_endpoint_wakes_on_send_and_observes_death() {
        if !sys::SUPPORTED {
            return;
        }
        let world = ShmWorld::create(2, 4096, 0).unwrap();
        std::thread::scope(|scope| {
            let w = &world;
            let waker = scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                w.endpoint(0).send(1, 1, b"wake", Duration::from_secs(5));
            });
            let mut ep = world.endpoint(1);
            match ep.wait(16, 32, Duration::from_secs(10)) {
                WaitOutcome::Ready | WaitOutcome::ParkedReady(_) => {}
                other => panic!("expected wake, got {other:?}"),
            }
            assert!(ep.try_recv().is_some());
            waker.join().unwrap();
        });

        world.mark_dead();
        let ep = world.endpoint(0);
        assert_eq!(ep.wait(0, 0, Duration::from_secs(10)), WaitOutcome::Dead);
    }
}
