//! Lock-free single-producer/single-consumer byte ring over shared memory.
//!
//! Layout in memory (`RING_HDR` + capacity bytes, capacity a power of two):
//!
//! ```text
//! offset 0    head  (AtomicU64, consumer-owned, free-running byte counter)
//! offset 64   tail  (AtomicU64, producer-owned, free-running byte counter)
//! offset 128  data[capacity]
//! ```
//!
//! Head and tail live on separate cache lines so the producer and consumer
//! never false-share. Both counters run freely (they are only reduced modulo
//! the capacity when indexing), which makes the full/empty distinction
//! unambiguous: `tail - head` is the number of unread bytes.
//!
//! Frames are `[u32 len][len payload bytes]`, written with plain (non-atomic)
//! copies. Publication order makes torn reads impossible: the producer writes
//! the frame bytes first and only then release-stores the advanced `tail`; the
//! consumer acquire-loads `tail` before touching data. Symmetrically the
//! consumer release-stores `head` after copying a frame out, and the producer
//! acquire-loads `head` before reusing that region.

use std::ptr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes reserved for the ring header (head + tail on separate cache lines).
pub const RING_HDR: usize = 128;

/// Byte cost of one frame carrying `payload` bytes.
pub const FRAME_OVERHEAD: usize = 4;

/// SPSC byte ring attached to caller-provided memory.
///
/// The struct itself holds only pointers; clones of the underlying memory view
/// (e.g. in another process) observe the same ring. Safety contract: at most
/// one thread/process pushes and at most one pops at any time.
pub struct SpscRing {
    head: *const AtomicU64,
    tail: *const AtomicU64,
    data: *mut u8,
    cap: usize,
}

// SPSC discipline is the caller's responsibility (one producer, one consumer);
// the ring's own memory operations are atomics + owned-region copies.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    /// Total bytes of backing memory needed for a ring of `cap` data bytes.
    pub fn footprint(cap: usize) -> usize {
        RING_HDR + cap
    }

    /// Attach to (already initialised or zeroed) ring memory.
    ///
    /// # Safety
    /// `mem` must point to at least `footprint(cap)` bytes, 8-byte aligned,
    /// valid for the lifetime of the returned ring; `cap` must be a power of
    /// two ≥ 64 and match the value used by every other attachment.
    pub unsafe fn attach(mem: *mut u8, cap: usize) -> Self {
        assert!(
            cap.is_power_of_two() && cap >= 64,
            "ring capacity {cap} invalid"
        );
        debug_assert_eq!(mem as usize % 8, 0, "ring memory must be 8-byte aligned");
        SpscRing {
            head: mem as *const AtomicU64,
            tail: mem.add(64) as *const AtomicU64,
            data: mem.add(RING_HDR),
            cap,
        }
    }

    /// Zero the header and attach. Call once per ring before any traffic.
    ///
    /// # Safety
    /// Same contract as [`SpscRing::attach`], plus exclusive access during
    /// initialisation.
    pub unsafe fn init(mem: *mut u8, cap: usize) -> Self {
        ptr::write_bytes(mem, 0, RING_HDR);
        Self::attach(mem, cap)
    }

    fn head(&self) -> &AtomicU64 {
        unsafe { &*self.head }
    }

    fn tail(&self) -> &AtomicU64 {
        unsafe { &*self.tail }
    }

    /// Data capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Producer side: append one frame whose payload is the concatenation of
    /// `parts` (gather-style, so callers never build a contiguous copy).
    ///
    /// Returns `false` if the ring lacks space; the caller retries after the
    /// consumer drains. Panics if the frame could never fit — that is a
    /// programming error which would otherwise livelock.
    pub fn try_push(&self, parts: &[&[u8]]) -> bool {
        let len: usize = parts.iter().map(|p| p.len()).sum();
        let total = FRAME_OVERHEAD + len;
        assert!(
            total <= self.cap,
            "frame of {len} payload bytes can never fit in ring of {} bytes",
            self.cap
        );
        let head = self.head().load(Ordering::Acquire);
        let tail = self.tail().load(Ordering::Relaxed);
        if self.cap - ((tail - head) as usize) < total {
            return false;
        }
        let mut at = tail as usize;
        self.copy_in(at, &(len as u32).to_le_bytes());
        at += FRAME_OVERHEAD;
        for part in parts {
            self.copy_in(at, part);
            at += part.len();
        }
        self.tail().store(tail + total as u64, Ordering::Release);
        true
    }

    /// Consumer side: pop one frame's payload into `out` (cleared first).
    ///
    /// Returns `false` when the ring is empty.
    pub fn try_pop(&self, out: &mut Vec<u8>) -> bool {
        let tail = self.tail().load(Ordering::Acquire);
        let head = self.head().load(Ordering::Relaxed);
        if tail == head {
            return false;
        }
        let mut len_bytes = [0u8; FRAME_OVERHEAD];
        self.copy_out(head as usize, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        debug_assert!((tail - head) as usize >= FRAME_OVERHEAD + len);
        out.clear();
        out.resize(len, 0);
        self.copy_out(head as usize + FRAME_OVERHEAD, out);
        self.head()
            .store(head + (FRAME_OVERHEAD + len) as u64, Ordering::Release);
        true
    }

    /// Consumer side: is at least one frame waiting?
    pub fn has_frame(&self) -> bool {
        self.tail().load(Ordering::Acquire) != self.head().load(Ordering::Relaxed)
    }

    fn copy_in(&self, at: usize, src: &[u8]) {
        let at = at & (self.cap - 1);
        let first = src.len().min(self.cap - at);
        unsafe {
            ptr::copy_nonoverlapping(src.as_ptr(), self.data.add(at), first);
            ptr::copy_nonoverlapping(src.as_ptr().add(first), self.data, src.len() - first);
        }
    }

    fn copy_out(&self, at: usize, dst: &mut [u8]) {
        let at = at & (self.cap - 1);
        let first = dst.len().min(self.cap - at);
        unsafe {
            ptr::copy_nonoverlapping(self.data.add(at), dst.as_mut_ptr(), first);
            ptr::copy_nonoverlapping(self.data, dst.as_mut_ptr().add(first), dst.len() - first);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-byte-aligned scratch memory for an in-process ring.
    fn ring_mem(cap: usize) -> Vec<u64> {
        vec![0u64; SpscRing::footprint(cap) / 8]
    }

    fn frame(seq: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (seq as u8).wrapping_mul(31).wrapping_add(i as u8))
            .collect()
    }

    #[test]
    fn roundtrips_frames_across_the_wrap_boundary() {
        let mut mem = ring_mem(64);
        let ring = unsafe { SpscRing::init(mem.as_mut_ptr() as *mut u8, 64) };
        let mut out = Vec::new();
        // Frames of co-prime-ish sizes force the write cursor across the
        // wrap point many times.
        for seq in 0..1000u64 {
            let len = (seq % 23) as usize;
            let payload = frame(seq, len);
            assert!(
                ring.try_push(&[&payload]),
                "push {seq} should fit in empty ring"
            );
            assert!(ring.try_pop(&mut out));
            assert_eq!(out, payload, "frame {seq} corrupted across wrap");
        }
        assert!(!ring.try_pop(&mut out));
    }

    #[test]
    fn gathers_multi_part_payloads() {
        let mut mem = ring_mem(256);
        let ring = unsafe { SpscRing::init(mem.as_mut_ptr() as *mut u8, 256) };
        let (a, b, c) = ([1u8, 2], [3u8, 4, 5], [6u8]);
        assert!(ring.try_push(&[&a, &b, &c, &[]]));
        let mut out = Vec::new();
        assert!(ring.try_pop(&mut out));
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn reports_full_and_empty_at_exact_boundaries() {
        let cap = 64;
        let mut mem = ring_mem(cap);
        let ring = unsafe { SpscRing::init(mem.as_mut_ptr() as *mut u8, cap) };
        let mut out = Vec::new();
        assert!(!ring.try_pop(&mut out), "fresh ring must be empty");

        // One frame that exactly fills the ring: payload = cap - overhead.
        let exact = frame(7, cap - FRAME_OVERHEAD);
        assert!(ring.try_push(&[&exact]));
        assert!(
            !ring.try_push(&[&[]]),
            "even an empty frame must not fit when full"
        );
        assert!(ring.try_pop(&mut out));
        assert_eq!(out, exact);
        assert!(!ring.try_pop(&mut out));

        // Fill with empty frames: each costs FRAME_OVERHEAD bytes.
        let mut pushed = 0;
        while ring.try_push(&[&[]]) {
            pushed += 1;
        }
        assert_eq!(pushed, cap / FRAME_OVERHEAD);
        for _ in 0..pushed {
            assert!(ring.try_pop(&mut out));
            assert!(out.is_empty());
        }
        assert!(!ring.try_pop(&mut out));
    }

    #[test]
    fn hammering_producer_consumer_sees_no_torn_frames() {
        let cap = 256; // tiny on purpose: maximises wrap + backpressure churn
        let mut mem = ring_mem(cap);
        let ring = unsafe { SpscRing::init(mem.as_mut_ptr() as *mut u8, cap) };
        let frames: u64 = 100_000;

        std::thread::scope(|scope| {
            let ring = &ring;
            scope.spawn(move || {
                for seq in 0..frames {
                    let len = (seq % 40) as usize;
                    let payload = frame(seq, len);
                    let seq_bytes = seq.to_le_bytes();
                    // yield, not spin: on a single-core host a pure spin loop
                    // starves the other side for a whole scheduler quantum
                    while !ring.try_push(&[&seq_bytes, &payload]) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut out = Vec::new();
            for seq in 0..frames {
                while !ring.try_pop(&mut out) {
                    std::thread::yield_now();
                }
                let got_seq = u64::from_le_bytes(out[..8].try_into().unwrap());
                assert_eq!(got_seq, seq, "frames must arrive in FIFO order");
                let expect = frame(seq, (seq % 40) as usize);
                assert_eq!(&out[8..], &expect[..], "torn frame at seq {seq}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn oversized_frame_panics_instead_of_livelocking() {
        let mut mem = ring_mem(64);
        let ring = unsafe { SpscRing::init(mem.as_mut_ptr() as *mut u8, 64) };
        let huge = vec![0u8; 61];
        ring.try_push(&[&huge]);
    }
}
