//! Thin raw-syscall layer: anonymous shared memory, futex, parent-death signal.
//!
//! Everything here is declared by hand so the crate stays dependency-free.
//! On platforms other than Linux/{x86_64,aarch64} the mapping constructors
//! fail with `Unsupported` and the futex helpers degrade to short sleeps, so
//! the rest of the workspace still compiles (the process backend simply
//! reports that it cannot run).

use std::io;
use std::sync::atomic::AtomicU32;
use std::time::Duration;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;
    use std::ffi::{c_int, c_long, c_uint, c_void};

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn ftruncate(fd: c_int, len: i64) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn getppid() -> c_int;
        fn syscall(num: c_long, ...) -> c_long;
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        use std::ffi::c_long;
        pub const FUTEX: c_long = 202;
        pub const PRCTL: c_long = 157;
        pub const MEMFD_CREATE: c_long = 319;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        use std::ffi::c_long;
        pub const FUTEX: c_long = 98;
        pub const PRCTL: c_long = 167;
        pub const MEMFD_CREATE: c_long = 279;
    }

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    // No FUTEX_PRIVATE_FLAG: the word is shared between processes.
    const FUTEX_WAIT: c_long = 0;
    const FUTEX_WAKE: c_long = 1;
    const PR_SET_PDEATHSIG: c_long = 1;
    const SIGKILL: c_long = 9;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub fn shm_create(len: usize) -> io::Result<i32> {
        // memfd_create WITHOUT MFD_CLOEXEC so the fd survives exec into the
        // rank children.
        let name: &[u8] = b"edgeswitch-shm\0";
        let fd = unsafe { syscall(nr::MEMFD_CREATE, name.as_ptr(), 0 as c_uint) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as c_int;
        if unsafe { ftruncate(fd, len as i64) } != 0 {
            let err = io::Error::last_os_error();
            unsafe { close(fd) };
            return Err(err);
        }
        Ok(fd)
    }

    pub fn shm_map(fd: i32, len: usize) -> io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *mut u8)
    }

    pub fn shm_unmap(ptr: *mut u8, len: usize) {
        unsafe { munmap(ptr as *mut c_void, len) };
    }

    pub fn close_fd(fd: i32) {
        unsafe { close(fd) };
    }

    pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
        let ts = Timespec {
            tv_sec: timeout.as_secs() as i64,
            tv_nsec: i64::from(timeout.subsec_nanos()),
        };
        // EAGAIN / EINTR / ETIMEDOUT are all fine: the caller re-checks state.
        unsafe {
            syscall(
                nr::FUTEX,
                word as *const AtomicU32,
                FUTEX_WAIT,
                expected as c_long,
                &ts as *const Timespec,
            );
        }
    }

    pub fn futex_wake_all(word: &AtomicU32) {
        unsafe {
            syscall(
                nr::FUTEX,
                word as *const AtomicU32,
                FUTEX_WAKE,
                c_long::from(i32::MAX),
            );
        }
    }

    pub fn die_with_parent() {
        // prctl is variadic in libc, so route it through syscall(2) instead of
        // declaring a mismatched non-variadic prototype.
        unsafe {
            syscall(
                nr::PRCTL,
                PR_SET_PDEATHSIG,
                SIGKILL,
                0 as c_long,
                0 as c_long,
                0 as c_long,
            );
        }
    }

    pub fn parent_pid() -> u32 {
        (unsafe { getppid() }) as u32
    }

    pub const SUPPORTED: bool = true;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "edgeswitch-shm requires Linux on x86_64 or aarch64",
        )
    }

    pub fn shm_create(_len: usize) -> io::Result<i32> {
        Err(unsupported())
    }

    pub fn shm_map(_fd: i32, _len: usize) -> io::Result<*mut u8> {
        Err(unsupported())
    }

    pub fn shm_unmap(_ptr: *mut u8, _len: usize) {}

    pub fn close_fd(_fd: i32) {}

    pub fn futex_wait(_word: &AtomicU32, _expected: u32, timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
    }

    pub fn futex_wake_all(_word: &AtomicU32) {}

    pub fn die_with_parent() {}

    pub fn parent_pid() -> u32 {
        0
    }

    pub const SUPPORTED: bool = false;
}

pub(crate) use imp::{close_fd, futex_wait, futex_wake_all, shm_create, shm_map, shm_unmap};

/// `true` when this build can create and attach shared-memory worlds
/// (Linux on x86_64/aarch64).
pub const SUPPORTED: bool = imp::SUPPORTED;

/// Arrange for the calling process to receive `SIGKILL` when its parent dies.
///
/// Call from `pre_exec` (or early in the child) so rank processes can never
/// outlive the launcher. No-op on unsupported platforms.
pub fn die_with_parent() {
    imp::die_with_parent()
}

/// The parent process id of the calling process (0 on unsupported platforms).
pub fn parent_pid() -> u32 {
    imp::parent_pid()
}
