//! Seeded, per-rank-decorrelated PRNG streams.
//!
//! Every experiment in the repository is reproducible from a single
//! `u64` seed. Distributed components derive one independent stream per
//! rank by mixing `(seed, rank)` through SplitMix64, the standard
//! stream-splitting construction.

use rand_pcg::Pcg64;

/// The PRNG used everywhere: PCG-64, seeded deterministically.
pub type Rng64 = Pcg64;

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root stream for single-process algorithms.
pub fn root_rng(seed: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(seed))
}

/// An independent stream for rank `rank` of a world seeded with `seed`.
pub fn rank_rng(seed: u64, rank: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(
        splitmix64(seed) ^ splitmix64(rank.wrapping_add(0xA5A5)),
    ))
}

/// A named substream (e.g. one per step, per purpose) of a rank stream.
pub fn substream_rng(seed: u64, rank: u64, stream: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(
        splitmix64(seed) ^ splitmix64(rank) ^ splitmix64(stream.wrapping_add(0x1234_5678)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = root_rng(7).gen();
        let b: u64 = root_rng(7).gen();
        let c: u64 = root_rng(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rank_streams_differ() {
        let draws: Vec<u64> = (0..16).map(|r| rank_rng(1, r).gen()).collect();
        let unique: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(unique.len(), draws.len(), "rank streams collided");
    }

    #[test]
    fn substreams_differ_from_rank_stream() {
        let base: u64 = rank_rng(1, 3).gen();
        let sub: u64 = substream_rng(1, 3, 0).gen();
        assert_ne!(base, sub);
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // Spot-check injectivity on a contiguous range.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
