//! Seeded, per-rank-decorrelated PRNG streams.
//!
//! Every experiment in the repository is reproducible from a single
//! `u64` seed. Distributed components derive one independent stream per
//! rank by mixing `(seed, rank)` through SplitMix64, the standard
//! stream-splitting construction.

use rand::RngCore;
use rand_pcg::Pcg64;

/// The PRNG used everywhere: PCG-64, seeded deterministically.
pub type Rng64 = Pcg64;

/// Words drawn from the core generator per [`BlockRng64`] refill.
pub const RNG_BLOCK_WORDS: usize = 32;

/// Block-buffered view of a [`Rng64`] stream: refills a fixed buffer of
/// raw `u64` words in one tight pass over the core generator and serves
/// every downstream draw from it.
///
/// The hot switching loop draws randomness a few words at a time (edge
/// index, partner pick, straight/cross coin); batching the underlying
/// PCG steps keeps the generator state in registers across a whole
/// refill instead of re-touching it per draw. Crucially the buffering is
/// *stream-transparent*: words are served strictly in generation order
/// and leftovers are never discarded, so any consumer sees exactly the
/// `u64` sequence the bare [`Rng64`] would have produced. `next_u32`
/// truncates a full word just like `rand_pcg`'s `Pcg64` does, which is
/// what keeps seeded runs bit-identical to the unbuffered stream.
///
/// Every draw routes through [`RngCore::next_u64`], so the generator
/// also knows its exact *stream position*: [`BlockRng64::words_served`]
/// counts the words handed out so far, and
/// [`BlockRng64::skip_words`] fast-forwards a freshly derived stream to
/// any recorded position. Together they make an engine checkpoint as
/// small as one `u64` — re-derive the stream from `(seed, rank)` and
/// skip — which is what the resumable drivers and the job service
/// serialize instead of generator internals.
#[derive(Clone, Debug)]
pub struct BlockRng64 {
    core: Rng64,
    buf: [u64; RNG_BLOCK_WORDS],
    /// Next unserved slot; `buf[pos..len]` are pending words.
    pos: usize,
    len: usize,
    /// Total words handed to consumers since construction.
    served: u64,
}

impl BlockRng64 {
    /// Buffer `core`, serving its exact word stream.
    pub fn new(core: Rng64) -> Self {
        BlockRng64 {
            core,
            buf: [0; RNG_BLOCK_WORDS],
            pos: 0,
            len: 0,
            served: 0,
        }
    }

    #[inline(never)]
    fn refill(&mut self) {
        for slot in &mut self.buf {
            *slot = self.core.next_u64();
        }
        self.pos = 0;
        self.len = RNG_BLOCK_WORDS;
    }

    /// Number of `u64` words served since construction — the stream
    /// position a checkpoint records.
    #[inline]
    pub fn words_served(&self) -> u64 {
        self.served
    }

    /// Fast-forward by drawing and discarding `n` words. Restoring a
    /// checkpoint re-derives the stream from its seed and skips to the
    /// recorded [`BlockRng64::words_served`]; every subsequent draw is
    /// then bit-identical to the uninterrupted stream.
    pub fn skip_words(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u64();
        }
    }
}

impl RngCore for BlockRng64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // Same truncation as rand_pcg's Pcg64: a full word, low half.
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == self.len {
            self.refill();
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        self.served += 1;
        v
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root stream for single-process algorithms.
pub fn root_rng(seed: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(seed))
}

/// An independent stream for rank `rank` of a world seeded with `seed`.
pub fn rank_rng(seed: u64, rank: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(
        splitmix64(seed) ^ splitmix64(rank.wrapping_add(0xA5A5)),
    ))
}

/// Rank `rank`'s stream as a block-buffered generator (the hot-loop form
/// used by the protocol state machines); bit-identical to [`rank_rng`].
pub fn rank_block_rng(seed: u64, rank: u64) -> BlockRng64 {
    BlockRng64::new(rank_rng(seed, rank))
}

/// A named substream (e.g. one per step, per purpose) of a rank stream.
pub fn substream_rng(seed: u64, rank: u64, stream: u64) -> Rng64 {
    use rand::SeedableRng;
    Pcg64::seed_from_u64(splitmix64(
        splitmix64(seed) ^ splitmix64(rank) ^ splitmix64(stream.wrapping_add(0x1234_5678)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = root_rng(7).gen();
        let b: u64 = root_rng(7).gen();
        let c: u64 = root_rng(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rank_streams_differ() {
        let draws: Vec<u64> = (0..16).map(|r| rank_rng(1, r).gen()).collect();
        let unique: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(unique.len(), draws.len(), "rank streams collided");
    }

    #[test]
    fn substreams_differ_from_rank_stream() {
        let base: u64 = rank_rng(1, 3).gen();
        let sub: u64 = substream_rng(1, 3, 0).gen();
        assert_ne!(base, sub);
    }

    #[test]
    fn block_rng_serves_the_exact_core_word_stream() {
        let mut bare = rank_rng(17, 3);
        let mut block = rank_block_rng(17, 3);
        // Cross several refill boundaries with a mixed draw pattern.
        for i in 0..(3 * RNG_BLOCK_WORDS) {
            if i % 3 == 0 {
                assert_eq!(bare.next_u32(), block.next_u32(), "u32 draw {i}");
            } else {
                assert_eq!(bare.next_u64(), block.next_u64(), "u64 draw {i}");
            }
        }
        // Typed draws ride the same words.
        let a: f64 = bare.gen_range(0.0..1.0);
        let b: f64 = block.gen_range(0.0..1.0);
        assert_eq!(a, b);
        assert_eq!(bare.gen::<u64>(), block.gen::<u64>());
    }

    #[test]
    fn block_rng_fill_bytes_matches_core() {
        let mut bare = rank_rng(5, 0);
        let mut block = rank_block_rng(5, 0);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        bare.fill_bytes(&mut a);
        block.fill_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn words_served_counts_every_draw_shape() {
        let mut block = rank_block_rng(9, 1);
        assert_eq!(block.words_served(), 0);
        block.next_u64();
        assert_eq!(block.words_served(), 1);
        block.next_u32(); // full word, truncated
        assert_eq!(block.words_served(), 2);
        let mut buf = [0u8; 17]; // 3 words (chunks of 8)
        block.fill_bytes(&mut buf);
        assert_eq!(block.words_served(), 5);
        // Counting is refill-transparent.
        for _ in 0..(2 * RNG_BLOCK_WORDS) {
            block.next_u64();
        }
        assert_eq!(block.words_served(), 5 + 2 * RNG_BLOCK_WORDS as u64);
    }

    #[test]
    fn skip_words_rejoins_the_stream_bit_exactly() {
        let mut full = rank_block_rng(23, 2);
        let n = RNG_BLOCK_WORDS as u64 + 7; // cross a refill boundary
        for _ in 0..n {
            full.next_u64();
        }
        let mut resumed = rank_block_rng(23, 2);
        resumed.skip_words(n);
        assert_eq!(resumed.words_served(), full.words_served());
        for i in 0..100 {
            assert_eq!(full.next_u64(), resumed.next_u64(), "post-skip draw {i}");
        }
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // Spot-check injectivity on a contiguous range.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
