//! # edgeswitch-dist
//!
//! Random-variate substrate for the edge-switching reproduction:
//!
//! - [`binomial`]: the BINV inverse-transform sampler (Algorithm 3) with
//!   the paper's underflow-avoiding split (Equations 14–15),
//! - [`multinomial`]: the sequential conditional-distribution method
//!   (Algorithm 4),
//! - [`parallel`]: the paper's parallel multinomial algorithm
//!   (Algorithm 5) over the `mpilite` runtime,
//! - [`harmonic`]: harmonic numbers and the visit-rate → switch-count
//!   conversion (Equation 4),
//! - [`rng`]: seeded, per-rank-decorrelated PCG-64 streams.

#![warn(missing_docs)]

pub mod binomial;
pub mod harmonic;
pub mod multinomial;
pub mod parallel;
pub mod rng;

#[cfg(test)]
mod gof_tests;

pub use binomial::binomial;
pub use harmonic::{expected_touches, harmonic, switch_ops_for_visit_rate};
pub use multinomial::multinomial;
pub use parallel::{
    local_quota_row, multinomial_owned_world, multinomial_partitioned, parallel_multinomial,
    parallel_multinomial_owned, trial_share,
};
pub use rng::{rank_block_rng, rank_rng, root_rng, substream_rng, BlockRng64, Rng64};
