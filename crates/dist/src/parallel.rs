//! Parallel multinomial generation (Algorithm 5, Section 6.2).
//!
//! The conditional chain of Algorithm 4 is inherently sequential in the
//! *outcomes*; the paper instead parallelizes over the *trials*, using
//! the additive property (Equations 12–13): split `N = Σ N_i`, let each
//! rank draw a full multinomial of its `N_i` trials, and reduce the
//! per-outcome counts. Runs in `O(N/p + ℓ log p)`.

use crate::multinomial::multinomial;
use mpilite::{CollCarrier, Comm};
use rand::Rng;

/// Rank `rank`'s share of `n` trials: `⌊n/p⌋ + 1` for the first `n mod p`
/// ranks (Algorithm 5, lines 2–3).
pub fn trial_share(n: u64, p: usize, rank: usize) -> u64 {
    assert!(rank < p);
    let base = n / p as u64;
    if (rank as u64) < n % p as u64 {
        base + 1
    } else {
        base
    }
}

/// Single-process embodiment of the additive property: draw `parts`
/// independent multinomials over trial shares and sum them. Distributed
/// Algorithm 5 computes exactly this, so tests validate the distributed
/// version against this function's distribution.
pub fn multinomial_partitioned<R: Rng + ?Sized>(
    n: u64,
    q: &[f64],
    parts: usize,
    rng: &mut R,
) -> Vec<u64> {
    assert!(parts >= 1);
    let mut total = vec![0u64; q.len()];
    for part in 0..parts {
        let ni = trial_share(n, parts, part);
        let x = multinomial(ni, q, rng);
        for (t, xi) in total.iter_mut().zip(x) {
            *t += xi;
        }
    }
    debug_assert_eq!(total.iter().sum::<u64>(), n);
    total
}

/// Distributed Algorithm 5: every rank draws `M(N_i, q)` and the counts
/// are summed; every rank returns the complete aggregated vector
/// (the "gather everywhere" storage variant discussed after Alg. 5).
pub fn parallel_multinomial<M, R>(comm: &mut Comm<M>, n: u64, q: &[f64], rng: &mut R) -> Vec<u64>
where
    M: CollCarrier,
    R: Rng + ?Sized,
{
    let p = comm.size();
    let ni = trial_share(n, p, comm.rank());
    let local = multinomial(ni, q, rng);
    let rows = comm.allgather_vec_u64(local);
    let mut total = vec![0u64; q.len()];
    for row in rows {
        assert_eq!(row.len(), q.len(), "rank contributed a malformed row");
        for (t, xi) in total.iter_mut().zip(row) {
            *t += xi;
        }
    }
    total
}

/// One rank's contribution to a distributed Algorithm-5 draw: the row
/// `X_{rank,·} = M(N_rank, q)` of per-outcome counts over this rank's
/// trial share. Both the real all-to-all exchange
/// ([`parallel_multinomial_owned`]) and the simulated-world column sum
/// ([`multinomial_owned_world`]) are reductions of these rows, so every
/// driver consumes the per-rank RNG streams identically.
pub fn local_quota_row<R: Rng + ?Sized>(
    n: u64,
    p: usize,
    rank: usize,
    q: &[f64],
    rng: &mut R,
) -> Vec<u64> {
    assert_eq!(q.len(), p, "owned layout requires ℓ = p");
    multinomial(trial_share(n, p, rank), q, rng)
}

/// Distributed Algorithm 5 in the paper's primary storage layout for
/// `ℓ = p`: after the exchange, rank `i` holds only `X_i` (line 5's
/// send of `X_{j,i}` to processor `P_j` is a personalized all-to-all).
pub fn parallel_multinomial_owned<M, R>(comm: &mut Comm<M>, n: u64, q: &[f64], rng: &mut R) -> u64
where
    M: CollCarrier,
    R: Rng + ?Sized,
{
    let p = comm.size();
    let local = local_quota_row(n, p, comm.rank(), q, rng);
    let mine = comm.alltoall_u64(&local);
    mine.into_iter().sum()
}

/// Algorithm 5 in the owned layout, computed centrally for simulated
/// worlds that hold all `p` rank RNGs in one process: draws every rank's
/// row and returns the column sums `X_i = Σ_j X_{j,i}`. Equivalent to
/// running [`parallel_multinomial_owned`] on every rank of a real world
/// (same rows, same per-rank RNG consumption).
pub fn multinomial_owned_world<'a, R: Rng + 'a>(
    n: u64,
    q: &[f64],
    rngs: impl Iterator<Item = &'a mut R>,
) -> Vec<u64> {
    let p = q.len();
    let mut quotas = vec![0u64; p];
    let mut ranks = 0usize;
    for (rank, rng) in rngs.enumerate() {
        ranks += 1;
        for (quota, xi) in quotas.iter_mut().zip(local_quota_row(n, p, rank, q, rng)) {
            *quota += xi;
        }
    }
    assert_eq!(ranks, p, "need exactly one RNG per outcome/rank");
    debug_assert_eq!(quotas.iter().sum::<u64>(), n);
    quotas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{rank_rng, root_rng};
    use mpilite::{run_world_default, CollPayload};

    #[test]
    fn trial_share_partitions_n() {
        for &(n, p) in &[(10u64, 3usize), (0, 4), (7, 7), (100, 8), (5, 9)] {
            let total: u64 = (0..p).map(|r| trial_share(n, p, r)).sum();
            assert_eq!(total, n, "n={n}, p={p}");
            let shares: Vec<u64> = (0..p).map(|r| trial_share(n, p, r)).collect();
            let max = *shares.iter().max().unwrap();
            let min = *shares.iter().min().unwrap();
            assert!(
                max - min <= 1,
                "shares must differ by at most 1: {shares:?}"
            );
        }
    }

    #[test]
    fn partitioned_sums_to_n() {
        let mut rng = root_rng(1);
        let q = [0.25, 0.25, 0.5];
        for parts in [1, 2, 5, 16] {
            let x = multinomial_partitioned(10_000, &q, parts, &mut rng);
            assert_eq!(x.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn partitioned_means_match_direct() {
        // Equation 13: partitioned sampling has the same distribution as a
        // direct draw — check the means agree.
        let q = [0.1, 0.6, 0.3];
        let n = 5000u64;
        let reps = 1500;
        let mut rng = root_rng(2);
        let mut direct = [0u64; 3];
        let mut parted = [0u64; 3];
        for _ in 0..reps {
            for (s, v) in direct.iter_mut().zip(multinomial(n, &q, &mut rng)) {
                *s += v;
            }
            for (s, v) in parted
                .iter_mut()
                .zip(multinomial_partitioned(n, &q, 8, &mut rng))
            {
                *s += v;
            }
        }
        for i in 0..3 {
            let a = direct[i] as f64 / reps as f64;
            let b = parted[i] as f64 / reps as f64;
            let sd = (n as f64 * q[i] * (1.0 - q[i])).sqrt();
            let tol = 6.0 * sd / (reps as f64).sqrt();
            assert!((a - b).abs() < tol, "outcome {i}: {a} vs {b} ± {tol}");
        }
    }

    #[test]
    fn distributed_matches_sum_and_is_consistent() {
        let q = vec![0.2, 0.3, 0.5];
        let n = 99_999u64;
        let out = run_world_default::<CollPayload, Vec<u64>, _>(4, |comm| {
            let mut rng = rank_rng(7, comm.rank() as u64);
            parallel_multinomial(comm, n, &q, &mut rng)
        });
        // Every rank sees the same aggregate, summing to n.
        for row in &out {
            assert_eq!(row, &out[0]);
            assert_eq!(row.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn distributed_owned_layout_sums_to_n() {
        let p = 5;
        let q = vec![1.0 / p as f64; p];
        let n = 12_345u64;
        let out = run_world_default::<CollPayload, u64, _>(p, |comm| {
            let mut rng = rank_rng(11, comm.rank() as u64);
            parallel_multinomial_owned(comm, n, &q, &mut rng)
        });
        assert_eq!(out.iter().sum::<u64>(), n);
        // Uniform probabilities: every share near n/p.
        for &xi in &out {
            let expect = n as f64 / p as f64;
            assert!(
                (xi as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "share {xi} vs {expect}"
            );
        }
    }

    #[test]
    fn world_draw_matches_distributed_owned_draw() {
        // The centralized column-sum form must reproduce the real
        // alltoall exchange exactly when fed the same per-rank streams.
        let p = 5;
        let q = vec![0.1, 0.2, 0.3, 0.25, 0.15];
        let n = 12_345u64;
        let distributed = {
            let q = q.clone();
            run_world_default::<CollPayload, u64, _>(p, move |comm| {
                let mut rng = rank_rng(11, comm.rank() as u64);
                parallel_multinomial_owned(comm, n, &q, &mut rng)
            })
        };
        let mut rngs: Vec<_> = (0..p).map(|r| rank_rng(11, r as u64)).collect();
        let world = multinomial_owned_world(n, &q, rngs.iter_mut());
        assert_eq!(world, distributed);
        assert_eq!(world.iter().sum::<u64>(), n);
    }

    #[test]
    fn distributed_single_rank_degenerates_to_sequential() {
        let q = vec![0.4, 0.6];
        let out = run_world_default::<CollPayload, Vec<u64>, _>(1, |comm| {
            let mut rng = rank_rng(3, 0);
            parallel_multinomial(comm, 1000, &q, &mut rng)
        });
        assert_eq!(out[0].iter().sum::<u64>(), 1000);
    }
}
