//! Goodness-of-fit tests: chi-square against exact probability masses,
//! a stronger check than the moment tests in the sampler modules.

use crate::binomial::binomial;
use crate::multinomial::multinomial;
use crate::rng::root_rng;

/// Exact binomial pmf via iterative multiplication (small n only).
fn binomial_pmf(n: u64, q: f64) -> Vec<f64> {
    let mut pmf = vec![0.0f64; n as usize + 1];
    // p(0) = (1-q)^n, p(k+1) = p(k) * (n-k)/(k+1) * q/(1-q).
    let mut p = (1.0 - q).powi(n as i32);
    let ratio = q / (1.0 - q);
    for k in 0..=n {
        pmf[k as usize] = p;
        if k < n {
            p *= (n - k) as f64 / (k + 1) as f64 * ratio;
        }
    }
    pmf
}

/// Chi-square statistic of observed counts vs expected probabilities,
/// pooling cells with expectation < 5 into their neighbors.
fn chi_square(observed: &[u64], probs: &[f64], total: u64) -> (f64, usize) {
    let mut stat = 0.0;
    let mut dof = 0usize;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    for (o, p) in observed.iter().zip(probs) {
        pooled_obs += *o as f64;
        pooled_exp += p * total as f64;
        if pooled_exp >= 5.0 {
            let d = pooled_obs - pooled_exp;
            stat += d * d / pooled_exp;
            dof += 1;
            pooled_obs = 0.0;
            pooled_exp = 0.0;
        }
    }
    if pooled_exp > 0.0 {
        let d = pooled_obs - pooled_exp;
        stat += d * d / pooled_exp.max(1e-9);
        dof += 1;
    }
    (stat, dof.saturating_sub(1))
}

/// Loose chi-square acceptance: `stat < dof + 5·sqrt(2·dof) + 10`
/// (~5+ sigma; flaky-free for CI while still catching real sampler bugs).
fn chi_square_ok(stat: f64, dof: usize) -> bool {
    stat < dof as f64 + 5.0 * (2.0 * dof as f64).sqrt() + 10.0
}

#[test]
fn binomial_matches_exact_pmf() {
    let (n, q) = (24u64, 0.3);
    let reps = 60_000u64;
    let mut rng = root_rng(1);
    let mut counts = vec![0u64; n as usize + 1];
    for _ in 0..reps {
        counts[binomial(n, q, &mut rng) as usize] += 1;
    }
    let pmf = binomial_pmf(n, q);
    let (stat, dof) = chi_square(&counts, &pmf, reps);
    assert!(
        chi_square_ok(stat, dof),
        "binomial chi-square {stat:.1} at {dof} dof"
    );
}

#[test]
fn binomial_symmetry_path_matches_pmf() {
    // q > 0.5 goes through the n - B(n, 1-q) reflection.
    let (n, q) = (24u64, 0.7);
    let reps = 60_000u64;
    let mut rng = root_rng(2);
    let mut counts = vec![0u64; n as usize + 1];
    for _ in 0..reps {
        counts[binomial(n, q, &mut rng) as usize] += 1;
    }
    let pmf = binomial_pmf(n, q);
    let (stat, dof) = chi_square(&counts, &pmf, reps);
    assert!(
        chi_square_ok(stat, dof),
        "reflected binomial chi-square {stat:.1} at {dof} dof"
    );
}

#[test]
fn binomial_split_path_matches_pmf() {
    // Force the additive split by exceeding the underflow chunk: with
    // q = 0.3, chunks are ~1800 trials; n = 6000 uses several.
    let (n, q) = (6_000u64, 0.3);
    let reps = 30_000u64;
    let mut rng = root_rng(3);
    // Bin into 40 cells around the mean to keep the pmf evaluation sane:
    // use a normal-approximation interval mean ± 6 sd.
    let mean = n as f64 * q;
    let sd = (n as f64 * q * (1.0 - q)).sqrt();
    let lo = (mean - 6.0 * sd) as u64;
    let hi = (mean + 6.0 * sd) as u64;
    let cells = 40usize;
    let width = ((hi - lo) as usize).div_ceil(cells) as u64;
    let mut counts = vec![0u64; cells + 1];
    for _ in 0..reps {
        let x = binomial(n, q, &mut rng).clamp(lo, hi);
        counts[((x - lo) / width) as usize] += 1;
    }
    // Expected cell masses from the exact pmf (iterated in log space to
    // avoid underflow at n = 6000).
    let mut probs = vec![0.0f64; cells + 1];
    let mut logp = n as f64 * (1.0 - q).ln();
    let logratio = (q / (1.0 - q)).ln();
    for k in 0..=n {
        if k >= lo && k <= hi {
            probs[((k - lo) / width) as usize] += logp.exp();
        }
        if k < n {
            logp += ((n - k) as f64 / (k + 1) as f64).ln() + logratio;
        }
    }
    let (stat, dof) = chi_square(&counts, &probs, reps);
    assert!(
        chi_square_ok(stat, dof),
        "split binomial chi-square {stat:.1} at {dof} dof"
    );
}

#[test]
fn multinomial_marginals_match_binomial_pmf() {
    // Each X_i of M(n, q) is marginally B(n, q_i).
    let n = 20u64;
    let q = [0.2, 0.5, 0.3];
    let reps = 40_000u64;
    let mut rng = root_rng(4);
    let mut counts = vec![vec![0u64; n as usize + 1]; q.len()];
    for _ in 0..reps {
        let x = multinomial(n, &q, &mut rng);
        for (i, xi) in x.into_iter().enumerate() {
            counts[i][xi as usize] += 1;
        }
    }
    for (i, &qi) in q.iter().enumerate() {
        let pmf = binomial_pmf(n, qi);
        let (stat, dof) = chi_square(&counts[i], &pmf, reps);
        assert!(
            chi_square_ok(stat, dof),
            "marginal {i} chi-square {stat:.1} at {dof} dof"
        );
    }
}
