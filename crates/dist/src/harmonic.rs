//! Harmonic numbers and the visit-rate → switch-count conversion
//! (Section 3.1, Equation 4).
//!
//! The expected number of edges that must be *switched* (touched) to
//! leave only `m(1−x)` original edges is the coupon-collector partial
//! sum `E[T] = m (H_m − H_{m(1−x)})`; each switch operation touches two
//! edges, so `t = E[T]/2` operations are performed.

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Threshold below which harmonic numbers are summed exactly.
const EXACT_LIMIT: u64 = 1_000_000;

/// The `m`-th harmonic number `H_m = Σ_{i=1..m} 1/i`.
///
/// Exact summation up to 10⁶; the asymptotic expansion
/// `ln m + γ + 1/(2m) − 1/(12m²)` beyond (absolute error < 1e-14 there).
pub fn harmonic(m: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    if m <= EXACT_LIMIT {
        // Sum small-to-large magnitude for accuracy.
        (1..=m).rev().map(|i| 1.0 / i as f64).sum()
    } else {
        let mf = m as f64;
        mf.ln() + EULER_GAMMA + 1.0 / (2.0 * mf) - 1.0 / (12.0 * mf * mf)
    }
}

/// Expected number of edge *touches* `E[T] = m (H_m − H_{m(1−x)})`
/// required for visit rate `x` on a graph of `m` edges (Equation 4).
///
/// # Panics
/// Panics unless `0 ≤ x ≤ 1`.
pub fn expected_touches(m: u64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "visit rate {x} out of [0,1]");
    if m == 0 || x == 0.0 {
        return 0.0;
    }
    let remaining = ((m as f64) * (1.0 - x)).round() as u64;
    m as f64 * (harmonic(m) - harmonic(remaining))
}

/// The number of switch *operations* `t = E[T]/2` for visit rate `x`
/// (each operation touches two edges), rounded to the nearest integer.
pub fn switch_ops_for_visit_rate(m: u64, x: f64) -> u64 {
    (expected_touches(m, x) / 2.0).round() as u64
}

/// The paper's large-`m` approximations: `E[T] ≈ −m ln(1−x)` for `x < 1`
/// and `E[T] ≈ m ln m` at `x = 1`.
pub fn expected_touches_approx(m: u64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x));
    let mf = m as f64;
    if x >= 1.0 {
        mf * mf.ln()
    } else {
        -mf * (1.0 - x).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_harmonics_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-14);
    }

    #[test]
    fn asymptotic_matches_exact_at_boundary() {
        // Compare exact sum with expansion just above the cutoff.
        let m = EXACT_LIMIT;
        let exact = harmonic(m);
        let mf = m as f64;
        let asym = mf.ln() + EULER_GAMMA + 1.0 / (2.0 * mf) - 1.0 / (12.0 * mf * mf);
        assert!(
            (exact - asym).abs() < 1e-10,
            "exact {exact} vs asymptotic {asym}"
        );
    }

    #[test]
    fn expected_touches_zero_cases() {
        assert_eq!(expected_touches(0, 0.5), 0.0);
        assert_eq!(expected_touches(100, 0.0), 0.0);
    }

    #[test]
    fn expected_touches_full_visit_is_m_hm() {
        let m = 1000u64;
        let t = expected_touches(m, 1.0);
        assert!((t - m as f64 * harmonic(m)).abs() < 1e-9);
    }

    #[test]
    fn expected_touches_matches_log_approximation() {
        let m = 500_000u64;
        for &x in &[0.1, 0.3, 0.5, 0.9] {
            let exact = expected_touches(m, x);
            let approx = expected_touches_approx(m, x);
            assert!(
                (exact - approx).abs() / exact < 0.01,
                "x={x}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn touches_monotone_in_x() {
        let m = 10_000u64;
        let mut prev = 0.0;
        for i in 1..=10 {
            let x = i as f64 / 10.0;
            let t = expected_touches(m, x);
            assert!(t > prev, "E[T] must grow with x");
            prev = t;
        }
    }

    #[test]
    fn switch_ops_is_half_touches() {
        let m = 52_700u64; // scaled Miami
        let x = 1.0;
        let t = switch_ops_for_visit_rate(m, x);
        let expect = expected_touches(m, x) / 2.0;
        assert!((t as f64 - expect).abs() <= 0.5);
        // Paper sanity check at full scale: m = 52.7M, x = 1 gives
        // t ≈ 468.5M (Section 3.1) — computed there with the E[T] ≈ m ln m
        // approximation (which drops the Euler–Mascheroni term; the exact
        // harmonic sum gives ~484M).
        let full = expected_touches_approx(52_700_000, 1.0) / 2.0;
        assert!(
            (full / 1e6 - 468.5).abs() < 5.0,
            "expected ≈468.5M ops, got {:.1}M",
            full / 1e6
        );
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_visit_rate() {
        expected_touches(10, 1.5);
    }
}
