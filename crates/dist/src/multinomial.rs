//! Multinomial sampling: the conditional-distribution method
//! (Algorithm 4) built on BINV.
//!
//! `⟨X_0,…,X_{ℓ−1}⟩ ~ M(N, q_0,…,q_{ℓ−1})` is generated as a chain of
//! conditionals `X_i ~ B(N − ΣX_j, q_i / (1 − Σq_j))`, `O(N)` total work.

use crate::binomial::binomial;
use rand::Rng;

/// Validate a probability vector: finite, non-negative, sums to 1 within
/// tolerance. Returns the (possibly not exactly 1.0) sum.
pub fn validate_probabilities(q: &[f64]) -> f64 {
    assert!(!q.is_empty(), "probability vector is empty");
    let mut sum = 0.0;
    for (i, &qi) in q.iter().enumerate() {
        assert!(
            qi.is_finite() && qi >= 0.0,
            "q[{i}] = {qi} is not a probability"
        );
        sum += qi;
    }
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities sum to {sum}, expected 1"
    );
    sum
}

/// Sample `⟨X_0,…,X_{ℓ−1}⟩ ~ M(n, q)` (Algorithm 4).
///
/// # Panics
/// Panics if `q` is empty, contains non-probabilities, or does not sum
/// to 1 (within 1e-6; the vector is renormalized internally).
pub fn multinomial<R: Rng + ?Sized>(n: u64, q: &[f64], rng: &mut R) -> Vec<u64> {
    let total = validate_probabilities(q);
    let l = q.len();
    let mut x = vec![0u64; l];
    let mut drawn = 0u64; // X_s in the paper
    let mut mass_used = 0.0f64; // Q_s in the paper
    for i in 0..l {
        if drawn == n {
            break;
        }
        let remaining_mass = total - mass_used;
        if remaining_mass <= 0.0 {
            break;
        }
        if i == l - 1 {
            // All residual trials land in the final outcome; avoids
            // conditional probability rounding to 1±ε.
            x[i] = n - drawn;
            break;
        }
        let cond = (q[i] / remaining_mass).clamp(0.0, 1.0);
        let xi = binomial(n - drawn, cond, rng);
        x[i] = xi;
        drawn += xi;
        mass_used += q[i];
    }
    debug_assert_eq!(x.iter().sum::<u64>(), n);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::root_rng;

    #[test]
    fn sums_to_n() {
        let mut rng = root_rng(1);
        for &n in &[0u64, 1, 7, 100, 12_345] {
            let x = multinomial(n, &[0.2, 0.3, 0.5], &mut rng);
            assert_eq!(x.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn zero_probability_outcomes_get_nothing() {
        let mut rng = root_rng(2);
        for _ in 0..200 {
            let x = multinomial(1000, &[0.5, 0.0, 0.5], &mut rng);
            assert_eq!(x[1], 0);
        }
    }

    #[test]
    fn degenerate_single_outcome() {
        let mut rng = root_rng(3);
        assert_eq!(multinomial(42, &[1.0], &mut rng), vec![42]);
    }

    #[test]
    fn point_mass_on_last_outcome() {
        let mut rng = root_rng(4);
        assert_eq!(multinomial(9, &[0.0, 0.0, 1.0], &mut rng), vec![0, 0, 9]);
    }

    #[test]
    fn means_match_n_q() {
        let mut rng = root_rng(5);
        let q = [0.1, 0.25, 0.15, 0.5];
        let n = 2000u64;
        let reps = 4000;
        let mut sums = vec![0u64; q.len()];
        for _ in 0..reps {
            let x = multinomial(n, &q, &mut rng);
            for (s, xi) in sums.iter_mut().zip(x) {
                *s += xi;
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let mean = s as f64 / reps as f64;
            let expect = n as f64 * q[i];
            let sd = (n as f64 * q[i] * (1.0 - q[i])).sqrt();
            let tol = 5.0 * sd / (reps as f64).sqrt() + 1e-9;
            assert!(
                (mean - expect).abs() < tol,
                "outcome {i}: mean {mean} vs {expect} ± {tol}"
            );
        }
    }

    #[test]
    fn covariance_is_negative() {
        // Multinomial components compete: Cov(X_i, X_j) = −n q_i q_j.
        let mut rng = root_rng(6);
        let q = [0.5, 0.5];
        let n = 100u64;
        let reps = 20_000;
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        let mut sum01 = 0.0;
        for _ in 0..reps {
            let x = multinomial(n, &q, &mut rng);
            sum0 += x[0] as f64;
            sum1 += x[1] as f64;
            sum01 += x[0] as f64 * x[1] as f64;
        }
        let cov = sum01 / reps as f64 - (sum0 / reps as f64) * (sum1 / reps as f64);
        let expect = -(n as f64) * q[0] * q[1]; // −25
        assert!(
            (cov - expect).abs() < 3.0,
            "covariance {cov} vs expected {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_unnormalized() {
        let mut rng = root_rng(7);
        multinomial(10, &[0.5, 0.6], &mut rng);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_negative() {
        let mut rng = root_rng(8);
        multinomial(10, &[1.5, -0.5], &mut rng);
    }

    #[test]
    fn many_outcomes_uniform() {
        let mut rng = root_rng(9);
        let l = 64;
        let q = vec![1.0 / l as f64; l];
        let x = multinomial(64_000, &q, &mut rng);
        assert_eq!(x.iter().sum::<u64>(), 64_000);
        for &xi in &x {
            assert!((600..=1400).contains(&xi), "outcome count {xi} implausible");
        }
    }
}
