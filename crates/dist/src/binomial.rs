//! Binomial sampling: the inverse-transform method (BINV, Algorithm 3)
//! with the paper's underflow-avoiding split (Equations 14–15).
//!
//! BINV computes `(1−q)^N` as its starting mass; for the paper's trial
//! counts (billions and beyond) that underflows any float type. The fix
//! (Section 6.2) exploits additivity of the binomial: split `N` into
//! chunks `N_i ≤ −log z / (2q)` so each chunk's starting mass stays above
//! the smallest representable positive value `z`, sample each chunk, and
//! sum.

use rand::Rng;

/// Smallest starting probability mass we allow before splitting. Chosen
/// well above `f64::MIN_POSITIVE` so intermediate products stay normal.
const UNDERFLOW_FLOOR: f64 = 1e-280;

/// One raw BINV draw (Algorithm 3). Caller guarantees `0 < q < 1` and
/// `(1−q)^n` does not underflow.
fn binv_raw<R: Rng + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    debug_assert!(q > 0.0 && q < 1.0);
    let u: f64 = rng.gen();
    let ratio = q / (1.0 - q);
    let mut big_q = (1.0 - q).powf(n as f64);
    debug_assert!(big_q > 0.0, "binv_raw called in underflow regime");
    let mut s = big_q;
    let mut i = 0u64;
    while s < u && i < n {
        i += 1;
        big_q *= (n - i + 1) as f64 / i as f64 * ratio;
        s += big_q;
        // Floating-point dust can leave s infinitesimally below u even
        // after all mass is accumulated; the i < n guard terminates us at
        // the distribution's support boundary.
    }
    i
}

/// Largest chunk size for which `(1−q)^chunk ≥ UNDERFLOW_FLOOR`
/// (Equation 15).
fn max_chunk(q: f64) -> u64 {
    let ln_floor = UNDERFLOW_FLOOR.ln(); // ≈ −644.6
    let ln1q = (1.0 - q).ln(); // < 0
    let chunk = (ln_floor / ln1q).floor();
    (chunk as u64).max(1)
}

/// Sample `X ~ B(n, q)`.
///
/// Uses BINV with two standard refinements:
/// - the symmetry `B(n, q) = n − B(n, 1−q)` keeps the expected loop count
///   at `n·min(q, 1−q)`,
/// - the additive split of Equations 14–15 prevents `(1−q)^n` underflow
///   for huge `n`.
///
/// # Panics
/// Panics unless `0 ≤ q ≤ 1` and `q` is finite.
pub fn binomial<R: Rng + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    assert!(
        q.is_finite() && (0.0..=1.0).contains(&q),
        "q = {q} out of [0,1]"
    );
    if n == 0 || q == 0.0 {
        return 0;
    }
    if q == 1.0 {
        return n;
    }
    if q > 0.5 {
        return n - binomial(n, 1.0 - q, rng);
    }
    let chunk = max_chunk(q);
    if n <= chunk {
        return binv_raw(n, q, rng);
    }
    let mut remaining = n;
    let mut total = 0u64;
    while remaining > 0 {
        let ni = remaining.min(chunk);
        total += binv_raw(ni, q, rng);
        remaining -= ni;
    }
    total
}

/// Sample `k` binomials that sum exactly to a `B(n, q)` draw — the
/// additive property (Equation 12) exposed directly, used by tests and by
/// the parallel algorithm's per-rank decomposition.
pub fn binomial_split<R: Rng + ?Sized>(parts: &[u64], q: f64, rng: &mut R) -> Vec<u64> {
    parts.iter().map(|&ni| binomial(ni, q, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::root_rng;

    /// Mean/variance check against binomial moments.
    fn check_moments(n: u64, q: f64, reps: usize, seed: u64) {
        let mut rng = root_rng(seed);
        let draws: Vec<u64> = (0..reps).map(|_| binomial(n, q, &mut rng)).collect();
        let mean: f64 = draws.iter().map(|&x| x as f64).sum::<f64>() / reps as f64;
        let expect_mean = n as f64 * q;
        let expect_var = n as f64 * q * (1.0 - q);
        let tol = 5.0 * (expect_var / reps as f64).sqrt() + 1e-9;
        assert!(
            (mean - expect_mean).abs() < tol,
            "B({n},{q}): mean {mean} vs {expect_mean} (tol {tol})"
        );
        let var: f64 = draws
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (var - expect_var).abs() < 0.15 * expect_var + 1.0,
            "B({n},{q}): var {var} vs {expect_var}"
        );
    }

    #[test]
    fn boundary_parameters() {
        let mut rng = root_rng(1);
        assert_eq!(binomial(0, 0.3, &mut rng), 0);
        assert_eq!(binomial(10, 0.0, &mut rng), 0);
        assert_eq!(binomial(10, 1.0, &mut rng), 10);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_q() {
        let mut rng = root_rng(2);
        binomial(5, 1.5, &mut rng);
    }

    #[test]
    fn draws_within_support() {
        let mut rng = root_rng(3);
        for _ in 0..1000 {
            let x = binomial(20, 0.4, &mut rng);
            assert!(x <= 20);
        }
    }

    #[test]
    fn moments_small_n() {
        check_moments(40, 0.3, 20_000, 4);
    }

    #[test]
    fn moments_large_q_uses_symmetry() {
        check_moments(40, 0.85, 20_000, 5);
    }

    #[test]
    fn moments_large_n_split_path() {
        // q small enough that max_chunk forces several chunks.
        let q = 0.4;
        let n = 10_000_000u64; // chunk ≈ 1261 at q=0.4 → many chunks
        assert!(max_chunk(q) < n);
        check_moments(n, q, 200, 6);
    }

    #[test]
    fn huge_n_does_not_underflow_or_hang() {
        let mut rng = root_rng(7);
        // Expected value 5e4 so the loop work stays bounded.
        let n = 100_000_000_000u64;
        let q = 5e-7;
        let x = binomial(n, q, &mut rng);
        let mean = n as f64 * q; // 5e4
        let sd = (n as f64 * q * (1.0 - q)).sqrt();
        assert!(
            (x as f64 - mean).abs() < 8.0 * sd,
            "x = {x}, expected ≈ {mean}"
        );
    }

    #[test]
    fn max_chunk_respects_floor() {
        for &q in &[1e-9, 1e-4, 0.01, 0.3, 0.5] {
            let c = max_chunk(q);
            assert!(c >= 1);
            // (1-q)^c must not underflow.
            let mass = (1.0 - q).powf(c as f64);
            assert!(mass >= UNDERFLOW_FLOOR / 2.0, "q={q}: mass {mass}");
        }
    }

    #[test]
    fn split_parts_sum_to_binomial_moments() {
        let mut rng = root_rng(8);
        let parts = vec![1000u64; 10];
        let reps = 3000;
        let mut sums = Vec::with_capacity(reps);
        for _ in 0..reps {
            let draws = binomial_split(&parts, 0.2, &mut rng);
            sums.push(draws.iter().sum::<u64>());
        }
        let mean: f64 = sums.iter().map(|&x| x as f64).sum::<f64>() / reps as f64;
        assert!((mean - 2000.0).abs() < 30.0, "split mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut rng = root_rng(9);
            (0..50).map(|_| binomial(100, 0.25, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = root_rng(9);
            (0..50).map(|_| binomial(100, 0.25, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
