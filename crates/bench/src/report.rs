//! Result reporting: aligned text tables for stdout plus JSON archival.

use serde_json::Value;
use std::fs;
use std::path::Path;

/// A printable, archivable experiment result.
pub struct Report {
    /// Experiment id, e.g. `"fig4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Structured result series.
    pub data: Value,
    /// Rendered text table(s).
    pub rendered: String,
}

impl Report {
    /// Print to stdout.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        println!("{}", self.rendered);
    }

    /// Write `<out>/<id>.json` (structured) and `<out>/<id>.txt`
    /// (rendered).
    pub fn save(&self, out: &Path) -> std::io::Result<()> {
        fs::create_dir_all(out)?;
        fs::write(
            out.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(&self.data)?,
        )?;
        fs::write(
            out.join(format!("{}.txt", self.id)),
            format!("{} — {}\n\n{}", self.id, self.title, self.rendered),
        )
    }
}

/// Render an aligned table: `header` row then `rows`, columns padded to
/// the widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], width: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &width));
    out.push('\n');
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &width));
        out.push('\n');
    }
    out
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{:.*}", d, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["p", "speedup"],
            &[
                vec!["16".into(), "3.1".into()],
                vec!["1024".into(), "110.2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("speedup"));
        assert!(lines[2].trim_start().starts_with("16"));
        assert!(lines[3].trim_start().starts_with("1024"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
