//! Result reporting: aligned text tables for stdout plus JSON archival.

use serde_json::{json, Value};
use std::fs;
use std::path::Path;

/// A printable, archivable experiment result.
pub struct Report {
    /// Experiment id, e.g. `"fig4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Structured result series.
    pub data: Value,
    /// Rendered text table(s).
    pub rendered: String,
}

impl Report {
    /// Print to stdout.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        println!("{}", self.rendered);
    }

    /// Write `<out>/<id>.json` (structured) and `<out>/<id>.txt`
    /// (rendered).
    pub fn save(&self, out: &Path) -> std::io::Result<()> {
        fs::create_dir_all(out)?;
        fs::write(
            out.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(&self.data)?,
        )?;
        fs::write(
            out.join(format!("{}.txt", self.id)),
            format!("{} — {}\n\n{}", self.id, self.title, self.rendered),
        )
    }
}

/// Render an aligned table: `header` row then `rows`, columns padded to
/// the widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], width: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &width));
    out.push('\n');
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &width));
        out.push('\n');
    }
    out
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{:.*}", d, x)
}

/// Peak resident set size (high-water mark) of the **current process**,
/// in KiB, read from `VmHWM` in `/proc/self/status`. `None` where that
/// file does not exist (non-Linux).
///
/// VmHWM is monotone over the process lifetime, so a case measured in a
/// long-lived process reports the maximum over everything run so far —
/// experiments that need per-case peaks (`repro genscale`) run each case
/// in a fresh child process.
pub fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

/// Build provenance stamped into every `BENCH_*.json` archive: the
/// compiler that produced the numbers and the `[profile.release]` flags
/// it was built under, so archived trajectories stay interpretable
/// across toolchain bumps and profile changes.
pub fn provenance() -> Value {
    let rustc = std::process::Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    json!({
        "rustc": rustc,
        "profile_release": release_profile(),
    })
}

/// The `[profile.release]` key/value lines of the workspace manifest,
/// captured at compile time (comments stripped).
fn release_profile() -> Vec<String> {
    let manifest = include_str!("../../../Cargo.toml");
    let mut flags = Vec::new();
    let mut in_section = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == "[profile.release]";
            continue;
        }
        if in_section && !line.is_empty() && !line.starts_with('#') {
            flags.push(line.to_string());
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["p", "speedup"],
            &[
                vec!["16".into(), "3.1".into()],
                vec!["1024".into(), "110.2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("speedup"));
        assert!(lines[2].trim_start().starts_with("16"));
        assert!(lines[3].trim_start().starts_with("1024"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn peak_rss_reads_vm_hwm_on_linux() {
        match peak_rss_kb() {
            Some(kb) => assert!(kb > 0, "a running process has nonzero peak RSS"),
            None if cfg!(target_os = "linux") => panic!("VmHWM must be readable on Linux"),
            None => {}
        }
    }

    #[test]
    fn provenance_reports_compiler_and_profile() {
        let p = provenance();
        assert!(!p["rustc"].as_str().unwrap().is_empty());
        let flags = p["profile_release"].as_array().unwrap();
        assert!(
            flags.iter().any(|l| l.as_str().unwrap().starts_with("lto")),
            "release profile flags not captured: {flags:?}"
        );
    }
}
