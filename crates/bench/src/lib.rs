//! # edgeswitch-bench
//!
//! Reproduction harness: one experiment per table/figure of the paper
//! (see DESIGN.md §4 for the index), shared by the `repro` binary and
//! the integration tests. Criterion microbenchmarks live in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

use edgeswitch_dist::rng::root_rng;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::Graph;

/// Generate the scaled stand-in for a paper dataset with a seed derived
/// from the dataset name (so every experiment sees the same instance).
pub fn dataset_graph(ds: Dataset, scale: f64, seed: u64) -> Graph {
    let mut h: u64 = seed;
    for b in ds.name().bytes() {
        h = h.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }
    let mut rng = root_rng(h);
    ds.generate(scale, &mut rng)
}

/// The processor grid used in scaling figures. The paper plots 64–1024;
/// the virtual cluster covers the same range.
pub fn scaling_processor_grid() -> Vec<usize> {
    vec![16, 64, 256, 640, 1024]
}

/// Number of switch operations for visit rate `x = 1` on a graph of `m`
/// edges (the setting of all scaling figures).
pub fn full_visit_ops(m: usize) -> u64 {
    edgeswitch_dist::switch_ops_for_visit_rate(m as u64, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-backend re-entry hook, not a test: when this crate's test
    /// binary benches `Backend::Process` (the hotpath smoke test), each
    /// rank child is this same binary re-spawned with argv selecting
    /// exactly this `#[ignore]`d name — `child_entry_from_env` then runs
    /// the rank loop and exits. Without the shm environment it is a
    /// no-op that trivially passes.
    #[test]
    #[ignore = "process-backend child entry point, not a test"]
    fn shm_child_entry() {
        edgeswitch_core::parallel::child_entry_from_env();
    }

    /// Per-case genscale re-entry hook, not a test: the genscale
    /// experiment measures each case's `VmHWM` in a fresh child, and
    /// when that child is this crate's test binary its argv selects
    /// exactly this `#[ignore]`d name — `genscale_child_from_env` then
    /// runs the case, writes the result, and exits. Without the genscale
    /// environment it is a no-op that trivially passes.
    #[test]
    #[ignore = "genscale per-case child entry point, not a test"]
    fn genscale_child_entry() {
        experiments::genscale::genscale_child_from_env();
    }

    #[test]
    fn dataset_graph_is_deterministic() {
        let a = dataset_graph(Dataset::Miami, 0.1, 1);
        let b = dataset_graph(Dataset::Miami, 0.1, 1);
        assert!(a.same_edge_set(&b));
    }

    #[test]
    fn datasets_differ() {
        let a = dataset_graph(Dataset::Miami, 0.1, 1);
        let b = dataset_graph(Dataset::Flickr, 0.1, 1);
        assert!(a.num_vertices() != b.num_vertices() || !a.same_edge_set(&b));
    }

    #[test]
    fn full_visit_ops_scales_superlinearly() {
        assert!(full_visit_ops(100_000) > 2 * full_visit_ops(50_000));
    }
}
