//! Generation-at-scale: the streaming generate→partition→randomize
//! pipeline measured at 10⁶–10⁸ edges, with per-case peak RSS.
//!
//! Not a paper figure. The streaming pipeline (DESIGN.md §4j) claims two
//! things the ordinary benches cannot show: (1) a rank's store can be
//! built from an O(1) generator spec at O(m/p + chunk) peak residency,
//! where the materialized path pays the full graph plus every rank's
//! store at once; (2) the seed-boot process launch randomizes a graph no
//! participant ever held in full. This experiment measures both, per
//! target edge count:
//!
//! * `boot-materialized` — the pre-streaming boot path: collect the full
//!   raw edge list, build the [`Graph`], split it with `build_stores`.
//! * `boot-streamed` — one rank's share built directly from the spec via
//!   [`build_rank_store_streamed`]; never holds a global edge list.
//! * `degseq-streamed` — the same rank-local build for the prescribed
//!   power-law degree-sequence constructor.
//! * `proc-switch` — end-to-end seed-boot randomization: the process
//!   backend at p = 2, booted from the spec, running `t` switches.
//! * `curveball` — global trades over the streamed-built graph (one full
//!   pass), for trades/sec at scale.
//!
//! **Per-case isolation**: `VmHWM` is monotone over a process lifetime,
//! so every case runs in a freshly spawned child of the current binary
//! (the same respawn discipline as the process backend) and reports its
//! own high-water mark. Results are archived as `BENCH_genscale.json`;
//! `repro genscale --quick --gate-mem` gates the streamed/materialized
//! peak-RSS ratio at m = 10⁶ in CI.

use super::ExpConfig;
use crate::report::{f, peak_rss_kb, provenance, table, Report};
use edgeswitch_core::config::ParallelConfig;
use edgeswitch_core::parallel::{process_backend_supported, try_parallel_edge_switch_proc_gen};
use edgeswitch_core::trade::{sequential_curveball, TradeBudget};
use edgeswitch_graph::generators::{PaStream, StreamSpec};
use edgeswitch_graph::store::{build_rank_store_streamed, build_stores};
use edgeswitch_graph::{Graph, IterStream, Partitioner};
use serde_json::{json, Value};
use std::time::Instant;

/// Ranks for the partition/boot cases: the smallest world where "one
/// rank's share" differs from "the whole graph".
const BOOT_P: usize = 2;

/// Edges per arriving vertex for the PA spec at every scale.
const PA_D: usize = 10;

/// Switch budget per end-to-end case, as a fraction of `m`.
const SWITCH_FRACTION: u64 = 10;

/// The full sweep (`repro genscale` at scale 1): 10⁶ and 10⁷ edges.
const FULL_GRID: [u64; 2] = [1_000_000, 10_000_000];

/// Quick sweep (`--quick`): the CI memory gate compares the two
/// construction paths at exactly this m.
const QUICK_M: u64 = 1_000_000;

/// The stretch case: `boot-streamed` at 10⁸ raw edges, run only when
/// `MemAvailable` leaves this much headroom (the streamed rank store is
/// ~m/2 edges of pool + position map; 32 GiB is comfortable slack).
const HUGE_M: u64 = 100_000_000;
const HUGE_MIN_AVAILABLE_KB: u64 = 32 * 1024 * 1024;

/// `--gate-mem` ceiling: streamed construction peak RSS as a fraction of
/// the materialized path at equal m.
const GATE_MEM_RATIO: f64 = 0.6;

/// Environment channel to the per-case child: the case as JSON, and the
/// path the child writes its result JSON to.
const ENV_CASE: &str = "EDGESWITCH_GENSCALE_CASE";
const ENV_OUT: &str = "EDGESWITCH_GENSCALE_OUT";

/// The recomputation-PA spec targeting `m` raw edges: `n` chosen so the
/// stream emits `m + PA_D` raw edges (dedup trims a few).
fn pa_spec(m: u64, seed: u64) -> StreamSpec {
    StreamSpec::Pa {
        n: (m / PA_D as u64) as usize + PA_D + 1,
        d: PA_D,
        seed,
    }
}

/// The prescribed power-law spec sized so the realized edge count lands
/// near `m` (mean sampled degree ≈ 3.3 at γ = 2.5, d ∈ [2, 1000]).
fn degseq_spec(m: u64, seed: u64) -> StreamSpec {
    StreamSpec::PowerLawSeq {
        n: ((3 * m / 5) as usize).max(64),
        gamma: 2.5,
        d_min: 2,
        d_max: 1000,
        seed,
    }
}

/// `MemAvailable` from `/proc/meminfo`, in KiB (`None` off-Linux).
fn mem_available_kb() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Run one case **in the current process** and return its result row.
/// The experiment driver never calls this directly for measurement — it
/// spawns a child per case so `VmHWM` is per-case — but the child lands
/// here, and tests may call it for schema checks.
pub fn run_case(case: &Value) -> Value {
    let mode = case["mode"].as_str().expect("case has a mode");
    let m = case["m"].as_u64().expect("case has a target m");
    let seed = case["seed"].as_u64().unwrap_or(1);
    let t = case["t"].as_u64().unwrap_or(m / SWITCH_FRACTION);
    let mut row = match mode {
        "boot-materialized" => boot_materialized(m, seed),
        "boot-streamed" => boot_streamed(pa_spec(m, seed), "boot-streamed"),
        "degseq-streamed" => boot_streamed(degseq_spec(m, seed), "degseq-streamed"),
        "proc-switch" => proc_switch(m, seed, t),
        "curveball" => curveball(m, seed),
        other => panic!("unknown genscale mode {other}"),
    };
    row["m_target"] = json!(m);
    row["seed"] = json!(seed);
    // Read VmHWM last: it is a high-water mark, so sampling after the
    // workload (even after frees) captures the case's peak.
    row["vm_hwm_kb"] = json!(peak_rss_kb());
    row
}

/// The pre-streaming pipeline: materialize the global raw edge list,
/// build the full graph, split it into every rank's store at once.
fn boot_materialized(m: u64, seed: u64) -> Value {
    let spec = pa_spec(m, seed);
    let n = spec.num_vertices();
    let start = Instant::now();
    let mut edges = Vec::new();
    let mut stream = spec.stream().expect("PA spec is always realizable");
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk) {
        edges.extend_from_slice(&chunk);
    }
    let raw = edges.len() as u64;
    // Replay the materialized list through the dedup-on-insert path
    // (the raw stream may repeat an edge; `from_edges` would reject it).
    let mut replay = IterStream::new(edges.iter().copied());
    let graph = Graph::from_stream(n, &mut replay).expect("PA stream stays in range");
    drop(edges);
    let part = Partitioner::hash_division(BOOT_P);
    let stores = build_stores(&graph, &part);
    let secs = start.elapsed().as_secs_f64();
    let split: u64 = stores.iter().map(|s| s.num_edges() as u64).sum();
    std::hint::black_box(&stores);
    json!({
        "mode": "boot-materialized",
        "n": n,
        "m": graph.num_edges(),
        "raw_edges": raw,
        "p": BOOT_P,
        "split_edges": split,
        "elapsed_sec": secs,
        "gen_edges_per_sec": raw as f64 / secs,
    })
}

/// The streamed boot path, exactly as a seed-booted rank child runs it:
/// replay the spec's stream, keep rank 0's share, never hold the rest.
fn boot_streamed(spec: StreamSpec, mode: &str) -> Value {
    let n = spec.num_vertices();
    let start = Instant::now();
    let mut stream = spec.stream().expect("spec is realizable");
    let raw = stream.size_hint().0 as u64;
    let part = Partitioner::hash_division(BOOT_P);
    let store = build_rank_store_streamed(&mut *stream, &part, 0);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(&store);
    json!({
        "mode": mode,
        "n": n,
        "m": store.num_edges(),
        "raw_edges": raw,
        "p": BOOT_P,
        "rank": 0,
        "elapsed_sec": secs,
        "gen_edges_per_sec": raw as f64 / secs,
    })
}

/// End-to-end seed boot: generate-partition-randomize over the process
/// backend at p = 2, with the launcher (this process) never holding the
/// graph — its VmHWM is the O(1)-boot claim in a number.
fn proc_switch(m: u64, seed: u64, t: u64) -> Value {
    if !process_backend_supported() {
        return json!({
            "mode": "proc-switch",
            "skipped": "process backend unsupported on this platform",
        });
    }
    let spec = pa_spec(m, seed);
    let config = ParallelConfig::new(BOOT_P).with_seed(seed);
    let part = Partitioner::hash_division(BOOT_P);
    let start = Instant::now();
    let out = try_parallel_edge_switch_proc_gen(&spec, t, &config, &part)
        .unwrap_or_else(|err| panic!("seed-boot run failed: {err}"));
    let secs = start.elapsed().as_secs_f64();
    json!({
        "mode": "proc-switch",
        "n": spec.num_vertices(),
        "m": out.graph.num_edges(),
        "raw_edges": PaStream::raw_edges(spec.num_vertices(), PA_D),
        "p": BOOT_P,
        "t": t,
        "performed": out.performed(),
        "elapsed_sec": secs,
        "switches_per_sec": out.performed() as f64 / secs,
    })
}

/// One full Curveball pass over the streamed-built graph: trades/sec at
/// scale for the alternative randomizer.
fn curveball(m: u64, seed: u64) -> Value {
    let spec = pa_spec(m, seed);
    let mut graph = spec.build().expect("PA spec is always realizable");
    let n = graph.num_vertices();
    let pass = (n / 2).max(1) as u64;
    let start = Instant::now();
    let out = sequential_curveball(&mut graph, TradeBudget::Trades(pass), seed);
    let secs = start.elapsed().as_secs_f64();
    json!({
        "mode": "curveball",
        "n": n,
        "m": graph.num_edges(),
        "trades": out.trades,
        "neighbors_moved": out.neighbors_moved,
        "elapsed_sec": secs,
        "trades_per_sec": out.trades as f64 / secs,
    })
}

/// Per-case child re-entry hook: a no-op unless the genscale environment
/// variables are present, in which case it runs the case described by
/// [`ENV_CASE`], writes the result JSON to [`ENV_OUT`], and **exits the
/// process**. Binaries that drive this experiment route children here —
/// the `repro` binary at the top of `main`, the bench test binary
/// through an `#[ignore]`d `genscale_child_entry` hook test (the same
/// discipline as the process backend's `shm_child_entry`).
pub fn genscale_child_from_env() {
    let Ok(case) = std::env::var(ENV_CASE) else {
        return;
    };
    let out_path = std::env::var(ENV_OUT).expect("genscale child needs an output path");
    let case: Value = serde_json::from_str(&case).expect("genscale case JSON parses");
    let result = run_case(&case);
    let body = serde_json::to_string(&result).expect("result serializes");
    std::fs::write(&out_path, body).expect("write genscale case result");
    std::process::exit(0);
}

/// Spawn the current binary on one case and collect its result row, so
/// `VmHWM` is measured per case. The argv routes libtest binaries into
/// the `genscale_child_entry` hook; binaries that call
/// [`genscale_child_from_env`] at the top of `main` never parse argv.
fn run_case_in_child(case: &Value) -> Value {
    let exe = std::env::current_exe().expect("current_exe for genscale child");
    let out_path = std::env::temp_dir().join(format!(
        "genscale-{}-{}-{}.json",
        std::process::id(),
        case["mode"].as_str().unwrap_or("case"),
        case["m"].as_u64().unwrap_or(0),
    ));
    let _ = std::fs::remove_file(&out_path);
    let status = std::process::Command::new(&exe)
        .args(["genscale_child_entry", "--include-ignored", "--nocapture"])
        .env(ENV_CASE, case.to_string())
        .env(ENV_OUT, &out_path)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn genscale case child");
    assert!(
        status.success(),
        "genscale case child failed ({status}): {case}"
    );
    let body = std::fs::read_to_string(&out_path).expect("genscale case result exists");
    let _ = std::fs::remove_file(&out_path);
    serde_json::from_str(&body).expect("genscale case result parses")
}

/// The case modes per grid point, in run order.
const MODES: [&str; 5] = [
    "boot-materialized",
    "boot-streamed",
    "degseq-streamed",
    "proc-switch",
    "curveball",
];

/// `genscale` — the streaming pipeline at scale. `--quick` (scale < 1)
/// runs the m = 10⁶ column only (what the CI memory gate reads); the
/// full run sweeps [`FULL_GRID`] and stretches to `boot-streamed` at
/// 10⁸ when `MemAvailable` permits.
pub fn genscale(cfg: &ExpConfig) -> Report {
    let grid: Vec<u64> = if cfg.scale >= 1.0 {
        FULL_GRID.to_vec()
    } else {
        vec![QUICK_M]
    };
    genscale_with_grid(cfg, &grid, cfg.scale >= 1.0)
}

/// [`genscale`] over an explicit m grid (tests shrink it); `try_huge`
/// additionally attempts the 10⁸ `boot-streamed` stretch case.
pub fn genscale_with_grid(cfg: &ExpConfig, grid: &[u64], try_huge: bool) -> Report {
    let mut cases = Vec::new();
    for &m in grid {
        for mode in MODES {
            let case = json!({
                "mode": mode,
                "m": m,
                "seed": cfg.seed,
                "t": m / SWITCH_FRACTION,
            });
            cases.push(run_case_in_child(&case));
        }
    }
    if try_huge {
        match mem_available_kb() {
            Some(avail) if avail >= HUGE_MIN_AVAILABLE_KB => {
                let case = json!({"mode": "boot-streamed", "m": HUGE_M, "seed": cfg.seed});
                cases.push(run_case_in_child(&case));
            }
            avail => println!(
                "# genscale: skipping m={HUGE_M} stretch case \
                 (MemAvailable {avail:?} kB below {HUGE_MIN_AVAILABLE_KB} kB)"
            ),
        }
    }

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            let rate = ["gen_edges_per_sec", "switches_per_sec", "trades_per_sec"]
                .iter()
                .find_map(|k| c[*k].as_f64());
            let hwm_mib = c["vm_hwm_kb"].as_u64().map(|kb| kb as f64 / 1024.0);
            vec![
                c["m_target"].as_u64().map_or("-".into(), |v| v.to_string()),
                c["mode"].as_str().unwrap_or("?").to_string(),
                c["n"].as_u64().map_or("-".into(), |v| v.to_string()),
                c["m"].as_u64().map_or("-".into(), |v| v.to_string()),
                c["elapsed_sec"].as_f64().map_or("-".into(), |v| f(v, 2)),
                rate.map_or("-".into(), |v| f(v, 0)),
                hwm_mib.map_or("-".into(), |v| f(v, 1)),
                c["skipped"].as_str().unwrap_or("").to_string(),
            ]
        })
        .collect();
    let rendered = table(
        &[
            "m_target", "mode", "n", "m", "secs", "rate/s", "peakMiB", "note",
        ],
        &rows,
    );
    Report {
        id: "genscale".into(),
        title: "streaming generation at scale (per-case peak RSS)".into(),
        data: json!({
            "bench": "genscale",
            "metric": "edges_per_sec",
            "provenance": provenance(),
            "boot_p": BOOT_P,
            "cases": cases,
        }),
        rendered,
    }
}

/// `--gate-mem` over an already-computed genscale report: at the
/// smallest measured m, streamed construction peak RSS must stay at or
/// below [`GATE_MEM_RATIO`] × the materialized path's. Skips (`Ok` with
/// a notice) where `VmHWM` is unavailable (non-Linux). Returns the pass
/// or skip summary in `Ok`, a human-readable error in `Err`.
pub fn mem_gate(data: &Value) -> Result<String, String> {
    let cases = data["cases"]
        .as_array()
        .ok_or("gate: genscale report has no cases")?;
    let hwm = |mode: &str| -> Option<(u64, u64)> {
        cases
            .iter()
            .filter(|c| c["mode"].as_str() == Some(mode))
            .filter_map(|c| Some((c["m_target"].as_u64()?, c["vm_hwm_kb"].as_u64()?)))
            .min()
    };
    let materialized = hwm("boot-materialized");
    let streamed = hwm("boot-streamed");
    let (Some((m_mat, kb_mat)), Some((m_str, kb_str))) = (materialized, streamed) else {
        if cases
            .iter()
            .all(|c| c["vm_hwm_kb"].as_u64().is_none() || c["skipped"].is_string())
        {
            return Ok("skipped: no VmHWM measurements (non-Linux)".into());
        }
        return Err("gate: missing boot-materialized / boot-streamed cases".into());
    };
    if m_mat != m_str {
        return Err(format!(
            "gate: construction cases measured at different m ({m_mat} vs {m_str})"
        ));
    }
    let ratio = kb_str as f64 / kb_mat as f64;
    if ratio > GATE_MEM_RATIO {
        return Err(format!(
            "streamed-construction memory regression at m={m_mat}: peak RSS \
             {kb_str} kB is {ratio:.2}x the materialized path's {kb_mat} kB \
             (ceiling {GATE_MEM_RATIO}x)"
        ));
    }
    Ok(format!(
        "streamed construction at {ratio:.2}x materialized peak RSS \
         ({kb_str} kB vs {kb_mat} kB at m={m_mat})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny m: the point is the child-spawn plumbing and the report
    /// schema, not the at-scale numbers.
    const SMOKE_M: u64 = 30_000;

    #[test]
    fn genscale_smoke_spawns_children_and_reports_schema() {
        let cfg = ExpConfig {
            scale: 0.02,
            reps: 1,
            seed: 9,
            timeline: false,
        };
        let r = genscale_with_grid(&cfg, &[SMOKE_M], false);
        assert_eq!(r.id, "genscale");
        assert_eq!(r.data["bench"].as_str(), Some("genscale"));
        let cases = r.data["cases"].as_array().unwrap();
        assert_eq!(cases.len(), MODES.len());
        for c in cases {
            assert_eq!(c["m_target"].as_u64(), Some(SMOKE_M));
            if c["skipped"].is_string() {
                continue;
            }
            assert!(c["elapsed_sec"].as_f64().unwrap() > 0.0);
            if cfg!(target_os = "linux") {
                assert!(c["vm_hwm_kb"].as_u64().unwrap() > 0);
            }
        }
        // The construction trio reports generation rates; the e2e cases
        // report their engine's native rate.
        let rate_key = |mode: &str| match mode {
            "proc-switch" => "switches_per_sec",
            "curveball" => "trades_per_sec",
            _ => "gen_edges_per_sec",
        };
        for c in cases {
            if c["skipped"].is_string() {
                continue;
            }
            let mode = c["mode"].as_str().unwrap();
            assert!(
                c[rate_key(mode)].as_f64().unwrap() > 0.0,
                "{mode} missing its rate"
            );
        }
        assert!(r.rendered.contains("peakMiB"));
    }

    #[test]
    fn streamed_case_holds_one_share_of_the_materialized_split() {
        // The memory claim in edge counts (robust at any scale, unlike
        // RSS): the streamed store holds rank 0's share only, and the
        // two paths agree on what that share is.
        let mat = run_case(&json!({"mode": "boot-materialized", "m": SMOKE_M, "seed": 5}));
        let s = run_case(&json!({"mode": "boot-streamed", "m": SMOKE_M, "seed": 5}));
        let split = mat["split_edges"].as_u64().unwrap();
        assert_eq!(mat["m"].as_u64().unwrap(), split, "split covers the graph");
        let share = s["m"].as_u64().unwrap();
        assert!(share < split, "rank 0 holds a strict subset");
        assert!(2 * share > split / 2, "hash split is roughly balanced");
        assert_eq!(mat["raw_edges"], s["raw_edges"], "same raw stream");
    }

    #[test]
    fn mem_gate_reads_the_report_schema() {
        let ok = json!({"cases": [
            {"mode": "boot-materialized", "m_target": 1000, "vm_hwm_kb": 100_000},
            {"mode": "boot-streamed", "m_target": 1000, "vm_hwm_kb": 40_000},
        ]});
        assert!(mem_gate(&ok).unwrap().contains("0.40x"));
        let bad = json!({"cases": [
            {"mode": "boot-materialized", "m_target": 1000, "vm_hwm_kb": 100_000},
            {"mode": "boot-streamed", "m_target": 1000, "vm_hwm_kb": 90_000},
        ]});
        assert!(mem_gate(&bad).unwrap_err().contains("memory regression"));
        // No VmHWM anywhere (non-Linux) → skip, not failure.
        let none = json!({"cases": [
            {"mode": "boot-materialized", "m_target": 1000},
            {"mode": "boot-streamed", "m_target": 1000},
        ]});
        assert!(mem_gate(&none).unwrap().contains("skipped"));
        assert!(mem_gate(&json!({})).is_err());
    }

    #[test]
    fn seed_boot_proc_run_matches_the_materialized_launch() {
        // The gen-boot conformance claim: a process world booted from
        // the O(1) spec produces the same randomization as one booted
        // from the materialized edge list (same per-rank pool order,
        // same protocol schedule).
        if !process_backend_supported() {
            return;
        }
        let spec = pa_spec(2_000, 77);
        let config = ParallelConfig::new(2).with_seed(13);
        let part = Partitioner::hash_division(2);
        let t = 500;
        let gen =
            try_parallel_edge_switch_proc_gen(&spec, t, &config, &part).expect("seed-boot run");
        let graph = spec.build().expect("materialize the same spec");
        let mat =
            edgeswitch_core::parallel::try_parallel_edge_switch_proc(&graph, t, &config, &part)
                .expect("materialized run");
        assert_eq!(gen.initial_edges, mat.initial_edges);
        assert!(gen.graph.same_edge_set(&mat.graph), "outcomes diverged");
        assert_eq!(gen.graph.edge_digest(), mat.graph.edge_digest());
        assert_eq!(gen.performed(), mat.performed());
        // Degree sequence is preserved through the seed-boot run.
        assert_eq!(gen.graph.degree_sequence(), graph.degree_sequence());
    }
}
