//! Network-property trajectories under switching (Figures 12–13): the
//! sequential and parallel processes must change the average clustering
//! coefficient and average shortest-path distance the same way.

use super::ExpConfig;
use crate::dataset_graph;
use crate::report::{f, table, Report};
use edgeswitch_core::config::StepSize;
use edgeswitch_core::run::Run;
use edgeswitch_dist::rng::root_rng;
use edgeswitch_dist::switch_ops_for_visit_rate;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::metrics::{average_clustering_sampled, average_shortest_path_sampled};
use edgeswitch_graph::{Graph, SchemeKind};
use serde_json::json;

const GRAPHS: [Dataset; 3] = [Dataset::Miami, Dataset::LiveJournal, Dataset::Flickr];
const P: usize = 256;
const CC_SAMPLES: usize = 2000;
const PATH_SOURCES: usize = 40;

fn trajectory<M>(cfg: &ExpConfig, metric: M, id: &str, title: &str) -> Report
where
    M: Fn(&Graph, u64) -> f64,
{
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for ds in GRAPHS {
        let base = dataset_graph(ds, cfg.scale, cfg.seed);
        let m = base.num_edges() as u64;
        for i in 0..=10u32 {
            let x = i as f64 / 10.0;
            let t = switch_ops_for_visit_rate(m, x);
            // Sequential trajectory point.
            let gs = Run::sequential()
                .switches(t)
                .seed(cfg.seed ^ (i as u64) ^ 0x5E9)
                .execute(&base)
                .into_sequential()
                .expect("sequential run")
                .graph;
            let seq_val = metric(&gs, cfg.seed ^ i as u64);
            // Parallel trajectory point.
            let gp = if t == 0 {
                base.clone()
            } else {
                Run::simulated(P)
                    .switches(t)
                    .scheme(SchemeKind::Consecutive)
                    .step_size(StepSize::FractionOfT(100))
                    .seed(cfg.seed ^ (i as u64) << 8)
                    .execute(&base)
                    .into_parallel()
                    .expect("parallel outcome")
                    .graph
            };
            let par_val = metric(&gp, cfg.seed ^ i as u64);
            rows.push(vec![
                ds.name().into(),
                f(x, 1),
                f(seq_val, 4),
                f(par_val, 4),
            ]);
            data.push(json!({"graph": ds.name(), "x": x,
                             "sequential": seq_val, "parallel": par_val}));
        }
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["graph", "visit rate", "sequential", "parallel"], &rows),
    }
}

/// Figure 12: average clustering coefficient vs visit rate.
pub fn fig12(cfg: &ExpConfig) -> Report {
    trajectory(
        cfg,
        |g, seed| {
            let mut rng = root_rng(seed ^ 0xCC);
            average_clustering_sampled(g, CC_SAMPLES.min(g.num_vertices()), &mut rng)
        },
        "fig12",
        "avg clustering coefficient vs visit rate, sequential vs parallel",
    )
}

/// Figure 13: average shortest-path distance vs visit rate (sampled
/// BFS, as the paper's approximate computation).
pub fn fig13(cfg: &ExpConfig) -> Report {
    trajectory(
        cfg,
        |g, seed| {
            let mut rng = root_rng(seed ^ 0xAD);
            average_shortest_path_sampled(g, PATH_SOURCES, &mut rng)
        },
        "fig13",
        "avg shortest-path distance vs visit rate, sequential vs parallel",
    )
}
