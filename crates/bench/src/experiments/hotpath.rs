//! Hot-path throughput: switches/sec as a first-class, tracked number.
//!
//! Not a paper figure. The paper's `O(t log d_max)` bound hides the
//! constant factor set by adjacency/membership data layout (cf. the
//! EM-LFR line of work), so this experiment measures raw edge-switch
//! throughput — sequential Algorithm 1 and the threaded distributed
//! engine at p ∈ {1, 2, 4, 8} — across three graph families, giving
//! later PRs a perf trajectory to regress against.
//!
//! Run via `repro hotpath` (or `repro hotpath --quick` for a CI smoke
//! pass); the repro binary additionally archives the structured result
//! as `BENCH_hotpath.json` at the invocation directory (the repo root
//! in CI) with schema
//! `{"bench": "hotpath", "metric": "switches_per_sec", "cases": [...]}`.

use super::ExpConfig;
use crate::report::{f, table, Report};
use edgeswitch_core::config::ParallelConfig;
use edgeswitch_core::parallel::parallel_edge_switch;
use edgeswitch_core::sequential::sequential_edge_switch;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{erdos_renyi_gnm, preferential_attachment, small_world};
use edgeswitch_graph::Graph;
use serde_json::json;
use std::time::Instant;

/// Processor counts for the threaded-engine cases.
const PROCESSORS: [usize; 4] = [1, 2, 4, 8];

/// Sequential ops per measurement, as a multiple of `m` (long enough to
/// amortize timer noise at full scale).
const SEQ_OPS_PER_EDGE: u64 = 5;

fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

/// The 2–3 graph families measured, at `scale` of their 100k-edge
/// reference size: uniform (ER), heavy-tailed (PA), clustered (WS).
fn families(cfg: &ExpConfig) -> Vec<(&'static str, Graph)> {
    let mut rng = root_rng(cfg.seed);
    let er = erdos_renyi_gnm(
        scaled(20_000, cfg.scale, 64),
        scaled(100_000, cfg.scale, 128),
        &mut rng,
    );
    let pa = preferential_attachment(scaled(10_000, cfg.scale, 64), 10, &mut rng);
    let ws = small_world(scaled(20_000, cfg.scale, 64), 10, 0.1, &mut rng);
    vec![
        ("erdos_renyi_100k", er),
        ("preferential_100k", pa),
        ("small_world_100k", ws),
    ]
}

/// Measure sequential switches/sec on `graph`: best of `reps` timed runs
/// (best-of suppresses scheduler noise; the work per run is identical).
fn bench_sequential(graph: &Graph, reps: u32, seed: u64) -> (u64, f64) {
    let t = SEQ_OPS_PER_EDGE * graph.num_edges() as u64;
    let mut best = 0.0f64;
    for rep in 0..reps.max(1) {
        let mut g = graph.clone();
        let mut rng = root_rng(seed ^ (0xb0b0 + rep as u64));
        let start = Instant::now();
        let out = sequential_edge_switch(&mut g, t, &mut rng);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(out.performed as f64 / secs);
    }
    (t, best)
}

/// Measure threaded-engine switches/sec at `p` ranks (single timed run;
/// the engine's own thread startup is part of the measured protocol
/// cost, as it would be in production).
fn bench_threaded(graph: &Graph, p: usize, seed: u64) -> (u64, f64) {
    let t = graph.num_edges() as u64;
    let cfg = ParallelConfig::new(p).with_seed(seed);
    let start = Instant::now();
    let out = parallel_edge_switch(graph, t, &cfg);
    let secs = start.elapsed().as_secs_f64();
    (t, out.performed() as f64 / secs)
}

/// `hotpath` — sequential and threaded-engine switch throughput.
pub fn hotpath(cfg: &ExpConfig) -> Report {
    let mut cases = Vec::new();
    let mut rows = Vec::new();
    for (family, graph) in families(cfg) {
        let m = graph.num_edges();
        let (ops, rate) = bench_sequential(&graph, cfg.reps, cfg.seed);
        cases.push(json!({
            "family": family,
            "mode": "sequential",
            "p": 1,
            "n": graph.num_vertices(),
            "m": m,
            "ops": ops,
            "switches_per_sec": rate,
        }));
        rows.push(vec![
            family.to_string(),
            "sequential".into(),
            "1".into(),
            m.to_string(),
            ops.to_string(),
            f(rate, 0),
        ]);
        for p in PROCESSORS {
            let (ops, rate) = bench_threaded(&graph, p, cfg.seed);
            cases.push(json!({
                "family": family,
                "mode": "threaded",
                "p": p,
                "n": graph.num_vertices(),
                "m": m,
                "ops": ops,
                "switches_per_sec": rate,
            }));
            rows.push(vec![
                family.to_string(),
                "threaded".into(),
                p.to_string(),
                m.to_string(),
                ops.to_string(),
                f(rate, 0),
            ]);
        }
    }
    let rendered = table(&["family", "mode", "p", "m", "ops", "switches/sec"], &rows);
    Report {
        id: "hotpath".into(),
        title: "hot-path switch throughput (sequential + threaded engine)".into(),
        data: json!({
            "bench": "hotpath",
            "metric": "switches_per_sec",
            "cases": cases,
        }),
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_smoke_at_tiny_scale() {
        let cfg = ExpConfig {
            scale: 0.002,
            reps: 1,
            seed: 7,
        };
        let r = hotpath(&cfg);
        assert_eq!(r.id, "hotpath");
        assert_eq!(r.data["bench"].as_str(), Some("hotpath"));
        assert_eq!(r.data["metric"].as_str(), Some("switches_per_sec"));
        let cases = r.data["cases"].as_array().unwrap();
        // 3 families × (1 sequential + |PROCESSORS| threaded).
        assert_eq!(cases.len(), 3 * (1 + PROCESSORS.len()));
        for c in cases {
            assert!(c["switches_per_sec"].as_f64().unwrap() > 0.0);
            assert!(c["ops"].as_u64().unwrap() > 0);
        }
        assert!(r.rendered.contains("switches/sec"));
    }
}
