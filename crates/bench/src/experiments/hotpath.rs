//! Hot-path throughput: switches/sec as a first-class, tracked number.
//!
//! Not a paper figure. The paper's `O(t log d_max)` bound hides the
//! constant factor set by adjacency/membership data layout (cf. the
//! EM-LFR line of work), so this experiment measures raw edge-switch
//! throughput — sequential Algorithm 1 and the threaded distributed
//! engine at p ∈ {1, 2, 4, 8} — across three graph families, giving
//! later PRs a perf trajectory to regress against.
//!
//! Run via `repro hotpath` (or `repro hotpath --quick` for a CI smoke
//! pass); the repro binary additionally archives the structured result
//! as `BENCH_hotpath.json` at the invocation directory (the repo root
//! in CI) with schema
//! `{"bench": "hotpath", "metric": "switches_per_sec", "cases": [...]}`.

use super::ExpConfig;
use crate::report::{f, peak_rss_kb, provenance, table, Report};
use edgeswitch_core::parallel::process_backend_supported;
use edgeswitch_core::run::Run;
use edgeswitch_core::sequential::sequential_edge_switch;
use edgeswitch_core::switch::{flip_kind, recombine, Recombination};
use edgeswitch_core::visit::VisitTracker;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{erdos_renyi_gnm, preferential_attachment, small_world};
use edgeswitch_graph::{Graph, OrientedEdge};
use rand::Rng;
use serde_json::json;
use std::time::Instant;

/// Processor counts for the threaded-engine cases.
const PROCESSORS: [usize; 4] = [1, 2, 4, 8];

/// Pipelining windows swept for each threaded case: stop-and-wait,
/// shallow, and the [`ParallelConfig`] default.
const WINDOWS: [usize; 3] = [1, 4, 16];

/// Speculative batch depth for the batching-on cases (the per-switch
/// path itself is `spec_batch = 1`, measured by the window sweep).
const SPEC_BATCH: usize = 8;

/// Switch operations per measurement, as a multiple of `m` (long enough
/// to amortize timer noise at full scale). Shared by the sequential and
/// threaded cases: both run exactly `OPS_PER_EDGE * m` operations, so
/// their switches/sec — and the [`local_gate`] ratio between them — are
/// measured on identical work.
const OPS_PER_EDGE: u64 = 5;

fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

/// Hardware threads on the machine running the bench. Stamped into every
/// case so archived numbers are interpretable: on a 1-core host threaded
/// and process ranks alike timeshare one core, and any p>1 "speedup" is
/// noise, not scaling.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The 2–3 graph families measured, at `scale` of their 100k-edge
/// reference size: uniform (ER), heavy-tailed (PA), clustered (WS).
fn families(cfg: &ExpConfig) -> Vec<(&'static str, Graph)> {
    let mut rng = root_rng(cfg.seed);
    let er = erdos_renyi_gnm(
        scaled(20_000, cfg.scale, 64),
        scaled(100_000, cfg.scale, 128),
        &mut rng,
    );
    let pa = preferential_attachment(scaled(10_000, cfg.scale, 64), 10, &mut rng);
    let ws = small_world(scaled(20_000, cfg.scale, 64), 10, 0.1, &mut rng);
    vec![
        ("erdos_renyi_100k", er),
        ("preferential_100k", pa),
        ("small_world_100k", ws),
    ]
}

/// Measure sequential switches/sec on `graph`: best of `reps` timed runs
/// (best-of suppresses scheduler noise; the work per run is identical).
fn bench_sequential(graph: &Graph, reps: u32, seed: u64) -> (u64, f64) {
    let t = OPS_PER_EDGE * graph.num_edges() as u64;
    let mut best = 0.0f64;
    for rep in 0..reps.max(1) {
        let run = Run::sequential()
            .switches(t)
            .seed(seed ^ (0xb0b0 + rep as u64));
        let start = Instant::now();
        let out = run.execute(graph);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(out.performed() as f64 / secs);
    }
    (t, best)
}

/// Switch operations for the probe-overhead comparison. Fixed rather
/// than scale-proportional: long enough to amortize timer noise even at
/// `--quick` scale, where the graphs are tiny.
const PROBE_GATE_OPS: u64 = 200_000;

/// The *uninstrumented* Algorithm-1 inner loop, frozen as the reference
/// the probe-overhead gate compares against: identical sampling,
/// legality checking, mutation and visit tracking as
/// [`sequential_edge_switch`], with no observation points at all. If the
/// no-op probe in the real path ever grows measurable cost, the ratio of
/// the two exposes it.
fn frozen_sequential<R: Rng>(graph: &mut Graph, t: u64, rng: &mut R) -> u64 {
    let mut tracker = VisitTracker::new(graph.edges());
    let mut performed = 0u64;
    if graph.num_edges() < 2 {
        return 0;
    }
    'ops: for _ in 0..t {
        let mut retries = 0u64;
        loop {
            let e1 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let e2 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let kind = flip_kind(rng);
            if let Recombination::Candidate { f1, f2 } = recombine(e1, e2, kind) {
                if !graph.has_edge(f1) && !graph.has_edge(f2) {
                    let (o1, o2) = (e1.edge(), e2.edge());
                    graph.remove_edge(o1).expect("sampled edge exists");
                    graph.remove_edge(o2).expect("sampled edge exists");
                    graph.add_edge(f1).expect("checked absent");
                    graph.add_edge(f2).expect("checked absent");
                    tracker.record_removal(o1);
                    tracker.record_removal(o2);
                    performed += 1;
                    continue 'ops;
                }
            }
            retries += 1;
            if retries >= 100_000 {
                std::hint::black_box(&tracker);
                return performed;
            }
        }
    }
    std::hint::black_box(&tracker);
    performed
}

/// Best-of-`reps` switches/sec of the frozen baseline and of the real
/// (no-op-probed) sequential path, on identical work.
fn bench_probe_overhead(graph: &Graph, reps: u32, seed: u64) -> (f64, f64) {
    let mut base_best = 0.0f64;
    let mut noop_best = 0.0f64;
    // At least three reps: the gate divides two timings, so a single
    // noisy sample on either side would dominate the ratio.
    for rep in 0..reps.max(3) {
        let salt = 0x9e0 + rep as u64;
        let mut g = graph.clone();
        let mut rng = root_rng(seed ^ salt);
        let start = Instant::now();
        let performed = frozen_sequential(&mut g, PROBE_GATE_OPS, &mut rng);
        base_best = base_best.max(performed as f64 / start.elapsed().as_secs_f64());

        // Deliberately the bare engine function rather than the `Run`
        // facade: the gate divides this timing by the frozen loop's, so
        // both sides must run on a pre-cloned graph with the clone
        // outside the timed region.
        let mut g = graph.clone();
        let mut rng = root_rng(seed ^ salt);
        let start = Instant::now();
        let out = sequential_edge_switch(&mut g, PROBE_GATE_OPS, &mut rng);
        noop_best = noop_best.max(out.performed as f64 / start.elapsed().as_secs_f64());
    }
    (base_best, noop_best)
}

/// Measure threaded-engine switches/sec at `p` ranks with a pipelining
/// window of `window` conversations and a speculative batch depth of
/// `spec_batch`: best of `reps` timed runs, the same best-of discipline
/// as [`bench_sequential`] — the gates compare the two as a ratio, so a
/// best-of-N numerator over a single-shot denominator would measure
/// scheduler noise, not regressions. Each rep still pays the engine's
/// own thread startup, as it would in production.
fn bench_threaded(
    graph: &Graph,
    p: usize,
    window: usize,
    spec_batch: usize,
    reps: u32,
    seed: u64,
) -> (u64, f64) {
    let t = OPS_PER_EDGE * graph.num_edges() as u64;
    let run = Run::parallel(p)
        .switches(t)
        .seed(seed)
        .window(window)
        .spec_batch(spec_batch);
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = run.execute(graph);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(out.performed() as f64 / secs);
    }
    (t, best)
}

/// Measure process-backend switches/sec: identical work and best-of
/// discipline to [`bench_threaded`], but each rank is an OS child
/// process over shared-memory rings, so every rep also pays process
/// spawn and result-blob teardown — that end-to-end cost is the number
/// being tracked.
fn bench_process(
    graph: &Graph,
    p: usize,
    window: usize,
    spec_batch: usize,
    reps: u32,
    seed: u64,
) -> (u64, f64) {
    let t = OPS_PER_EDGE * graph.num_edges() as u64;
    let run = Run::process(p)
        .switches(t)
        .seed(seed)
        .window(window)
        .spec_batch(spec_batch);
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = run.execute(graph);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(out.performed() as f64 / secs);
    }
    (t, best)
}

/// `hotpath` — sequential and threaded-engine switch throughput.
pub fn hotpath(cfg: &ExpConfig) -> Report {
    let cores = host_cores();
    let mut cases = Vec::new();
    let mut rows = Vec::new();
    for (family, graph) in families(cfg) {
        let m = graph.num_edges();
        let (ops, rate) = bench_sequential(&graph, cfg.reps, cfg.seed);
        cases.push(json!({
            "family": family,
            "mode": "sequential",
            "p": 1,
            "n": graph.num_vertices(),
            "m": m,
            "ops": ops,
            "switches_per_sec": rate,
            "host_cores": cores,
            "vm_hwm_kb": peak_rss_kb(),
        }));
        rows.push(vec![
            family.to_string(),
            "sequential".into(),
            "1".into(),
            "-".into(),
            "-".into(),
            m.to_string(),
            ops.to_string(),
            f(rate, 0),
            "-".into(),
        ]);
        // The window sweep measures the per-switch conversation path
        // (`spec_batch = 1`); the speculative sweep then measures the
        // batched path at the default window only.
        let spec_window = *WINDOWS.last().unwrap();
        let mut sweeps: Vec<(usize, usize)> = WINDOWS.iter().map(|&w| (w, 1)).collect();
        sweeps.push((spec_window, SPEC_BATCH));
        for (window, spec_batch) in sweeps {
            let mut p1_rate = 0.0f64;
            for p in PROCESSORS {
                let (ops, rate) = bench_threaded(&graph, p, window, spec_batch, cfg.reps, cfg.seed);
                if p == 1 {
                    p1_rate = rate;
                }
                let speedup = rate / p1_rate;
                cases.push(json!({
                    "family": family,
                    "mode": "threaded",
                    "p": p,
                    "window": window,
                    "spec_batch": spec_batch,
                    "n": graph.num_vertices(),
                    "m": m,
                    "ops": ops,
                    "switches_per_sec": rate,
                    "speedup_vs_p1": speedup,
                    "host_cores": cores,
                    "vm_hwm_kb": peak_rss_kb(),
                }));
                rows.push(vec![
                    family.to_string(),
                    "threaded".into(),
                    p.to_string(),
                    window.to_string(),
                    spec_batch.to_string(),
                    m.to_string(),
                    ops.to_string(),
                    f(rate, 0),
                    f(speedup, 2),
                ]);
            }
        }
    }
    // Probe-overhead comparison on the uniform family: the no-op probe
    // must be free relative to the frozen uninstrumented loop. Measured
    // before the process sweep so the ratio is not skewed by the page
    // cache / scheduler churn that spawning rank processes leaves behind.
    let fams = families(cfg);
    let (family, er) = &fams[0];
    let (baseline, noop) = bench_probe_overhead(er, cfg.reps, cfg.seed);
    let noop_vs_baseline = if baseline > 0.0 { noop / baseline } else { 1.0 };
    // The process backend, measured at the default window on the
    // per-switch path only: the interesting axis is the substrate
    // (threads timesharing the parent vs. one process per core), not
    // another full window × batch sweep.
    if process_backend_supported() {
        for (family, graph) in &fams {
            let m = graph.num_edges();
            let window = *WINDOWS.last().unwrap();
            let mut p1_rate = 0.0f64;
            for p in PROCESSORS {
                let (ops, rate) = bench_process(graph, p, window, 1, cfg.reps, cfg.seed);
                if p == 1 {
                    p1_rate = rate;
                }
                let speedup = rate / p1_rate;
                cases.push(json!({
                    "family": *family,
                    "mode": "process",
                    "p": p,
                    "window": window,
                    "spec_batch": 1,
                    "n": graph.num_vertices(),
                    "m": m,
                    "ops": ops,
                    "switches_per_sec": rate,
                    "speedup_vs_p1": speedup,
                    "host_cores": cores,
                    "vm_hwm_kb": peak_rss_kb(),
                }));
                rows.push(vec![
                    family.to_string(),
                    "process".into(),
                    p.to_string(),
                    window.to_string(),
                    "1".into(),
                    m.to_string(),
                    ops.to_string(),
                    f(rate, 0),
                    f(speedup, 2),
                ]);
            }
        }
    }

    let mut rendered = table(
        &[
            "family",
            "mode",
            "p",
            "window",
            "batch",
            "m",
            "ops",
            "switches/sec",
            "vs p=1",
        ],
        &rows,
    );
    rendered.push_str(&format!(
        "\nprobe overhead ({family}, {PROBE_GATE_OPS} ops): frozen baseline {}/s, \
         no-op probe {}/s, ratio {}\n",
        f(baseline, 0),
        f(noop, 0),
        f(noop_vs_baseline, 3),
    ));
    Report {
        id: "hotpath".into(),
        title: "hot-path switch throughput (sequential + threaded engine)".into(),
        data: json!({
            "bench": "hotpath",
            "metric": "switches_per_sec",
            "provenance": provenance(),
            "cases": cases,
            "probe": {
                "family": *family,
                "ops": PROBE_GATE_OPS,
                "baseline_per_sec": baseline,
                "noop_per_sec": noop,
                "noop_vs_baseline": noop_vs_baseline,
            },
        }),
        rendered,
    }
}

/// Probe-overhead gate over an already-computed hotpath report: the
/// sequential path with its (disabled) observation points compiled in
/// must stay within 3% of the frozen uninstrumented baseline's
/// throughput. Returns a human-readable error when the gate trips.
pub fn probe_gate(data: &serde_json::Value) -> Result<(), String> {
    let ratio = data["probe"]["noop_vs_baseline"]
        .as_f64()
        .ok_or("gate: hotpath report has no probe section")?;
    if ratio < 0.97 {
        return Err(format!(
            "probe overhead regression: no-op-probed path at {:.1}% of the \
             uninstrumented baseline (floor 97%)",
            100.0 * ratio
        ));
    }
    Ok(())
}

/// Anti-scaling regression gate over an already-computed hotpath report:
/// on the ER family at the default window, threaded p=2 must not fall
/// below threaded p=1 (the collapse the pipelined window eliminated).
/// Returns a human-readable error when the gate trips. Meaningful only
/// on a multi-core host — with a single hardware thread, p ranks time-
/// share one core and p=2 ≥ p=1 is physically unreachable.
pub fn scaling_gate(data: &serde_json::Value) -> Result<(), String> {
    let window = *WINDOWS.last().unwrap() as u64;
    let rate = |p: u64| -> Result<f64, String> {
        data["cases"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|c| {
                c["family"].as_str() == Some("erdos_renyi_100k")
                    && c["mode"].as_str() == Some("threaded")
                    && c["p"].as_u64() == Some(p)
                    && c["window"].as_u64() == Some(window)
                    && c["spec_batch"].as_u64().unwrap_or(1) == 1
            })
            .and_then(|c| c["switches_per_sec"].as_f64())
            .ok_or_else(|| format!("gate: no ER threaded p={p} window={window} case"))
    };
    let (p1, p2) = (rate(1)?, rate(2)?);
    if p2 < p1 {
        return Err(format!(
            "anti-scaling regression: ER threaded p=2 ({p2:.0}/s) below p=1 ({p1:.0}/s) at window {window}"
        ));
    }
    Ok(())
}

/// Local-fast-path gate over an already-computed hotpath report: on the
/// ER family at the default window, threaded p=1 — where every switch
/// is rank-local and takes the zero-message fast path — must hold at
/// least 75% of sequential Algorithm 1's throughput on identical work
/// (both modes run `OPS_PER_EDGE * m` operations). Guards against the
/// fast path silently regressing back into the conversation protocol,
/// which held p=1 near 40% of sequential. Returns a human-readable
/// error when the gate trips.
pub fn local_gate(data: &serde_json::Value) -> Result<(), String> {
    let window = *WINDOWS.last().unwrap() as u64;
    let cases = || data["cases"].as_array().into_iter().flatten();
    let seq = cases()
        .find(|c| {
            c["family"].as_str() == Some("erdos_renyi_100k")
                && c["mode"].as_str() == Some("sequential")
        })
        .and_then(|c| c["switches_per_sec"].as_f64())
        .ok_or("gate: no ER sequential case")?;
    let p1 = cases()
        .find(|c| {
            c["family"].as_str() == Some("erdos_renyi_100k")
                && c["mode"].as_str() == Some("threaded")
                && c["p"].as_u64() == Some(1)
                && c["window"].as_u64() == Some(window)
                && c["spec_batch"].as_u64().unwrap_or(1) == 1
        })
        .and_then(|c| c["switches_per_sec"].as_f64())
        .ok_or_else(|| format!("gate: no ER threaded p=1 window={window} case"))?;
    let ratio = if seq > 0.0 { p1 / seq } else { 1.0 };
    if ratio < 0.75 {
        return Err(format!(
            "local fast-path regression: ER threaded p=1 at {:.1}% of \
             sequential (floor 75%) at window {window}",
            100.0 * ratio
        ));
    }
    Ok(())
}

/// Speculative-batch gate over an already-computed hotpath report: on
/// the ER family at the default window, threaded p=1 with batching on
/// (`spec_batch` = [`SPEC_BATCH`]) must hold at least 90% of sequential
/// Algorithm 1's throughput on identical work. At p=1 every switch is
/// rank-local, so speculation never pays a verdict round trip — the
/// gate guards the batch loop's bookkeeping overhead (sampling gate,
/// undo-log plumbing, retry routing) against regressing the hot path.
/// Returns a human-readable error when the gate trips.
pub fn batch_gate(data: &serde_json::Value) -> Result<(), String> {
    let window = *WINDOWS.last().unwrap() as u64;
    let cases = || data["cases"].as_array().into_iter().flatten();
    let seq = cases()
        .find(|c| {
            c["family"].as_str() == Some("erdos_renyi_100k")
                && c["mode"].as_str() == Some("sequential")
        })
        .and_then(|c| c["switches_per_sec"].as_f64())
        .ok_or("gate: no ER sequential case")?;
    let p1 = cases()
        .find(|c| {
            c["family"].as_str() == Some("erdos_renyi_100k")
                && c["mode"].as_str() == Some("threaded")
                && c["p"].as_u64() == Some(1)
                && c["window"].as_u64() == Some(window)
                && c["spec_batch"].as_u64() == Some(SPEC_BATCH as u64)
        })
        .and_then(|c| c["switches_per_sec"].as_f64())
        .ok_or_else(|| {
            format!("gate: no ER threaded p=1 window={window} spec_batch={SPEC_BATCH} case")
        })?;
    let ratio = if seq > 0.0 { p1 / seq } else { 1.0 };
    if ratio < 0.90 {
        return Err(format!(
            "speculative-batch regression: ER threaded p=1 with batching on at \
             {:.1}% of sequential (floor 90%) at window {window}",
            100.0 * ratio
        ));
    }
    Ok(())
}

/// Process-scaling gate over an already-computed hotpath report: on the
/// ER family at the default window, process-backend p=2 must reach at
/// least 1.3× process p=1 — the whole point of the backend is that a
/// second rank brings a second core. Only meaningful where that second
/// core exists: the gate reads the report's `host_cores` stamp and
/// *skips* (`Ok` with a notice, not a failure) on single-core runners
/// and on reports without process cases (non-Linux). Returns the notice
/// or pass summary in `Ok`, a human-readable error in `Err`.
pub fn proc_gate(data: &serde_json::Value) -> Result<String, String> {
    let window = *WINDOWS.last().unwrap() as u64;
    let case = |p: u64| {
        data["cases"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|c| {
                c["family"].as_str() == Some("erdos_renyi_100k")
                    && c["mode"].as_str() == Some("process")
                    && c["p"].as_u64() == Some(p)
                    && c["window"].as_u64() == Some(window)
            })
            .cloned()
    };
    let (Some(c1), Some(c2)) = (case(1), case(2)) else {
        return Ok("skipped: no process cases in report (platform unsupported)".into());
    };
    let cores = c2["host_cores"].as_u64().unwrap_or(1);
    if cores < 2 {
        return Ok(format!(
            "skipped: host has {cores} core(s); process p=2 cannot beat p=1 while timesharing"
        ));
    }
    let p1 = c1["switches_per_sec"]
        .as_f64()
        .ok_or("gate: p=1 case has no rate")?;
    let p2 = c2["switches_per_sec"]
        .as_f64()
        .ok_or("gate: p=2 case has no rate")?;
    let speedup = if p1 > 0.0 { p2 / p1 } else { 0.0 };
    if speedup < 1.3 {
        return Err(format!(
            "process-scaling regression: ER process p=2 at {speedup:.2}x p=1 \
             (floor 1.30x) on a {cores}-core host"
        ));
    }
    Ok(format!(
        "process p=2 at {speedup:.2}x p=1 on ER ({cores}-core host)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_smoke_at_tiny_scale() {
        let cfg = ExpConfig {
            scale: 0.002,
            reps: 1,
            seed: 7,
            timeline: false,
        };
        let r = hotpath(&cfg);
        assert_eq!(r.id, "hotpath");
        assert_eq!(r.data["bench"].as_str(), Some("hotpath"));
        assert_eq!(r.data["metric"].as_str(), Some("switches_per_sec"));
        let cases = r.data["cases"].as_array().unwrap();
        // 3 families × (1 sequential + (|WINDOWS| per-switch sweeps + 1
        // speculative sweep) × |PROCESSORS| threaded + |PROCESSORS|
        // process where the backend exists).
        let proc_cases = if process_backend_supported() {
            PROCESSORS.len()
        } else {
            0
        };
        assert_eq!(
            cases.len(),
            3 * (1 + (WINDOWS.len() + 1) * PROCESSORS.len() + proc_cases)
        );
        for c in cases {
            assert!(c["switches_per_sec"].as_f64().unwrap() > 0.0);
            assert!(c["ops"].as_u64().unwrap() > 0);
            assert!(c["host_cores"].as_u64().unwrap() >= 1);
            // Peak RSS is stamped per case wherever /proc exists
            // (monotone within this one process; per-case isolation is
            // the genscale experiment's job).
            if cfg!(target_os = "linux") {
                assert!(c["vm_hwm_kb"].as_u64().unwrap() > 0);
            }
            if matches!(c["mode"].as_str(), Some("threaded") | Some("process")) {
                let speedup = c["speedup_vs_p1"].as_f64().unwrap();
                assert!(speedup > 0.0);
                if c["p"].as_u64() == Some(1) {
                    assert!((speedup - 1.0).abs() < 1e-9);
                }
            }
        }
        assert!(r.rendered.contains("switches/sec"));
        assert!(r.rendered.contains("window"));
        // Archived numbers carry their build provenance.
        assert!(!r.data["provenance"]["rustc"].as_str().unwrap().is_empty());
        // The probe-overhead section is always present for the gate.
        assert!(r.data["probe"]["baseline_per_sec"].as_f64().unwrap() > 0.0);
        assert!(r.data["probe"]["noop_per_sec"].as_f64().unwrap() > 0.0);
        assert!(r.data["probe"]["noop_vs_baseline"].as_f64().unwrap() > 0.0);
        assert!(r.rendered.contains("probe overhead"));
    }

    #[test]
    fn probe_gate_reads_the_report_schema() {
        let ok = json!({"probe": {"noop_vs_baseline": 0.995}});
        assert!(probe_gate(&ok).is_ok());
        let bad = json!({"probe": {"noop_vs_baseline": 0.90}});
        assert!(probe_gate(&bad).unwrap_err().contains("probe overhead"));
        assert!(probe_gate(&json!({})).is_err());
    }

    #[test]
    fn sequential_and_threaded_cases_run_identical_work() {
        let cfg = ExpConfig {
            scale: 0.002,
            reps: 1,
            seed: 7,
            timeline: false,
        };
        let r = hotpath(&cfg);
        let cases = r.data["cases"].as_array().unwrap();
        for family in ["erdos_renyi_100k", "preferential_100k", "small_world_100k"] {
            let ops: Vec<u64> = cases
                .iter()
                .filter(|c| c["family"].as_str() == Some(family))
                .map(|c| c["ops"].as_u64().unwrap())
                .collect();
            assert!(
                ops.windows(2).all(|w| w[0] == w[1]),
                "{family}: uneven workloads across modes: {ops:?}"
            );
        }
    }

    #[test]
    fn local_gate_reads_the_report_schema() {
        let ok = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "sequential", "p": 1, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16, "switches_per_sec": 80.0},
        ]});
        assert!(local_gate(&ok).is_ok());
        let bad = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "sequential", "p": 1, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16, "switches_per_sec": 60.0},
        ]});
        assert!(local_gate(&bad).unwrap_err().contains("local fast-path"));
        assert!(local_gate(&json!({"cases": []})).is_err());
    }

    #[test]
    fn hotpath_sweeps_the_speculative_batch_cases() {
        let cfg = ExpConfig {
            scale: 0.002,
            reps: 1,
            seed: 7,
            timeline: false,
        };
        let r = hotpath(&cfg);
        let cases = r.data["cases"].as_array().unwrap();
        let spec: Vec<_> = cases
            .iter()
            .filter(|c| c["spec_batch"].as_u64() == Some(SPEC_BATCH as u64))
            .collect();
        // One batching-on case per (family, p) at the default window.
        assert_eq!(spec.len(), 3 * PROCESSORS.len());
        for c in &spec {
            assert_eq!(c["window"].as_u64(), Some(*WINDOWS.last().unwrap() as u64));
            assert!(c["switches_per_sec"].as_f64().unwrap() > 0.0);
        }
        // Every other threaded case pins the per-switch path.
        assert!(cases
            .iter()
            .filter(|c| c["mode"].as_str() == Some("threaded"))
            .all(|c| matches!(c["spec_batch"].as_u64(), Some(1) | Some(8))));
        assert!(r.rendered.contains("batch"));
    }

    #[test]
    fn batch_gate_reads_the_report_schema() {
        let ok = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "sequential", "p": 1, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16,
             "spec_batch": 8, "switches_per_sec": 95.0},
        ]});
        assert!(batch_gate(&ok).is_ok());
        let bad = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "sequential", "p": 1, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16,
             "spec_batch": 8, "switches_per_sec": 60.0},
        ]});
        assert!(batch_gate(&bad).unwrap_err().contains("speculative-batch"));
        assert!(batch_gate(&json!({"cases": []})).is_err());
    }

    #[test]
    fn proc_gate_skips_asserts_and_fails_by_schema() {
        // No process cases → skip, not failure (non-Linux platforms).
        let none = json!({"cases": []});
        assert!(proc_gate(&none).unwrap().contains("skipped"));
        // Single-core host → skip with the core count in the notice.
        let one_core = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "process", "p": 1, "window": 16,
             "switches_per_sec": 100.0, "host_cores": 1},
            {"family": "erdos_renyi_100k", "mode": "process", "p": 2, "window": 16,
             "switches_per_sec": 60.0, "host_cores": 1},
        ]});
        assert!(proc_gate(&one_core).unwrap().contains("skipped"));
        // Multi-core host with real scaling → pass.
        let ok = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "process", "p": 1, "window": 16,
             "switches_per_sec": 100.0, "host_cores": 4},
            {"family": "erdos_renyi_100k", "mode": "process", "p": 2, "window": 16,
             "switches_per_sec": 150.0, "host_cores": 4},
        ]});
        assert!(proc_gate(&ok).unwrap().contains("1.50x"));
        // Multi-core host without scaling → failure.
        let bad = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "process", "p": 1, "window": 16,
             "switches_per_sec": 100.0, "host_cores": 4},
            {"family": "erdos_renyi_100k", "mode": "process", "p": 2, "window": 16,
             "switches_per_sec": 110.0, "host_cores": 4},
        ]});
        assert!(proc_gate(&bad).unwrap_err().contains("process-scaling"));
    }

    #[test]
    fn scaling_gate_reads_the_report_schema() {
        let ok = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 2, "window": 16, "switches_per_sec": 150.0},
        ]});
        assert!(scaling_gate(&ok).is_ok());
        let bad = json!({"cases": [
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 1, "window": 16, "switches_per_sec": 100.0},
            {"family": "erdos_renyi_100k", "mode": "threaded", "p": 2, "window": 16, "switches_per_sec": 60.0},
        ]});
        assert!(scaling_gate(&bad).unwrap_err().contains("anti-scaling"));
        assert!(scaling_gate(&json!({"cases": []})).is_err());
    }
}
