//! `trace` — the observability export: one seeded Erdős–Rényi instance
//! run under all three drivers with probes attached ([`ObsSpec::Spans`]),
//! emitting each driver's [`RunReport`] — phase span histograms,
//! per-kind round-trip latencies, gauges — plus a per-step timeline
//! (included in the report data when `--timeline` is passed; the repro
//! binary additionally writes it as `trace.jsonl`). Not a paper figure —
//! the measurement surface ISSUE 4 adds, run via `repro trace` or
//! `repro diagnostics`.

use super::ExpConfig;
use crate::report::{f, table, Report};
use edgeswitch_core::config::StepSize;
use edgeswitch_core::obs::{ObsSpec, RunReport};
use edgeswitch_core::parallel::StepTelemetry;
use edgeswitch_core::Run;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::erdos_renyi_gnm;
use edgeswitch_scalesim::{des_parallel, CostModel};
use serde_json::{json, Value};

fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

fn phase_rows(report: &RunReport) -> Vec<Vec<String>> {
    report
        .phases
        .iter()
        .map(|p| {
            vec![
                p.phase.clone(),
                p.hist.count.to_string(),
                f(p.hist.p50_ns as f64 / 1e3, 1),
                f(p.hist.p99_ns as f64 / 1e3, 1),
                f(p.hist.max_ns as f64 / 1e3, 1),
                f(p.hist.sum_ns as f64 / 1e6, 2),
            ]
        })
        .collect()
}

fn rtt_rows(report: &RunReport) -> Vec<Vec<String>> {
    report
        .rtt
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.hist.count.to_string(),
                f(r.hist.p50_ns as f64 / 1e3, 1),
                f(r.hist.p99_ns as f64 / 1e3, 1),
                f(r.hist.max_ns as f64 / 1e3, 1),
            ]
        })
        .collect()
}

fn render_report(rendered: &mut String, name: &str, report: &RunReport) {
    rendered.push_str(&format!(
        "\n{name} (clock: {}, ranks: {}, wall: {} ms)\nphases:\n",
        report.clock,
        report.ranks,
        f(report.wall_ns as f64 / 1e6, 2)
    ));
    rendered.push_str(&table(
        &[
            "phase", "count", "p50 (us)", "p99 (us)", "max (us)", "sum (ms)",
        ],
        &phase_rows(report),
    ));
    if report.rtt.iter().any(|r| r.hist.count > 0) {
        rendered.push_str("round trips:\n");
        rendered.push_str(&table(
            &["kind", "count", "p50 (us)", "p99 (us)", "max (us)"],
            &rtt_rows(report),
        ));
    }
    let active: Vec<String> = report
        .gauges
        .iter()
        .filter(|g| g.samples > 0)
        .map(|g| format!("{}: mean {} peak {}", g.gauge, f(g.mean, 1), g.peak))
        .collect();
    if !active.is_empty() {
        rendered.push_str(&format!("gauges: {}\n", active.join("; ")));
    }
}

/// One driver's per-step timeline rows (the `trace.jsonl` content):
/// the shared telemetry row shape, tagged with the driver name.
fn timeline_json(driver: &str, telemetry: &[StepTelemetry]) -> Vec<Value> {
    super::telemetry::step_json_rows(Some(driver), telemetry)
}

/// `trace` — observed runs of all three drivers on one seeded ER
/// instance.
pub fn trace(cfg: &ExpConfig) -> Report {
    let mut rng = root_rng(cfg.seed);
    let g = erdos_renyi_gnm(
        scaled(5_000, cfg.scale, 64),
        scaled(25_000, cfg.scale, 128),
        &mut rng,
    );
    let t = 4 * g.num_edges() as u64;
    let p = 4;
    let steps = 8;

    let seq = Run::sequential()
        .switches(t)
        .seed(cfg.seed)
        .probe(ObsSpec::Spans)
        .execute(&g)
        .into_sequential()
        .expect("sequential run");
    let seq_report = seq.outcome.report.expect("observed sequential run");

    let threaded_run = Run::parallel(p)
        .switches(t)
        .seed(cfg.seed)
        .step_size(StepSize::FractionOfT(steps))
        .probe(ObsSpec::Spans);
    let threaded = threaded_run
        .execute(&g)
        .into_parallel()
        .expect("parallel run");
    let thr_report = threaded.report.clone().expect("observed threaded run");

    let (des, _) = des_parallel(&g, t, threaded_run.config(), &CostModel::default());
    let des_report = des.report.clone().expect("observed DES run");

    let mut rendered = format!(
        "observed run: ER n={} m={} t={t} p={p} (seed {})\n",
        g.num_vertices(),
        g.num_edges(),
        cfg.seed
    );
    render_report(&mut rendered, "sequential", &seq_report);
    render_report(&mut rendered, "threaded", &thr_report);
    render_report(&mut rendered, "DES (virtual time)", &des_report);

    let mut timeline = Vec::new();
    if cfg.timeline {
        timeline.extend(timeline_json("threaded", &threaded.telemetry));
        timeline.extend(timeline_json("des", &des.telemetry));
        rendered.push_str(&format!(
            "\ntimeline: {} per-step rows included in the report data\n",
            timeline.len()
        ));
    }

    Report {
        id: "trace".into(),
        title: "observability trace: phase spans, latencies and gauges per driver".into(),
        data: json!({
            "t": t,
            "p": p as u64,
            "sequential": seq_report.to_json(),
            "threaded": thr_report.to_json(),
            "des": des_report.to_json(),
            "timeline": Value::Array(timeline),
        }),
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_core::obs::Phase;

    fn tiny(timeline: bool) -> ExpConfig {
        ExpConfig {
            scale: 0.01,
            reps: 1,
            seed: 11,
            timeline,
        }
    }

    #[test]
    fn trace_reports_all_drivers() {
        let r = trace(&tiny(false));
        assert_eq!(r.id, "trace");
        for driver in ["sequential", "threaded", "des"] {
            let report = &r.data[driver];
            assert!(report["wall_ns"].as_u64().unwrap() > 0, "{driver} wall");
            assert_eq!(
                report["phases"].as_array().unwrap().len(),
                Phase::COUNT,
                "{driver} phases"
            );
        }
        assert_eq!(r.data["sequential"]["clock"].as_str(), Some("monotonic"));
        assert_eq!(r.data["threaded"]["clock"].as_str(), Some("monotonic"));
        assert_eq!(r.data["des"]["clock"].as_str(), Some("virtual"));
        // No timeline requested: the rows stay out of the archive.
        assert!(r.data["timeline"].as_array().unwrap().is_empty());
        // The threaded protocol exercises every instrumented phase
        // except the speculative batch serve, which only fires when
        // `spec_batch > 1` (off in this experiment).
        for phase in r.data["threaded"]["phases"].as_array().unwrap() {
            if phase["phase"].as_str() == Some("batch-validate") {
                continue;
            }
            if phase["phase"].as_str() == Some("trade-shuffle") {
                // Curveball-only phase; this experiment traces the
                // switch protocol.
                continue;
            }
            assert!(
                phase["hist"]["count"].as_u64().unwrap() > 0,
                "threaded phase {:?} never recorded",
                phase["phase"]
            );
        }
        // Conversation lifetimes (propose) and commit round trips cross
        // ranks under hash partitioning.
        let rtt = r.data["threaded"]["rtt"].as_array().unwrap();
        assert_eq!(rtt[0]["kind"].as_str(), Some("propose"));
        assert!(rtt[0]["hist"]["count"].as_u64().unwrap() > 0);
        // The DES records its step boundary in virtual time.
        let des_phases = r.data["des"]["phases"].as_array().unwrap();
        let barrier = des_phases
            .iter()
            .find(|p| p["phase"].as_str() == Some("step-barrier"))
            .unwrap();
        assert!(barrier["hist"]["sum_ns"].as_u64().unwrap() > 0);
    }

    #[test]
    fn trace_timeline_rows_cover_both_parallel_drivers() {
        let r = trace(&tiny(true));
        let rows = r.data["timeline"].as_array().unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .any(|x| x["driver"].as_str() == Some("threaded")));
        assert!(rows.iter().any(|x| x["driver"].as_str() == Some("des")));
        for row in rows {
            assert!(row["ops"].as_u64().is_some());
            assert!(row["logical_msgs"].as_u64().is_some());
        }
    }
}
