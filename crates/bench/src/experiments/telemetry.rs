//! Per-step protocol diagnostics from the [`StepTelemetry`] layer the
//! drivers now record: operation starts vs completions, contention
//! blocking, speculative-batch outcomes, message-variant traffic, and
//! (for the DES) how each step's virtual time splits between its
//! collective boundary and its conversation drain. Not a paper figure —
//! a diagnostic surface for the protocol itself, run via
//! `repro diagnostics`.
//!
//! This module is also the *single* owner of per-step telemetry
//! rendering: the table/JSON row shapes here are shared by
//! `repro diagnostics`, the `repro trace --timeline` export and the
//! `distributed_switch` example, so the column vocabulary cannot drift
//! between surfaces.

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::StepSize;
use edgeswitch_core::parallel::{MsgCounts, MsgKind, ParallelOutcome, StepTelemetry};
use edgeswitch_core::Run;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::SchemeKind;
use edgeswitch_scalesim::{des_parallel, CostModel};
use serde_json::{json, Value};

/// Header of the driver-independent per-step telemetry columns, in the
/// order [`step_cells`] renders them.
pub const STEP_HEADER: [&str; 15] = [
    "step",
    "ops",
    "started",
    "performed",
    "local",
    "spec ok",
    "spec rb",
    "served",
    "blocked",
    "propose",
    "abort",
    "msgs",
    "pkts",
    "wpeak",
    "parked",
];

/// The shared (driver-independent) cells of one step's telemetry row.
pub fn step_cells(step: usize, s: &StepTelemetry) -> Vec<String> {
    vec![
        step.to_string(),
        s.ops.to_string(),
        s.started.to_string(),
        s.performed.to_string(),
        s.local_fastpath.to_string(),
        s.spec_committed.to_string(),
        s.spec_rolled_back.to_string(),
        s.served.to_string(),
        s.blocked.to_string(),
        s.logical_msgs.get(MsgKind::Propose).to_string(),
        s.logical_msgs.get(MsgKind::Abort).to_string(),
        s.logical_msgs.total().to_string(),
        s.packets.to_string(),
        s.window_peak.to_string(),
        s.parked.to_string(),
    ]
}

/// One table row per step: the shared columns plus whatever
/// driver-specific cells `extra` appends (pair them with extra header
/// columns after [`STEP_HEADER`]).
pub fn step_table_rows(
    telemetry: &[StepTelemetry],
    extra: impl Fn(&StepTelemetry) -> Vec<String>,
) -> Vec<Vec<String>> {
    telemetry
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut row = step_cells(i, s);
            row.extend(extra(s));
            row
        })
        .collect()
}

/// One step as a JSON record carrying the full telemetry field set
/// (logical columns plus the per-step timing split). `driver`, when
/// given, tags the row for mixed-driver timelines.
pub fn step_json_row(driver: Option<&str>, step: usize, s: &StepTelemetry) -> Value {
    let mut row = json!({
        "step": step as u64,
        "ops": s.ops,
        "started": s.started,
        "performed": s.performed,
        "local_fastpath": s.local_fastpath,
        "spec_committed": s.spec_committed,
        "spec_rolled_back": s.spec_rolled_back,
        "forfeited": s.forfeited,
        "served": s.served,
        "blocked": s.blocked,
        "logical_msgs": s.logical_msgs.total(),
        "packets": s.packets,
        "window_peak": s.window_peak,
        "parked": s.parked,
        "barrier_ns": s.barrier_ns,
        "qrefresh_ns": s.qrefresh_ns,
        "wait_ns": s.wait_ns,
        "boundary_ns": s.boundary_ns,
        "drain_ns": s.drain_ns,
    });
    if let Some(driver) = driver {
        row.as_object_mut()
            .expect("row is an object")
            .insert("driver".into(), json!(driver));
    }
    row
}

/// All steps as JSON rows (see [`step_json_row`]).
pub fn step_json_rows(driver: Option<&str>, telemetry: &[StepTelemetry]) -> Vec<Value> {
    telemetry
        .iter()
        .enumerate()
        .map(|(i, s)| step_json_row(driver, i, s))
        .collect()
}

/// `variant` / `count` table rows of the non-zero message kinds.
pub fn msg_variant_rows(totals: &MsgCounts) -> Vec<Vec<String>> {
    MsgKind::ALL
        .iter()
        .filter(|k| totals.get(**k) > 0)
        .map(|k| vec![k.label().to_string(), totals.get(*k).to_string()])
        .collect()
}

/// A rendered whole-run protocol summary: step/start/blocking totals,
/// per-variant message counts, the pipelining figures and (when the
/// speculative path ran) the batch outcome split. Shared by the repro
/// diagnostics and the `distributed_switch` example.
pub fn protocol_summary(out: &ParallelOutcome, window: usize) -> String {
    let totals = out.logical_msg_totals();
    let mut s = format!(
        "telemetry: {} steps, {} ops started, {} blocked-on-contention events\n",
        out.telemetry.len(),
        out.telemetry.iter().map(|t| t.started).sum::<u64>(),
        out.blocked_events(),
    );
    s.push_str("messages by variant:");
    for (kind, count) in totals.iter().filter(|(_, c)| *c > 0) {
        s.push_str(&format!(" {}={count}", kind.label()));
    }
    s.push('\n');
    s.push_str(&format!(
        "pipelining: window = {} conversations/rank, peak occupancy = {}, \
         {} logical messages in {} packets, {} parked waits\n",
        window,
        out.window_peak(),
        totals.total(),
        out.packet_total(),
        out.parked_events(),
    ));
    let committed: u64 = out.per_rank.iter().map(|r| r.spec_committed).sum();
    let rolled: u64 = out.per_rank.iter().map(|r| r.spec_rolled_back).sum();
    if committed + rolled > 0 {
        s.push_str(&format!(
            "speculation: {committed} batched switches committed, {rolled} rolled back\n"
        ));
    }
    s
}

/// Per-step telemetry of a FIFO run and a DES run of the same
/// configuration: the two must agree on every logical column (same
/// schedule), and the DES adds the virtual-time phase split.
pub fn telemetry_steps(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    let p = 16;
    let steps = 8;
    let run = Run::simulated(p)
        .switches(t)
        .scheme(SchemeKind::Consecutive)
        .step_size(StepSize::FractionOfT(steps))
        .seed(cfg.seed);

    let fifo = run.execute(&g).into_parallel().expect("simulated mode");
    let (des, des_report) = des_parallel(&g, t, run.config(), &CostModel::default());

    let mut rendered = String::from("FIFO driver, per step:\n");
    rendered.push_str(&table(
        &STEP_HEADER,
        &step_table_rows(&fifo.telemetry, |_| Vec::new()),
    ));
    rendered.push_str("\nDES driver (same logical schedule + virtual time), per step:\n");
    let mut des_header: Vec<&str> = STEP_HEADER.to_vec();
    des_header.extend(["boundary (us)", "drain (us)"]);
    rendered.push_str(&table(
        &des_header,
        &step_table_rows(&des.telemetry, |s| {
            vec![f(s.boundary_ns / 1e3, 1), f(s.drain_ns / 1e3, 1)]
        }),
    ));
    let totals = fifo.logical_msg_totals();
    rendered.push_str("\nmessage totals by variant (FIFO):\n");
    rendered.push_str(&table(&["variant", "count"], &msg_variant_rows(&totals)));
    rendered.push('\n');
    rendered.push_str(&protocol_summary(&fifo, run.config().window));

    let fast: u64 = fifo.telemetry.iter().map(|s| s.local_fastpath).sum();
    let performed = fifo.performed();
    rendered.push_str(&format!(
        "\nlocal fast path: {fast} of {performed} switches ({}%) applied inline, \
         bypassing the conversation protocol\n",
        f(100.0 * fast as f64 / performed.max(1) as f64, 1),
    ));

    let kinds: Vec<Value> = totals
        .iter()
        .map(|(k, c)| json!({"variant": k.label(), "count": c}))
        .collect();
    Report {
        id: "telemetry-steps".into(),
        title: "per-step protocol telemetry: FIFO vs DES on the Miami stand-in".into(),
        data: json!({
            "p": p as u64,
            "t": t,
            "window": run.config().window as u64,
            "window_peak": fifo.window_peak(),
            "parked_events": fifo.parked_events(),
            "local_fastpath_total": fast,
            "local_fraction": fast as f64 / performed.max(1) as f64,
            "packet_total": fifo.packet_total(),
            "fifo_steps": Value::Array(step_json_rows(None, &fifo.telemetry)),
            "des_steps": Value::Array(step_json_rows(None, &des.telemetry)),
            "message_kinds": kinds,
            "blocked_events": fifo.blocked_events(),
            "des_runtime_ns": des_report.runtime_ns,
            "drivers_agree": fifo.graph.same_edge_set(&des.graph),
        }),
        rendered,
    }
}
