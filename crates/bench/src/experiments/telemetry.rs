//! Per-step protocol diagnostics from the [`StepTelemetry`] layer the
//! drivers now record: operation starts vs completions, contention
//! blocking, message-variant traffic, and (for the DES) how each step's
//! virtual time splits between its collective boundary and its
//! conversation drain. Not a paper figure — a diagnostic surface for the
//! protocol itself, run via `repro diagnostics`.

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::StepSize;
use edgeswitch_core::parallel::{MsgKind, StepTelemetry};
use edgeswitch_core::Run;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::SchemeKind;
use edgeswitch_scalesim::{des_parallel, CostModel};
use serde_json::json;

fn step_rows(telemetry: &[StepTelemetry], with_phases: bool) -> Vec<Vec<String>> {
    telemetry
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut row = vec![
                i.to_string(),
                s.ops.to_string(),
                s.started.to_string(),
                s.performed.to_string(),
                s.local_fastpath.to_string(),
                s.served.to_string(),
                s.blocked.to_string(),
                s.logical_msgs.get(MsgKind::Propose).to_string(),
                s.logical_msgs.get(MsgKind::Abort).to_string(),
                s.logical_msgs.total().to_string(),
                s.packets.to_string(),
                s.window_peak.to_string(),
                s.parked.to_string(),
            ];
            if with_phases {
                row.push(f(s.boundary_ns / 1e3, 1));
                row.push(f(s.drain_ns / 1e3, 1));
            }
            row
        })
        .collect()
}

fn step_json(telemetry: &[StepTelemetry]) -> Vec<serde_json::Value> {
    telemetry
        .iter()
        .enumerate()
        .map(|(i, s)| {
            json!({
                "step": i as u64,
                "ops": s.ops,
                "started": s.started,
                "performed": s.performed,
                "local_fastpath": s.local_fastpath,
                "forfeited": s.forfeited,
                "served": s.served,
                "blocked": s.blocked,
                "logical_msgs": s.logical_msgs.total(),
                "packets": s.packets,
                "window_peak": s.window_peak,
                "parked": s.parked,
                "boundary_ns": s.boundary_ns,
                "drain_ns": s.drain_ns,
            })
        })
        .collect()
}

/// Per-step telemetry of a FIFO run and a DES run of the same
/// configuration: the two must agree on every logical column (same
/// schedule), and the DES adds the virtual-time phase split.
pub fn telemetry_steps(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    let p = 16;
    let steps = 8;
    let run = Run::simulated(p)
        .switches(t)
        .scheme(SchemeKind::Consecutive)
        .step_size(StepSize::FractionOfT(steps))
        .seed(cfg.seed);

    let fifo = run.execute(&g).into_parallel().expect("simulated mode");
    let (des, des_report) = des_parallel(&g, t, run.config(), &CostModel::default());

    let mut rendered = String::from("FIFO driver, per step:\n");
    rendered.push_str(&table(
        &[
            "step",
            "ops",
            "started",
            "performed",
            "local",
            "served",
            "blocked",
            "propose",
            "abort",
            "msgs",
            "pkts",
            "wpeak",
            "parked",
        ],
        &step_rows(&fifo.telemetry, false),
    ));
    rendered.push_str("\nDES driver (same logical schedule + virtual time), per step:\n");
    rendered.push_str(&table(
        &[
            "step",
            "ops",
            "started",
            "performed",
            "local",
            "served",
            "blocked",
            "propose",
            "abort",
            "msgs",
            "pkts",
            "wpeak",
            "parked",
            "boundary (us)",
            "drain (us)",
        ],
        &step_rows(&des.telemetry, true),
    ));
    let totals = fifo.logical_msg_totals();
    rendered.push_str("\nmessage totals by variant (FIFO):\n");
    rendered.push_str(&table(
        &["variant", "count"],
        &MsgKind::ALL
            .iter()
            .filter(|k| totals.get(**k) > 0)
            .map(|k| vec![k.label().to_string(), totals.get(*k).to_string()])
            .collect::<Vec<_>>(),
    ));

    let fast: u64 = fifo.telemetry.iter().map(|s| s.local_fastpath).sum();
    let performed = fifo.performed();
    rendered.push_str(&format!(
        "\nlocal fast path: {fast} of {performed} switches ({}%) applied inline, \
         bypassing the conversation protocol\n",
        f(100.0 * fast as f64 / performed.max(1) as f64, 1),
    ));

    let kinds: Vec<serde_json::Value> = totals
        .iter()
        .map(|(k, c)| json!({"variant": k.label(), "count": c}))
        .collect();
    Report {
        id: "telemetry-steps".into(),
        title: "per-step protocol telemetry: FIFO vs DES on the Miami stand-in".into(),
        data: json!({
            "p": p as u64,
            "t": t,
            "window": run.config().window as u64,
            "window_peak": fifo.window_peak(),
            "parked_events": fifo.parked_events(),
            "local_fastpath_total": fast,
            "local_fraction": fast as f64 / performed.max(1) as f64,
            "packet_total": fifo.packet_total(),
            "fifo_steps": step_json(&fifo.telemetry),
            "des_steps": step_json(&des.telemetry),
            "message_kinds": kinds,
            "blocked_events": fifo.blocked_events(),
            "des_runtime_ns": des_report.runtime_ns,
            "drivers_agree": fifo.graph.same_edge_set(&des.graph),
        }),
        rendered,
    }
}
