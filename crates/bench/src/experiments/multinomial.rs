//! Multinomial scaling (Figures 24–25): the parallel algorithm of
//! Section 6 at the paper's trial counts (10⁴ billion trials), on the
//! virtual cluster, grounded by a real measured run.

use super::ExpConfig;
use crate::report::{f, table, Report};
use edgeswitch_dist::multinomial::multinomial;
use edgeswitch_dist::parallel::{multinomial_partitioned, trial_share};
use edgeswitch_dist::rng::root_rng;
use edgeswitch_scalesim::{multinomial_strong_scaling, multinomial_weak_scaling, CostModel};
use serde_json::json;
use std::time::Instant;

/// Calibrate the per-trial BINV cost on this host with a real
/// measurement, then return (model, measured ns/trial, verification
/// draw).
fn calibrated(cfg: &ExpConfig) -> (CostModel, f64, Vec<u64>) {
    let mut model = CostModel::default();
    let n = ((50_000_000.0 * cfg.scale) as u64).max(1_000_000);
    let l = 20usize;
    let q = vec![1.0 / l as f64; l];
    let mut rng = root_rng(cfg.seed ^ 0x24);
    let start = Instant::now();
    let x = multinomial(n, &q, &mut rng);
    let per_trial = start.elapsed().as_nanos() as f64 / n as f64;
    model.binv_trial_ns = per_trial.clamp(0.5, 100.0);
    (model, per_trial, x)
}

/// Figure 24: strong scaling of parallel multinomial generation,
/// `N = 10000B`, `ℓ = 20`, uniform probabilities.
pub fn fig24(cfg: &ExpConfig) -> Report {
    let (model, per_trial, sample) = calibrated(cfg);
    let n = 10_000_000_000_000u64; // the paper's 10000B trials
    let ps = [64usize, 128, 256, 512, 1024];
    let series = multinomial_strong_scaling(n, 20, &ps, &model);
    // Real distributed-semantics verification at small scale: the
    // partitioned draw (what each virtual rank computes) sums to N.
    let verify_n = 1_000_000u64;
    let mut rng = root_rng(cfg.seed ^ 0x2424);
    let verify = multinomial_partitioned(verify_n, &[0.05; 20], 64, &mut rng);
    assert_eq!(verify.iter().sum::<u64>(), verify_n);

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(p, time_s, speedup)| vec![p.to_string(), f(*time_s, 1), f(*speedup, 1)])
        .collect();
    let rendered = format!(
        "{}\nmeasured BINV cost: {per_trial:.2} ns/trial (host calibration)\n\
         paper: 71 s and speedup 925 at p = 1024\n",
        table(&["p", "time (s)", "speedup"], &rows)
    );
    Report {
        id: "fig24".into(),
        title: "multinomial strong scaling, N = 10000B, l = 20".into(),
        data: json!({
            "series": series.iter().map(|(p, t, s)| json!({"p": p, "time_s": t, "speedup": s})).collect::<Vec<_>>(),
            "measured_ns_per_trial": per_trial,
            "calibration_sample_sum": sample.iter().sum::<u64>(),
            "paper": {"p": 1024, "time_s": 71, "speedup": 925},
        }),
        rendered,
    }
}

/// Figure 25: weak scaling, `N = p × 20B`, `ℓ = p`, uniform.
pub fn fig25(cfg: &ExpConfig) -> Report {
    let (model, per_trial, _) = calibrated(cfg);
    let ps = [64usize, 128, 256, 512, 1024];
    let series = multinomial_weak_scaling(20_000_000_000, &ps, &model);
    // Semantics check: trial shares partition N exactly at every p.
    for &p in &ps {
        let n = p as u64 * 1000;
        let total: u64 = (0..p).map(|r| trial_share(n, p, r)).sum();
        assert_eq!(total, n);
    }
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(p, time_s)| vec![p.to_string(), f(*time_s, 2)])
        .collect();
    let rendered = format!(
        "{}\nmeasured BINV cost: {per_trial:.2} ns/trial\n\
         paper: near-constant runtime across p (perfect weak scaling)\n",
        table(&["p", "time (s)"], &rows)
    );
    Report {
        id: "fig25".into(),
        title: "multinomial weak scaling, N = p x 20B, l = p".into(),
        data: json!({
            "series": series.iter().map(|(p, t)| json!({"p": p, "time_s": t})).collect::<Vec<_>>(),
            "measured_ns_per_trial": per_trial,
        }),
        rendered,
    }
}
