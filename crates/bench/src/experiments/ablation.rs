//! Ablations of design choices the paper motivates but does not plot:
//!
//! - **quota policy**: Algorithm 2 selects partners (and the multinomial
//!   splits quotas) with probability `|E_i|/|E|`. Replacing that with a
//!   uniform `1/p` breaks the stochastic equivalence argument — the
//!   ablation measures how much similarity degrades on a CP-partitioned
//!   clustered graph, where partition loads skew the most.
//! - **network latency**: the distributed algorithm is latency-bound
//!   (each operation's critical path is a short message chain), so
//!   predicted speedup at large `p` should scale almost inversely with
//!   the interconnect latency.

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::{ParallelConfig, QuotaPolicy, StepSize};
use edgeswitch_core::error_rate::error_rate;
use edgeswitch_core::run::Run;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::SchemeKind;
use edgeswitch_scalesim::{des_parallel, CostModel};
use serde_json::json;

/// Quota-policy ablation: error rate and workload skew, edge-proportional
/// vs uniform, CP on the Miami stand-in.
pub fn ablation_quota(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    let p = 64;
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for (label, policy) in [
        ("|E_i|/|E| (paper)", QuotaPolicy::EdgeProportional),
        ("uniform 1/p (ablation)", QuotaPolicy::Uniform),
    ] {
        let mut er_sum = 0.0;
        let mut contended = 0u64;
        let mut forfeited = 0u64;
        for rep in 0..cfg.reps {
            let seed = cfg.seed ^ (0xab1a * (rep as u64 + 1));
            let gs = Run::sequential()
                .switches(t)
                .seed(seed ^ 1)
                .execute(&g)
                .into_sequential()
                .expect("sequential run")
                .graph;
            let out = Run::simulated(p)
                .switches(t)
                .scheme(SchemeKind::Consecutive)
                .step_size(StepSize::FractionOfT(100))
                .quota_policy(policy)
                .seed(seed ^ 2)
                .execute(&g)
                .into_parallel()
                .expect("parallel outcome");
            er_sum += error_rate(&gs, &out.graph, 20);
            contended += out.per_rank.iter().map(|s| s.aborts_contended).sum::<u64>();
            forfeited += out.forfeited();
        }
        let n = cfg.reps as f64;
        rows.push(vec![
            label.to_string(),
            f(er_sum / n, 3),
            f(contended as f64 / n, 0),
            f(forfeited as f64 / n, 0),
        ]);
        data.push(json!({"policy": label, "error_rate": er_sum / n,
                         "contended_aborts": contended as f64 / n,
                         "forfeited": forfeited as f64 / n}));
    }
    Report {
        id: "ablation-quota".into(),
        title: "ablation: edge-proportional vs uniform quota/partner weighting".into(),
        data: serde_json::Value::Array(data),
        rendered: table(
            &[
                "quota policy",
                "ER(seq,par) %",
                "contended aborts",
                "forfeited",
            ],
            &rows,
        ),
    }
}

/// Latency ablation: predicted speedup at `p = 1024` against interconnect
/// latency (everything else fixed).
pub fn ablation_latency(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Pa100M, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for mult in [0.5f64, 1.0, 2.0, 4.0] {
        let mut cost = CostModel::default();
        cost.latency_ns *= mult;
        let pcfg = ParallelConfig::new(1024)
            .with_scheme(SchemeKind::Consecutive)
            .with_step_size(StepSize::FractionOfT(100))
            .with_seed(cfg.seed);
        let (_, report) = des_parallel(&g, t, &pcfg, &cost);
        rows.push(vec![
            format!("{:.0}", cost.latency_ns),
            f(report.speedup, 1),
            f(report.runtime_ns / 1e6, 1),
        ]);
        data.push(
            json!({"latency_ns": cost.latency_ns, "speedup": report.speedup,
                         "runtime_ms": report.runtime_ns / 1e6}),
        );
    }
    Report {
        id: "ablation-latency".into(),
        title: "ablation: speedup at p = 1024 vs interconnect latency (PA graph)".into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["latency (ns)", "speedup", "runtime (ms)"], &rows),
    }
}
