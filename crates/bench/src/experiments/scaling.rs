//! Scaling figures: strong scaling (Figures 4, 14, 15), weak scaling
//! (Figures 5, 23) and the adversarial worst case (Figure 22), all on
//! the virtual cluster (`edgeswitch-scalesim`).

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops, scaling_processor_grid};
use edgeswitch_core::config::{ParallelConfig, StepSize};
use edgeswitch_dist::rng::root_rng;
use edgeswitch_graph::generators::{preferential_attachment, Dataset};
use edgeswitch_graph::partition::adversary::division_worst_case;
use edgeswitch_graph::{Partitioner, SchemeKind};
use edgeswitch_scalesim::{
    strong_scaling, strong_scaling_with, weak_scaling, CostModel, ScalePoint,
};
use serde_json::json;

fn cfg_for(scheme: SchemeKind, seed: u64) -> impl Fn(usize) -> ParallelConfig {
    move |p| {
        ParallelConfig::new(p)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(100))
            .with_seed(seed)
    }
}

fn render_curves(curves: &[(String, Vec<ScalePoint>)]) -> String {
    let mut rows = Vec::new();
    for (name, pts) in curves {
        for pt in pts {
            rows.push(vec![
                name.clone(),
                pt.p.to_string(),
                f(pt.runtime_s, 3),
                f(pt.speedup, 1),
                f(pt.workload_imbalance, 2),
            ]);
        }
    }
    table(&["series", "p", "time (s)", "speedup", "imbalance"], &rows)
}

fn curves_json(curves: &[(String, Vec<ScalePoint>)]) -> serde_json::Value {
    json!(curves
        .iter()
        .map(|(name, pts)| json!({"series": name, "points": pts}))
        .collect::<Vec<_>>())
}

/// Strong scaling of the CP algorithm over the eight scaling datasets
/// (Figure 4): visit rate 1, step size `t/100`.
pub fn fig4(cfg: &ExpConfig) -> Report {
    strong_scaling_figure(
        cfg,
        SchemeKind::Consecutive,
        "fig4",
        "strong scaling, CP scheme, 8 graphs (x = 1, s = t/100)",
    )
}

/// Strong scaling of the HP-U algorithm (Figure 14).
pub fn fig14(cfg: &ExpConfig) -> Report {
    strong_scaling_figure(
        cfg,
        SchemeKind::HashUniversal,
        "fig14",
        "strong scaling, HP-U scheme, 8 graphs (x = 1, s = t/100)",
    )
}

fn strong_scaling_figure(cfg: &ExpConfig, scheme: SchemeKind, id: &str, title: &str) -> Report {
    let cost = CostModel::default();
    let ps = scaling_processor_grid();
    let mut curves = Vec::new();
    for ds in Dataset::scaling_set() {
        let g = dataset_graph(ds, cfg.scale, cfg.seed);
        let t = full_visit_ops(g.num_edges());
        let pts = strong_scaling(&g, t, &ps, &cost, cfg_for(scheme, cfg.seed));
        curves.push((ds.name().to_string(), pts));
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: curves_json(&curves),
        rendered: render_curves(&curves),
    }
}

/// Strong-scaling comparison of all four schemes on Miami and PA
/// (Figure 15).
pub fn fig15(cfg: &ExpConfig) -> Report {
    let cost = CostModel::default();
    let ps = scaling_processor_grid();
    let mut curves = Vec::new();
    for ds in [Dataset::Miami, Dataset::Pa100M] {
        let g = dataset_graph(ds, cfg.scale, cfg.seed);
        let t = full_visit_ops(g.num_edges());
        for scheme in SchemeKind::all() {
            let pts = strong_scaling(&g, t, &ps, &cost, cfg_for(scheme, cfg.seed));
            curves.push((format!("{}/{}", ds.name(), scheme.label()), pts));
        }
    }
    Report {
        id: "fig15".into(),
        title: "strong scaling by partitioning scheme, Miami & PA".into(),
        data: curves_json(&curves),
        rendered: render_curves(&curves),
    }
}

/// Weak scaling of the CP algorithm on PA graphs (Figure 5): a fixed
/// graph and a `p`-proportional graph, `t = p·c`, `s = t/1000`.
pub fn fig5(cfg: &ExpConfig) -> Report {
    weak_scaling_figure(
        cfg,
        &[SchemeKind::Consecutive],
        "fig5",
        "weak scaling, CP scheme, fixed & growing PA graphs",
    )
}

/// Weak scaling of all four schemes (Figure 23).
pub fn fig23(cfg: &ExpConfig) -> Report {
    weak_scaling_figure(
        cfg,
        &SchemeKind::all(),
        "fig23",
        "weak scaling comparison of the four schemes on PA graphs",
    )
}

fn weak_scaling_figure(cfg: &ExpConfig, schemes: &[SchemeKind], id: &str, title: &str) -> Report {
    let cost = CostModel::default();
    let ps = vec![16usize, 64, 256, 1024];
    // Paper: growing = p × 0.1M vertices, fixed = 102.4M vertices,
    // t = p × 10M, s = t/1000. Scaled 1/1000 (and by cfg.scale).
    let per_p_vertices = ((100.0 * cfg.scale) as usize).max(50);
    let fixed_n = ((102_400.0 * cfg.scale) as usize).max(2000);
    let ops_per_p = ((10_000.0 * cfg.scale) as u64).max(1000);
    let seed = cfg.seed;
    let mut curves = Vec::new();
    for &scheme in schemes {
        let make_config = move |p: usize| {
            ParallelConfig::new(p)
                .with_scheme(scheme)
                .with_step_size(StepSize::FractionOfT(1000))
                .with_seed(seed)
        };
        let growing = weak_scaling(
            &ps,
            &cost,
            |p| {
                let mut rng = root_rng(seed ^ p as u64);
                let n = (per_p_vertices * p).max(64);
                (
                    preferential_attachment(n, 10, &mut rng),
                    ops_per_p * p as u64,
                )
            },
            make_config,
        );
        curves.push((format!("{}/growing", scheme.label()), growing));
        let fixed_graph = {
            let mut rng = root_rng(seed ^ 0xF1BED);
            preferential_attachment(fixed_n, 10, &mut rng)
        };
        let fixed = weak_scaling(
            &ps,
            &cost,
            |p| (fixed_graph.clone(), ops_per_p * p as u64),
            make_config,
        );
        curves.push((format!("{}/fixed", scheme.label()), fixed));
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: curves_json(&curves),
        rendered: render_curves(&curves),
    }
}

/// Adversarial worst case for HP-D (Figure 22): speedup at `p = 1024`
/// of the relabeled PA graph under each scheme.
pub fn fig22(cfg: &ExpConfig) -> Report {
    let cost = CostModel::default();
    let p = 1024usize;
    let g = dataset_graph(Dataset::Pa100M, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    // Relabel so HP-D piles the high-degree vertices on one rank.
    let relabeled = division_worst_case(&g, p, p / 4).apply(&g);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    let mut run = |label: &str, graph: &edgeswitch_graph::Graph, part: Partitioner, scheme| {
        let pts = strong_scaling_with(graph, t, &[p], &cost, cfg_for(scheme, cfg.seed), |_| {
            part.clone()
        });
        let pt = &pts[0];
        rows.push(vec![
            label.to_string(),
            f(pt.speedup, 1),
            f(pt.workload_imbalance, 2),
        ]);
        data.push(json!({"scheme": label, "speedup": pt.speedup,
                         "imbalance": pt.workload_imbalance}));
    };
    let mut rng = root_rng(cfg.seed ^ 0x22);
    run(
        "HP-D (adversarial labels)",
        &relabeled,
        Partitioner::hash_division(p),
        SchemeKind::HashDivision,
    );
    run(
        "HP-D (natural labels)",
        &g,
        Partitioner::hash_division(p),
        SchemeKind::HashDivision,
    );
    run(
        "HP-U (adversarial labels)",
        &relabeled,
        Partitioner::hash_universal(p, &mut rng),
        SchemeKind::HashUniversal,
    );
    run(
        "CP (adversarial labels)",
        &relabeled,
        Partitioner::consecutive(&relabeled, p),
        SchemeKind::Consecutive,
    );
    Report {
        id: "fig22".into(),
        title: "worst-case scenario speedups on PA, p = 1024".into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["configuration", "speedup", "imbalance"], &rows),
    }
}
