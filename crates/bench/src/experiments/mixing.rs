//! Mixing efficiency: operations to reach a target visit rate, edge
//! switching vs. global Curveball trades.
//!
//! Not a paper figure. The paper's objective is a *target visit rate*
//! (Section 3.1): switching needs `t = (m/2)(H_m − H_{(1−x)m})`
//! operations because uniform edge sampling keeps revisiting edges it
//! has already touched — the coupon-collector tail. A global Curveball
//! trade re-deals two whole neighborhoods in one operation and marks
//! every re-dealt edge visited, so a single pass of `⌊n/2⌋` trades
//! covers almost the whole edge set at once.
//!
//! This experiment measures both schemes to the same target on the
//! three hotpath graph families, sequentially and on the threaded
//! engine at p = 4. Two work ledgers are recorded per case:
//!
//! - `ops` — scheme-native operations (performed switches, or trades),
//!   the number the schedulers and the protocol pay per operation;
//! - `edges_moved` — edges re-dealt (2 per switch; the disjoint-union
//!   size per trade), the per-edge mutation work.
//!
//! Run via `repro mixing` (or `repro mixing --quick --gate-mixing` in
//! CI); the repro binary archives the structured result as
//! `BENCH_mixing.json` with schema `{"bench": "mixing", "metric":
//! "ops_to_target", "target_rate": ..., "provenance": ..., "cases":
//! [...]}`.

use super::ExpConfig;
use crate::report::{f, provenance, table, Report};
use edgeswitch_core::config::Randomizer;
use edgeswitch_core::run::Run;
use edgeswitch_core::trade::{sequential_curveball, TradeBudget};
use edgeswitch_dist::harmonic::switch_ops_for_visit_rate;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{erdos_renyi_gnm, preferential_attachment, small_world};
use edgeswitch_graph::Graph;
use serde_json::json;
use std::time::Instant;

/// Visit-rate target every scheme runs to.
const TARGET_RATE: f64 = 0.9;

/// Rank count for the threaded-engine cases.
const THREADED_P: usize = 4;

/// Below this edge count the quick-scale gate skips: a handful of trades
/// covers the whole graph and the ratio measures granularity, not mixing.
const GATE_MIN_EDGES: u64 = 200;

fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

/// The same three families as `hotpath`, at `scale` of their 100k-edge
/// reference size: uniform (ER), heavy-tailed (PA), clustered (WS).
fn families(cfg: &ExpConfig) -> Vec<(&'static str, Graph)> {
    let mut rng = root_rng(cfg.seed);
    let er = erdos_renyi_gnm(
        scaled(20_000, cfg.scale, 64),
        scaled(100_000, cfg.scale, 128),
        &mut rng,
    );
    let pa = preferential_attachment(scaled(10_000, cfg.scale, 64), 10, &mut rng);
    let ws = small_world(scaled(20_000, cfg.scale, 64), 10, 0.1, &mut rng);
    vec![
        ("erdos_renyi_100k", er),
        ("preferential_100k", pa),
        ("small_world_100k", ws),
    ]
}

/// One measured case: scheme-native ops, edges re-dealt, achieved rate,
/// and the best-of-`reps` wall time on identical (seeded) work.
struct Case {
    scheme: &'static str,
    mode: &'static str,
    p: usize,
    ops: u64,
    edges_moved: u64,
    achieved: f64,
    reached: bool,
    best_secs: f64,
}

fn best_of<F: FnMut() -> Case>(reps: u32, mut run: F) -> Case {
    let mut best = run();
    for _ in 1..reps.max(1) {
        let next = run();
        if next.best_secs < best.best_secs {
            best = next;
        }
    }
    best
}

fn switch_sequential(graph: &Graph, seed: u64, reps: u32) -> Case {
    let run = Run::sequential().visit_rate(TARGET_RATE).seed(seed);
    best_of(reps, || {
        let start = Instant::now();
        let out = run.execute(graph);
        let secs = start.elapsed().as_secs_f64();
        let achieved = out.visit_rate();
        Case {
            scheme: "switch",
            mode: "sequential",
            p: 1,
            ops: out.performed(),
            edges_moved: 2 * out.performed(),
            achieved,
            // The expected-t prescription lands near the target in
            // expectation; a near miss is the formula working, not a
            // stall.
            reached: achieved >= 0.9 * TARGET_RATE,
            best_secs: secs,
        }
    })
}

// Stays on the trade engine directly: the `edges_moved` ledger needs
// `CurveballOutcome::neighbors_moved`, which the `Run` facade's
// driver-independent outcome does not surface.
fn curveball_sequential(graph: &Graph, seed: u64, reps: u32) -> Case {
    best_of(reps, || {
        let mut g = graph.clone();
        let start = Instant::now();
        let out = sequential_curveball(&mut g, TradeBudget::VisitRate(TARGET_RATE), seed);
        let secs = start.elapsed().as_secs_f64();
        let achieved = out.visit_rate();
        Case {
            scheme: "curveball",
            mode: "sequential",
            p: 1,
            ops: out.trades,
            edges_moved: out.neighbors_moved,
            achieved,
            reached: achieved >= TARGET_RATE,
            best_secs: secs,
        }
    })
}

fn switch_threaded(graph: &Graph, seed: u64, reps: u32) -> Case {
    let t = switch_ops_for_visit_rate(graph.num_edges() as u64, TARGET_RATE);
    let run = Run::parallel(THREADED_P).switches(t).seed(seed);
    best_of(reps, || {
        let start = Instant::now();
        let out = run.execute(graph);
        let secs = start.elapsed().as_secs_f64();
        let achieved = out.visit_rate();
        Case {
            scheme: "switch",
            mode: "threaded",
            p: THREADED_P,
            ops: out.performed(),
            edges_moved: 2 * out.performed(),
            achieved,
            reached: achieved >= 0.9 * TARGET_RATE,
            best_secs: secs,
        }
    })
}

fn curveball_threaded(graph: &Graph, seed: u64, reps: u32) -> Case {
    let run = Run::parallel(THREADED_P)
        .randomizer(Randomizer::Curveball)
        .visit_rate(TARGET_RATE)
        .seed(seed);
    best_of(reps, || {
        let start = Instant::now();
        let out = run
            .execute(graph)
            .into_parallel()
            .expect("parallel outcome");
        let secs = start.elapsed().as_secs_f64();
        let achieved = out.visit_rate();
        Case {
            scheme: "curveball",
            mode: "threaded",
            p: THREADED_P,
            ops: out.performed(),
            edges_moved: out.telemetry.iter().map(|s| s.neighbors_moved).sum(),
            achieved,
            reached: achieved >= TARGET_RATE,
            best_secs: secs,
        }
    })
}

/// `mixing` — work to a target visit rate, switch vs. Curveball.
pub fn mixing(cfg: &ExpConfig) -> Report {
    let mut cases = Vec::new();
    let mut rows = Vec::new();
    for (family, graph) in families(cfg) {
        let (n, m) = (graph.num_vertices(), graph.num_edges());
        let measured = [
            switch_sequential(&graph, cfg.seed, cfg.reps),
            curveball_sequential(&graph, cfg.seed, cfg.reps),
            switch_threaded(&graph, cfg.seed, cfg.reps),
            curveball_threaded(&graph, cfg.seed, cfg.reps),
        ];
        for c in measured {
            let ops_per_sec = if c.best_secs > 0.0 {
                c.ops as f64 / c.best_secs
            } else {
                0.0
            };
            cases.push(json!({
                "family": family,
                "scheme": c.scheme,
                "mode": c.mode,
                "p": c.p,
                "n": n,
                "m": m,
                "target_rate": TARGET_RATE,
                "ops": c.ops,
                "edges_moved": c.edges_moved,
                "achieved_rate": c.achieved,
                "reached": c.reached,
                "wall_secs": c.best_secs,
                "ops_per_sec": ops_per_sec,
            }));
            rows.push(vec![
                family.to_string(),
                c.scheme.into(),
                c.mode.into(),
                c.p.to_string(),
                m.to_string(),
                c.ops.to_string(),
                c.edges_moved.to_string(),
                f(c.achieved, 3),
                f(c.best_secs, 3),
                f(ops_per_sec, 0),
            ]);
        }
    }
    let rendered = table(
        &[
            "family",
            "scheme",
            "mode",
            "p",
            "m",
            "ops",
            "edges_moved",
            "rate",
            "secs",
            "ops/sec",
        ],
        &rows,
    );
    Report {
        id: "mixing".into(),
        title: format!("work to visit rate {TARGET_RATE} (switch vs curveball)"),
        data: json!({
            "bench": "mixing",
            "metric": "ops_to_target",
            "target_rate": TARGET_RATE,
            "provenance": provenance(),
            "cases": cases,
        }),
        rendered,
    }
}

/// Mixing-efficiency gate over an already-computed mixing report: on the
/// heavy-tailed PA family, sequential Curveball must reach the target
/// visit rate in at most half the operations sequential switching needs.
/// *Skips* (`Ok` with a notice, not a failure) when the quick-scale
/// instance is too small to mix meaningfully — fewer than
/// [`GATE_MIN_EDGES`] edges, or a Curveball run that stalled below the
/// target. Returns the notice or pass summary in `Ok`, a human-readable
/// error in `Err`.
pub fn mixing_gate(data: &serde_json::Value) -> Result<String, String> {
    let case = |scheme: &str| {
        data["cases"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|c| {
                c["family"].as_str() == Some("preferential_100k")
                    && c["scheme"].as_str() == Some(scheme)
                    && c["mode"].as_str() == Some("sequential")
            })
            .cloned()
    };
    let sw = case("switch").ok_or("gate: no PA sequential switch case")?;
    let cb = case("curveball").ok_or("gate: no PA sequential curveball case")?;
    let m = sw["m"].as_u64().unwrap_or(0);
    if m < GATE_MIN_EDGES {
        return Ok(format!(
            "skipped: PA instance too small to mix (m = {m} < {GATE_MIN_EDGES})"
        ));
    }
    if cb["reached"].as_bool() != Some(true) {
        return Ok(format!(
            "skipped: curveball stalled at rate {:.3} below target {TARGET_RATE} (too small to mix)",
            cb["achieved_rate"].as_f64().unwrap_or(0.0)
        ));
    }
    let sw_ops = sw["ops"].as_u64().ok_or("gate: switch case has no ops")?;
    let cb_ops = cb["ops"]
        .as_u64()
        .ok_or("gate: curveball case has no ops")?;
    if sw_ops == 0 {
        return Err("gate: switch case performed zero operations".into());
    }
    let ratio = cb_ops as f64 / sw_ops as f64;
    if ratio > 0.5 {
        return Err(format!(
            "mixing regression: curveball needed {cb_ops} trades vs {sw_ops} switches \
             on PA ({ratio:.2}x; ceiling 0.50x)"
        ));
    }
    Ok(format!(
        "curveball at {ratio:.2}x switch ops to rate {TARGET_RATE} on PA \
         ({cb_ops} trades vs {sw_ops} switches)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_smoke_at_tiny_scale() {
        let cfg = ExpConfig {
            scale: 0.01,
            reps: 1,
            seed: 7,
            timeline: false,
        };
        let r = mixing(&cfg);
        assert_eq!(r.id, "mixing");
        assert_eq!(r.data["bench"].as_str(), Some("mixing"));
        assert_eq!(r.data["metric"].as_str(), Some("ops_to_target"));
        assert!(!r.data["provenance"]["rustc"].as_str().unwrap().is_empty());
        let cases = r.data["cases"].as_array().unwrap();
        // 3 families × 2 schemes × 2 modes.
        assert_eq!(cases.len(), 12);
        for c in cases {
            assert!(c["ops"].as_u64().unwrap() > 0, "no work recorded: {c:?}");
            assert!(c["edges_moved"].as_u64().unwrap() > 0);
            assert!(c["achieved_rate"].as_f64().unwrap() > 0.0);
            if c["scheme"].as_str() == Some("curveball") {
                // The pass controller stops at the first boundary at or
                // past the target.
                assert!(c["achieved_rate"].as_f64().unwrap() >= TARGET_RATE);
            }
        }
        assert!(r.rendered.contains("curveball"));
        // The headline claim holds even at smoke scale: trades reach the
        // target in far fewer operations on every family.
        assert!(mixing_gate(&r.data).unwrap().contains("curveball at"));
    }

    #[test]
    fn mixing_gate_reads_the_report_schema() {
        let ok = json!({"cases": [
            {"family": "preferential_100k", "scheme": "switch", "mode": "sequential",
             "m": 1000, "ops": 1000, "reached": true, "achieved_rate": 0.9},
            {"family": "preferential_100k", "scheme": "curveball", "mode": "sequential",
             "m": 1000, "ops": 100, "reached": true, "achieved_rate": 0.95},
        ]});
        assert!(mixing_gate(&ok).unwrap().contains("0.10x"));
        let bad = json!({"cases": [
            {"family": "preferential_100k", "scheme": "switch", "mode": "sequential",
             "m": 1000, "ops": 1000, "reached": true, "achieved_rate": 0.9},
            {"family": "preferential_100k", "scheme": "curveball", "mode": "sequential",
             "m": 1000, "ops": 800, "reached": true, "achieved_rate": 0.95},
        ]});
        assert!(mixing_gate(&bad).unwrap_err().contains("mixing regression"));
        // Tiny instance or a stalled curveball run skips, not fails.
        let tiny = json!({"cases": [
            {"family": "preferential_100k", "scheme": "switch", "mode": "sequential",
             "m": 64, "ops": 100, "reached": true, "achieved_rate": 0.9},
            {"family": "preferential_100k", "scheme": "curveball", "mode": "sequential",
             "m": 64, "ops": 90, "reached": true, "achieved_rate": 0.95},
        ]});
        assert!(mixing_gate(&tiny).unwrap().contains("skipped"));
        let stalled = json!({"cases": [
            {"family": "preferential_100k", "scheme": "switch", "mode": "sequential",
             "m": 1000, "ops": 1000, "reached": true, "achieved_rate": 0.9},
            {"family": "preferential_100k", "scheme": "curveball", "mode": "sequential",
             "m": 1000, "ops": 900, "reached": false, "achieved_rate": 0.4},
        ]});
        assert!(mixing_gate(&stalled).unwrap().contains("skipped"));
        assert!(mixing_gate(&json!({"cases": []})).is_err());
    }
}
