//! Load-balance figures (16–21): vertex, edge, and workload
//! distributions per partitioning scheme, before and after a full-visit
//! run, including the adversarial HP-D worst case.

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::{ParallelConfig, StepSize};
use edgeswitch_core::parallel::simulate_parallel_with;
use edgeswitch_dist::rng::root_rng;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::partition::adversary::division_worst_case;
use edgeswitch_graph::partition::stats::{coefficient_of_variation, imbalance, PartitionStats};
use edgeswitch_graph::{Graph, Partitioner, SchemeKind};
use serde_json::json;

/// World size for the distribution figures. The paper uses `p = 1024`
/// on graphs 1000× larger; at this repository's dataset scale the same
/// per-partition load (~1-2k edges, tens of vertices) corresponds to
/// `p = 64`.
const P: usize = 64;

/// Distribution figures get a 2× dataset-scale boost so partitions hold
/// multiple label communities (the regime where CP's migration skew is
/// visible).
fn lb_scale(cfg: &ExpConfig) -> f64 {
    cfg.scale * 2.0
}

fn build(scheme: SchemeKind, g: &Graph, seed: u64) -> Partitioner {
    let mut rng = root_rng(seed ^ 0x10ad);
    Partitioner::build(scheme, g, P, &mut rng)
}

/// Mean of the first and last deciles — the paper's CP skew is a
/// monotone drift across ranks (low ranks gain edges, high ranks lose
/// them), which min/max statistics alone do not show.
fn decile_means(counts: &[u64]) -> (f64, f64) {
    let k = (counts.len() / 10).max(1);
    let head = counts[..k].iter().sum::<u64>() as f64 / k as f64;
    let tail = counts[counts.len() - k..].iter().sum::<u64>() as f64 / k as f64;
    (head, tail)
}

fn summarize(counts: &[u64]) -> Vec<String> {
    let (head, tail) = decile_means(counts);
    let min = *counts.iter().min().unwrap_or(&0);
    let max = *counts.iter().max().unwrap_or(&0);
    let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
    vec![
        min.to_string(),
        max.to_string(),
        f(mean, 1),
        f(imbalance(counts), 3),
        f(coefficient_of_variation(counts), 3),
        f(head, 1),
        f(tail, 1),
    ]
}

fn summary_json(counts: &[u64]) -> serde_json::Value {
    let (head, tail) = decile_means(counts);
    json!({
        "first_decile_mean": head,
        "last_decile_mean": tail,
        "min": counts.iter().min(),
        "max": counts.iter().max(),
        "mean": counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64,
        "imbalance": imbalance(counts),
        "cv": coefficient_of_variation(counts),
        "counts": counts,
    })
}

const SUMMARY_HEADER: [&str; 9] = [
    "scheme",
    "quantity",
    "min",
    "max",
    "mean",
    "max/mean",
    "cv",
    "rank 0-10%",
    "rank 90-100%",
];

/// Figure 16: vertices per processor, by scheme (Miami).
pub fn fig16(cfg: &ExpConfig) -> Report {
    initial_distribution(
        cfg,
        true,
        "fig16",
        "vertices per processor by scheme, Miami, p = 64",
    )
}

/// Figure 17: initial edges per processor, by scheme (Miami).
pub fn fig17(cfg: &ExpConfig) -> Report {
    initial_distribution(
        cfg,
        false,
        "fig17",
        "initial edges per processor by scheme, Miami, p = 64",
    )
}

fn initial_distribution(cfg: &ExpConfig, vertices: bool, id: &str, title: &str) -> Report {
    let g = dataset_graph(Dataset::Miami, lb_scale(cfg), cfg.seed);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for scheme in SchemeKind::all() {
        let part = build(scheme, &g, cfg.seed);
        let stats = PartitionStats::measure(&g, &part);
        let counts = if vertices {
            &stats.vertices
        } else {
            &stats.edges
        };
        let mut row = vec![
            scheme.label().to_string(),
            if vertices { "vertices" } else { "edges" }.to_string(),
        ];
        row.extend(summarize(counts));
        rows.push(row);
        data.push(json!({"scheme": scheme.label(), "summary": summary_json(counts)}));
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: serde_json::Value::Array(data),
        rendered: table(&SUMMARY_HEADER, &rows),
    }
}

/// Run a full-visit parallel process and return (final edges, workload).
fn full_run(g: &Graph, scheme: SchemeKind, part: &Partitioner, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let t = full_visit_ops(g.num_edges());
    let pcfg = ParallelConfig::new(P)
        .with_scheme(scheme)
        .with_step_size(StepSize::FractionOfT(100))
        .with_seed(seed);
    let out = simulate_parallel_with(g, t, &pcfg, part);
    (out.final_edges.clone(), out.workload())
}

/// Figure 18: edges per processor at completion, by scheme (Miami). CP's
/// distribution skews badly (clustered label-local edges migrate away);
/// HP schemes stay balanced.
pub fn fig18(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, lb_scale(cfg), cfg.seed);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for scheme in SchemeKind::all() {
        let part = build(scheme, &g, cfg.seed);
        let (final_edges, _) = full_run(&g, scheme, &part, cfg.seed);
        let mut row = vec![scheme.label().to_string(), "final edges".to_string()];
        row.extend(summarize(&final_edges));
        rows.push(row);
        data.push(json!({"scheme": scheme.label(), "summary": summary_json(&final_edges)}));
    }
    Report {
        id: "fig18".into(),
        title: "edges per processor at completion by scheme, Miami, p = 64".into(),
        data: serde_json::Value::Array(data),
        rendered: table(&SUMMARY_HEADER, &rows),
    }
}

/// Figure 19: workload (switch operations) per processor, Miami.
pub fn fig19(cfg: &ExpConfig) -> Report {
    workload_figure(
        cfg,
        Dataset::Miami,
        "fig19",
        "workload distribution by scheme, Miami, p = 64",
    )
}

/// Figure 20: workload per processor, PA graph.
pub fn fig20(cfg: &ExpConfig) -> Report {
    workload_figure(
        cfg,
        Dataset::Pa100M,
        "fig20",
        "workload distribution by scheme, PA, p = 64",
    )
}

fn workload_figure(cfg: &ExpConfig, ds: Dataset, id: &str, title: &str) -> Report {
    let g = dataset_graph(ds, lb_scale(cfg), cfg.seed);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for scheme in SchemeKind::all() {
        let part = build(scheme, &g, cfg.seed);
        let (_, workload) = full_run(&g, scheme, &part, cfg.seed);
        let mut row = vec![scheme.label().to_string(), "switch ops".to_string()];
        row.extend(summarize(&workload));
        rows.push(row);
        data.push(json!({"scheme": scheme.label(), "summary": summary_json(&workload)}));
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: serde_json::Value::Array(data),
        rendered: table(&SUMMARY_HEADER, &rows),
    }
}

/// Figure 21: the adversarial HP-D worst case — the relabeled PA graph
/// piles its hubs on one processor, whose workload dwarfs the rest.
pub fn fig21(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Pa100M, lb_scale(cfg), cfg.seed);
    let target = P / 4;
    let relabeled = division_worst_case(&g, P, target).apply(&g);
    let part = Partitioner::hash_division(P);
    let (_, workload) = full_run(&relabeled, SchemeKind::HashDivision, &part, cfg.seed);
    let hot = workload[target];
    let rest_mean = (workload.iter().sum::<u64>() - hot) as f64 / (P - 1) as f64;
    let mut row = vec!["HP-D adversarial".to_string(), "switch ops".to_string()];
    row.extend(summarize(&workload));
    let rendered = format!(
        "{}\nhot rank {target}: {hot} ops vs {rest_mean:.1} mean elsewhere ({:.1}x)\n",
        table(&SUMMARY_HEADER, &[row]),
        hot as f64 / rest_mean.max(1.0),
    );
    Report {
        id: "fig21".into(),
        title: "adversarial worst-case workload, HP-D on relabeled PA, p = 64".into(),
        data: json!({
            "target_rank": target,
            "hot_workload": hot,
            "mean_other": rest_mean,
            "summary": summary_json(&workload),
        }),
        rendered,
    }
}
