//! Table 3: error-rate comparison of the parallel schemes against the
//! sequential algorithm — HP schemes in a single step, CP in one step
//! and with step size `t/100`.

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::StepSize;
use edgeswitch_core::error_rate::error_rate;
use edgeswitch_core::run::Run;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::SchemeKind;
use serde_json::json;

const P: usize = 64;
const R_BLOCKS: usize = 20;

/// Table 3 (visit rate 1, r = 20, averaged over reps).
///
/// The paper runs p = 1024 on graphs with m/p ≈ 50k edges per
/// partition; at this repository's 1/1000 dataset scale the same
/// per-partition load corresponds to p = 64, which is what we use —
/// keeping p at 1024 would starve partitions (~15 edges each) and
/// overstate contention effects the paper's regime never sees.
pub fn table3(cfg: &ExpConfig) -> Report {
    let graphs = [Dataset::Miami, Dataset::SmallWorld, Dataset::LiveJournal];
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for ds in graphs {
        let base = dataset_graph(ds, cfg.scale, cfg.seed);
        let t = full_visit_ops(base.num_edges());
        let mut seq_seq = 0.0;
        let mut scheme_er = [0.0f64; 5]; // HP-D, HP-M, HP-U (1 step), CP 1 step, CP t/100
        for rep in 0..cfg.reps {
            let seed = cfg.seed ^ (0x7ab1e3 * (rep as u64 + 1));
            let sequential = |s: u64| {
                Run::sequential()
                    .switches(t)
                    .seed(s)
                    .execute(&base)
                    .into_sequential()
                    .expect("sequential run")
                    .graph
            };
            let gs1 = sequential(seed ^ 1);
            let gs2 = sequential(seed ^ 2);
            seq_seq += error_rate(&gs1, &gs2, R_BLOCKS);

            let runs: [(usize, SchemeKind, StepSize); 5] = [
                (0, SchemeKind::HashDivision, StepSize::SingleStep),
                (1, SchemeKind::HashMultiplication, StepSize::SingleStep),
                (2, SchemeKind::HashUniversal, StepSize::SingleStep),
                (3, SchemeKind::Consecutive, StepSize::SingleStep),
                (4, SchemeKind::Consecutive, StepSize::FractionOfT(100)),
            ];
            for (slot, scheme, step) in runs {
                let out = Run::simulated(P)
                    .switches(t)
                    .scheme(scheme)
                    .step_size(step)
                    .seed(seed ^ (slot as u64 + 3))
                    .execute(&base)
                    .into_parallel()
                    .expect("parallel outcome");
                scheme_er[slot] += error_rate(&gs1, &out.graph, R_BLOCKS);
            }
        }
        let n = cfg.reps as f64;
        seq_seq /= n;
        for er in scheme_er.iter_mut() {
            *er /= n;
        }
        rows.push(vec![
            ds.name().into(),
            f(seq_seq, 3),
            f(scheme_er[0], 3),
            f(scheme_er[1], 3),
            f(scheme_er[2], 3),
            f(scheme_er[3], 3),
            f(scheme_er[4], 3),
        ]);
        data.push(json!({
            "graph": ds.name(),
            "seq_vs_seq": seq_seq,
            "hpd_1step": scheme_er[0],
            "hpm_1step": scheme_er[1],
            "hpu_1step": scheme_er[2],
            "cp_1step": scheme_er[3],
            "cp_t100": scheme_er[4],
        }));
    }
    Report {
        id: "table3".into(),
        title: format!("error-rate comparison of schemes vs sequential (x = 1, p = {P}, r = 20)"),
        data: serde_json::Value::Array(data),
        rendered: table(
            &[
                "network",
                "seq-vs-seq",
                "HP-D 1step",
                "HP-M 1step",
                "HP-U 1step",
                "CP 1step",
                "CP t/100",
            ],
            &rows,
        ),
    }
}
