//! Visit-rate accuracy (Table 1, Figure 2) and the dataset inventory
//! (Table 2).

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::run::Run;
use edgeswitch_dist::switch_ops_for_visit_rate;
use edgeswitch_graph::generators::Dataset;
use serde_json::json;

/// Desired visit-rate grid of Section 3.1: `x = 0.1, 0.2, …, 1.0`.
fn visit_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// Observed visit rates per desired rate, over `reps` sequential runs on
/// the Miami stand-in.
fn observe(cfg: &ExpConfig) -> Vec<(f64, Vec<f64>)> {
    let base = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let m = base.num_edges() as u64;
    visit_grid()
        .into_iter()
        .map(|x| {
            let t = switch_ops_for_visit_rate(m, x);
            let observed: Vec<f64> = (0..cfg.reps)
                .map(|rep| {
                    Run::sequential()
                        .switches(t)
                        .seed(cfg.seed ^ (rep as u64 + 1) ^ (x * 1000.0) as u64)
                        .execute(&base)
                        .visit_rate()
                })
                .collect();
            (x, observed)
        })
        .collect()
}

/// Table 1: average error rate and standard deviation of observed visit
/// rates against the desired rates.
pub fn table1(cfg: &ExpConfig) -> Report {
    let series = observe(cfg);
    let mut rows = Vec::new();
    let mut abs_err_sum = 0.0;
    let mut x_sum = 0.0;
    let mut max_err: f64 = 0.0;
    for (x, obs) in &series {
        let mean = obs.iter().sum::<f64>() / obs.len() as f64;
        let var = obs.iter().map(|o| (o - mean) * (o - mean)).sum::<f64>() / obs.len() as f64;
        for o in obs {
            abs_err_sum += (x - o).abs();
            x_sum += x;
            max_err = max_err.max((x - o).abs() / x * 100.0);
        }
        rows.push(vec![
            f(*x, 1),
            f(mean, 6),
            format!("{:.2e}", var.sqrt()),
            f((x - mean).abs() / x * 100.0, 4),
        ]);
    }
    let avg_err = abs_err_sum / x_sum * 100.0;
    let rendered = format!(
        "{}\naverage error rate = {:.4}%  (paper: avg 0.007%, max 0.027%)\nmax error rate = {max_err:.4}%\n",
        table(&["x (desired)", "mean observed", "stddev", "err %"], &rows),
        avg_err
    );
    Report {
        id: "table1".into(),
        title: "visit-rate accuracy of t = E[T]/2 (Section 3.1)".into(),
        data: json!({
            "series": series.iter().map(|(x, obs)| json!({"x": x, "observed": obs})).collect::<Vec<_>>(),
            "avg_error_pct": avg_err,
            "max_error_pct": max_err,
            "paper": {"avg_error_pct": 0.007, "max_error_pct": 0.027},
        }),
        rendered,
    }
}

/// Figure 2: desired vs observed visit rate with min/max bars.
pub fn fig2(cfg: &ExpConfig) -> Report {
    let series = observe(cfg);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(x, obs)| {
            let min = obs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = obs.iter().cloned().fold(0.0, f64::max);
            vec![f(*x, 1), f(min, 6), f(max, 6)]
        })
        .collect();
    Report {
        id: "fig2".into(),
        title: "observed vs desired visit rate (error bars = min/max)".into(),
        data: json!(series
            .iter()
            .map(|(x, obs)| json!({"x": x, "observed": obs}))
            .collect::<Vec<_>>()),
        rendered: table(&["desired x", "observed min", "observed max"], &rows),
    }
}

/// Table 2: dataset inventory — paper sizes and this repro's scaled
/// stand-ins, with the generated graphs' actual statistics.
pub fn table2(cfg: &ExpConfig) -> Report {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for ds in Dataset::scaling_set() {
        let spec = ds.spec(cfg.scale);
        let g = dataset_graph(ds, cfg.scale, cfg.seed);
        rows.push(vec![
            spec.name.to_string(),
            spec.class.to_string(),
            format!(
                "{:.2}M/{:.1}M",
                spec.paper_vertices as f64 / 1e6,
                spec.paper_edges as f64 / 1e6
            ),
            format!("{}", g.num_vertices()),
            format!("{}", g.num_edges()),
            f(g.avg_degree(), 2),
            f(spec.avg_degree, 2),
            format!("{}", full_visit_ops(g.num_edges())),
        ]);
        data.push(serde_json::json!({
            "name": spec.name, "class": spec.class,
            "paper_vertices": spec.paper_vertices, "paper_edges": spec.paper_edges,
            "n": g.num_vertices(), "m": g.num_edges(),
            "avg_degree": g.avg_degree(), "paper_avg_degree": spec.avg_degree,
        }));
    }
    Report {
        id: "table2".into(),
        title: "dataset inventory (scaled stand-ins for Table 2)".into(),
        data: serde_json::Value::Array(data),
        rendered: table(
            &[
                "network",
                "class",
                "paper n/m",
                "n",
                "m",
                "avg deg",
                "paper deg",
                "t(x=1)",
            ],
            &rows,
        ),
    }
}
