//! One experiment per table/figure of the paper. Each function returns a
//! [`Report`]; the `repro` binary dispatches by
//! id and archives results under `results/`.

pub mod ablation;
pub mod genscale;
pub mod hotpath;
pub mod loadbalance;
pub mod mixing;
pub mod multinomial;
pub mod properties;
pub mod scaling;
pub mod similarity;
pub mod stepsize;
pub mod telemetry;
pub mod trace;
pub mod visit;

use crate::report::Report;

/// Shared experiment knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Dataset scale (1.0 = the default 1/1000-of-paper size).
    pub scale: f64,
    /// Repetitions for experiments reporting averages over runs.
    pub reps: u32,
    /// Master seed.
    pub seed: u64,
    /// `repro trace` only: include the per-step timeline in the report
    /// data (the repro binary additionally writes it as `trace.jsonl`
    /// when invoked with `--timeline`).
    pub timeline: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            reps: 3,
            seed: 20140901, // ICPP 2014
            timeline: false,
        }
    }
}

/// All experiment ids, in the paper's presentation order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1", "fig2", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
        "fig21", "fig22", "fig23", "table3", "fig24", "fig25",
    ]
}

/// Ablation experiment ids (not paper figures; run via `repro <id>` or
/// `repro ablations`).
pub fn ablation_ids() -> Vec<&'static str> {
    vec!["ablation-quota", "ablation-latency"]
}

/// Diagnostic experiment ids (protocol telemetry, not paper figures; run
/// via `repro <id>` or `repro diagnostics`).
pub fn diagnostic_ids() -> Vec<&'static str> {
    vec!["telemetry-steps", "trace"]
}

/// Performance-tracking experiment ids (not paper figures; the repro
/// binary archives these as `BENCH_<id>.json` for regression tracking).
pub fn perf_ids() -> Vec<&'static str> {
    vec!["hotpath", "mixing", "genscale"]
}

/// Run one experiment by id; `None` for an unknown id.
pub fn run(id: &str, cfg: &ExpConfig) -> Option<Report> {
    Some(match id {
        "ablation-quota" => ablation::ablation_quota(cfg),
        "ablation-latency" => ablation::ablation_latency(cfg),
        "telemetry-steps" => telemetry::telemetry_steps(cfg),
        "trace" => trace::trace(cfg),
        "hotpath" => hotpath::hotpath(cfg),
        "mixing" => mixing::mixing(cfg),
        "genscale" => genscale::genscale(cfg),
        "table1" => visit::table1(cfg),
        "fig2" => visit::fig2(cfg),
        "table2" => visit::table2(cfg),
        "fig4" => scaling::fig4(cfg),
        "fig5" => scaling::fig5(cfg),
        "fig6" => stepsize::fig6(cfg),
        "fig7" => stepsize::fig7(cfg),
        "fig8" => stepsize::fig8(cfg),
        "fig9" => stepsize::fig9(cfg),
        "fig10" => stepsize::fig10(cfg),
        "fig11" => stepsize::fig11(cfg),
        "fig12" => properties::fig12(cfg),
        "fig13" => properties::fig13(cfg),
        "fig14" => scaling::fig14(cfg),
        "fig15" => scaling::fig15(cfg),
        "fig16" => loadbalance::fig16(cfg),
        "fig17" => loadbalance::fig17(cfg),
        "fig18" => loadbalance::fig18(cfg),
        "fig19" => loadbalance::fig19(cfg),
        "fig20" => loadbalance::fig20(cfg),
        "fig21" => loadbalance::fig21(cfg),
        "fig22" => scaling::fig22(cfg),
        "fig23" => scaling::fig23(cfg),
        "table3" => similarity::table3(cfg),
        "fig24" => multinomial::fig24(cfg),
        "fig25" => multinomial::fig25(cfg),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", &ExpConfig::default()).is_none());
    }

    #[test]
    fn all_ids_are_known() {
        // Smoke-run only the cheapest one; the rest are covered by the
        // repro binary and integration tests.
        assert!(all_ids().contains(&"table1"));
        assert_eq!(all_ids().len(), 26);
    }
}
