//! Step-size studies (Figures 6–11): the CP scheme's trade-off between
//! speedup (larger steps amortize the collectives) and error rate
//! (larger steps let `q` go stale).

use super::ExpConfig;
use crate::report::{f, table, Report};
use crate::{dataset_graph, full_visit_ops};
use edgeswitch_core::config::{ParallelConfig, StepSize};
use edgeswitch_core::error_rate::error_rate;
use edgeswitch_core::run::Run;
use edgeswitch_graph::generators::Dataset;
use edgeswitch_graph::{Graph, SchemeKind};
use edgeswitch_scalesim::{des_parallel, CostModel};
use serde_json::json;

/// Block count of the error-rate metric (the paper uses `r = 20`).
const R_BLOCKS: usize = 20;

/// Step sizes studied, as divisors of `t` (the paper's absolute sizes
/// 0.5M–9.4M on Miami's t = 468M correspond to roughly t/1000 … t/50).
fn step_divisors() -> Vec<u64> {
    vec![1000, 300, 100, 30, 10]
}

fn speedup_at(
    g: &Graph,
    t: u64,
    p: usize,
    div: u64,
    scheme: SchemeKind,
    seed: u64,
    cost: &CostModel,
) -> f64 {
    let cfg = ParallelConfig::new(p)
        .with_scheme(scheme)
        .with_step_size(StepSize::FractionOfT(div))
        .with_seed(seed);
    let (_, report) = des_parallel(g, t, &cfg, cost);
    report.speedup
}

/// Mean error rate between `reps` parallel runs and matched sequential
/// runs; also returns the seq-vs-seq baseline.
fn error_rates(
    g: &Graph,
    t: u64,
    p: usize,
    step: StepSize,
    scheme: SchemeKind,
    cfg: &ExpConfig,
) -> (f64, f64) {
    let mut par_vs_seq = 0.0;
    let mut seq_vs_seq = 0.0;
    for rep in 0..cfg.reps {
        let seed = cfg.seed ^ (0x51e9 * (rep as u64 + 1));
        let sequential = |s: u64| {
            Run::sequential()
                .switches(t)
                .seed(s)
                .execute(g)
                .into_sequential()
                .expect("sequential run")
                .graph
        };
        let gs1 = sequential(seed ^ 1);
        let gs2 = sequential(seed ^ 2);
        let out = Run::simulated(p)
            .switches(t)
            .scheme(scheme)
            .step_size(step)
            .seed(seed ^ 3)
            .execute(g)
            .into_parallel()
            .expect("parallel outcome");
        par_vs_seq += error_rate(&gs1, &out.graph, R_BLOCKS);
        seq_vs_seq += error_rate(&gs1, &gs2, R_BLOCKS);
    }
    (par_vs_seq / cfg.reps as f64, seq_vs_seq / cfg.reps as f64)
}

/// Figure 6: strong scaling of CP on Miami for several step sizes.
pub fn fig6(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    let cost = CostModel::default();
    let ps = [64usize, 256, 1024];
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for div in step_divisors() {
        for &p in &ps {
            let s = speedup_at(&g, t, p, div, SchemeKind::Consecutive, cfg.seed, &cost);
            rows.push(vec![format!("t/{div}"), p.to_string(), f(s, 1)]);
            data.push(json!({"step": format!("t/{div}"), "p": p, "speedup": s}));
        }
    }
    Report {
        id: "fig6".into(),
        title: "strong scaling vs step size, Miami, CP".into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["step size", "p", "speedup"], &rows),
    }
}

/// Figure 7: error rate vs processors for several step sizes (CP,
/// Miami) — roughly flat in `p`.
pub fn fig7(cfg: &ExpConfig) -> Report {
    let g = dataset_graph(Dataset::Miami, cfg.scale, cfg.seed);
    let t = full_visit_ops(g.num_edges());
    // Scaled-down p grid: the paper's m/p ≈ 50k per partition maps to
    // p ≤ 256 at 1/1000 dataset scale.
    let ps = [16usize, 64, 256];
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for div in [1000u64, 100, 10] {
        for &p in &ps {
            let (er, base) = error_rates(
                &g,
                t,
                p,
                StepSize::FractionOfT(div),
                SchemeKind::Consecutive,
                cfg,
            );
            rows.push(vec![
                format!("t/{div}"),
                p.to_string(),
                f(er, 3),
                f(base, 3),
            ]);
            data.push(json!({"step": format!("t/{div}"), "p": p,
                             "error_rate": er, "seq_baseline": base}));
        }
    }
    Report {
        id: "fig7".into(),
        title: "error rate vs p per step size, Miami, CP (r = 20)".into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["step size", "p", "ER(seq,par) %", "ER(seq,seq) %"], &rows),
    }
}

/// Figure 8: speedup vs step size at `p = 1024` (Miami, CP).
pub fn fig8(cfg: &ExpConfig) -> Report {
    step_sweep_speedup(
        cfg,
        &[Dataset::Miami],
        "fig8",
        "speedup vs step size, Miami, CP, p = 1024",
    )
}

/// Figure 9: error rate vs step size at `p = 1024` with the seq-vs-seq
/// baseline (Miami, CP).
pub fn fig9(cfg: &ExpConfig) -> Report {
    step_sweep_error(
        cfg,
        &[Dataset::Miami],
        "fig9",
        "error rate vs step size, Miami, CP, p = 64 (r = 20)",
    )
}

/// Figure 10: speedup vs step size for four graphs.
pub fn fig10(cfg: &ExpConfig) -> Report {
    step_sweep_speedup(
        cfg,
        &[
            Dataset::Flickr,
            Dataset::Miami,
            Dataset::LiveJournal,
            Dataset::ErdosRenyi,
        ],
        "fig10",
        "speedup vs step size, 4 graphs, CP, p = 1024",
    )
}

/// Figure 11: error rate vs step size for four graphs.
pub fn fig11(cfg: &ExpConfig) -> Report {
    step_sweep_error(
        cfg,
        &[
            Dataset::Flickr,
            Dataset::Miami,
            Dataset::LiveJournal,
            Dataset::ErdosRenyi,
        ],
        "fig11",
        "error rate vs step size, 4 graphs, CP, p = 64 (r = 20)",
    )
}

fn step_sweep_speedup(cfg: &ExpConfig, sets: &[Dataset], id: &str, title: &str) -> Report {
    let cost = CostModel::default();
    let p = 1024;
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &ds in sets {
        let g = dataset_graph(ds, cfg.scale, cfg.seed);
        let t = full_visit_ops(g.num_edges());
        for div in step_divisors() {
            let s = speedup_at(&g, t, p, div, SchemeKind::Consecutive, cfg.seed, &cost);
            rows.push(vec![ds.name().into(), format!("t/{div}"), f(s, 1)]);
            data.push(json!({"graph": ds.name(), "step": format!("t/{div}"), "speedup": s}));
        }
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: serde_json::Value::Array(data),
        rendered: table(&["graph", "step size", "speedup"], &rows),
    }
}

fn step_sweep_error(cfg: &ExpConfig, sets: &[Dataset], id: &str, title: &str) -> Report {
    // Error-rate sweeps use p = 64 to keep the paper's per-partition
    // load at this dataset scale (see table3's note).
    let p = 64;
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &ds in sets {
        let g = dataset_graph(ds, cfg.scale, cfg.seed);
        let t = full_visit_ops(g.num_edges());
        for div in step_divisors() {
            let (er, base) = error_rates(
                &g,
                t,
                p,
                StepSize::FractionOfT(div),
                SchemeKind::Consecutive,
                cfg,
            );
            rows.push(vec![
                ds.name().into(),
                format!("t/{div}"),
                f(er, 3),
                f(base, 3),
            ]);
            data.push(json!({"graph": ds.name(), "step": format!("t/{div}"),
                             "error_rate": er, "seq_baseline": base}));
        }
    }
    Report {
        id: id.into(),
        title: title.into(),
        data: serde_json::Value::Array(data),
        rendered: table(
            &["graph", "step size", "ER(seq,par) %", "ER(seq,seq) %"],
            &rows,
        ),
    }
}
