//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro list                      # show experiment ids
//! repro fig4 [--scale 0.5] ...    # one experiment
//! repro all [--out results]       # everything, archived to --out
//! repro serve --ckpt DIR          # run the randomization job server
//! repro serve --smoke             # CI gate: kill + resume bit-identity
//! ```

use edgeswitch_bench::experiments::{
    ablation_ids, all_ids, diagnostic_ids,
    genscale::{genscale_child_from_env, mem_gate},
    hotpath::{batch_gate, local_gate, probe_gate, proc_gate, scaling_gate},
    mixing::mixing_gate,
    perf_ids, run, ExpConfig,
};
use edgeswitch_bench::report::Report;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|ablations|diagnostics|list> [--scale S] [--reps N] [--seed X] [--out DIR] [--quick] [--timeline] [--gate-scaling] [--gate-probe] [--gate-local] [--gate-batch] [--gate-proc] [--gate-mixing] [--gate-mem]\n\
         \x20      repro serve [--listen ADDR] [--ckpt DIR] [--pool N] [--queue N] [--chunk N] [--ckpt-every N] [--smoke]\n\
         experiments: {}",
        all_ids().join(", ")
    );
    std::process::exit(2);
}

/// `trace --timeline` additionally spills the per-step rows as
/// newline-delimited JSON (`trace.jsonl` in the invocation directory),
/// one row per `(driver, step)`, ready for `jq`/pandas.
fn spill_timeline(report: &Report) {
    let Some(rows) = report.data["timeline"].as_array() else {
        return;
    };
    if rows.is_empty() {
        return;
    }
    let body: String = rows
        .iter()
        .map(|row| serde_json::to_string(row).expect("serializable row") + "\n")
        .collect();
    std::fs::write("trace.jsonl", body).expect("write timeline");
    println!("# wrote trace.jsonl ({} rows)", rows.len());
}

/// Perf-tracking experiments additionally archive their structured data
/// as `BENCH_<id>.json` in the invocation directory (the repo root when
/// run from a checkout), giving later changes a trajectory to regress
/// against.
fn archive_perf(report: &Report) {
    if !perf_ids().contains(&report.id.as_str()) {
        return;
    }
    let path = format!("BENCH_{}.json", report.id);
    let body = serde_json::to_string_pretty(&report.data).expect("serializable report");
    std::fs::write(&path, body + "\n").expect("write benchmark archive");
    println!("# archived {path}");
}

fn main() {
    // Process-backend rank children re-enter through here: with the shm
    // environment set this runs the rank loop and exits, so a `repro`
    // invocation benching `Backend::Process` can re-spawn its own binary.
    edgeswitch_core::parallel::child_entry_from_env();
    // Likewise for per-case genscale children: with the genscale case
    // environment set this runs one measurement and exits, so each case
    // gets its own VmHWM.
    genscale_child_from_env();

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let target = args[0].clone();
    if target == "serve" {
        serve_main(&args[1..]);
    }
    let mut cfg = ExpConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut gate_scaling = false;
    let mut gate_probe = false;
    let mut gate_local = false;
    let mut gate_batch = false;
    let mut gate_proc = false;
    let mut gate_mixing = false;
    let mut gate_mem = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--reps" => {
                cfg.reps = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out_dir = args
                    .get(i + 1)
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--quick" => {
                // CI smoke mode: tiny instances, single rep.
                cfg.scale = 0.02;
                cfg.reps = 1;
                i += 1;
            }
            "--timeline" => {
                // Include per-step rows in the trace report and spill
                // them as trace.jsonl next to the BENCH archives.
                cfg.timeline = true;
                i += 1;
            }
            "--gate-scaling" => {
                // CI anti-scaling guard (hotpath only): exit non-zero if
                // threaded p=2 falls below p=1 on the quick ER case.
                gate_scaling = true;
                i += 1;
            }
            "--gate-local" => {
                // CI fast-path guard (hotpath only): exit non-zero if
                // threaded p=1 at the default window falls below 75% of
                // sequential throughput on the quick ER case.
                gate_local = true;
                i += 1;
            }
            "--gate-batch" => {
                // CI speculative-batch guard (hotpath only): exit
                // non-zero if threaded p=1 with batching on falls below
                // 90% of sequential throughput on the quick ER case.
                gate_batch = true;
                i += 1;
            }
            "--gate-proc" => {
                // CI process-scaling guard (hotpath only): exit non-zero
                // if process p=2 falls below 1.3x process p=1 on the
                // quick ER case. Auto-skips (with a notice) on 1-core
                // runners and platforms without the process backend.
                gate_proc = true;
                i += 1;
            }
            "--gate-mixing" => {
                // CI mixing-efficiency guard (mixing only): exit non-zero
                // if sequential Curveball needs more than half the
                // operations sequential switching needs to reach the
                // target visit rate on the quick PA case. Auto-skips
                // (with a notice) when the instance is too small to mix.
                gate_mixing = true;
                i += 1;
            }
            "--gate-mem" => {
                // CI streamed-construction memory guard (genscale only):
                // exit non-zero if building one rank's store from the
                // generator stream peaks above 0.6x the peak RSS of the
                // materialize-then-split path at the same m. Auto-skips
                // (with a notice) where VmHWM is unavailable.
                gate_mem = true;
                i += 1;
            }
            "--gate-probe" => {
                // CI probe-overhead guard (hotpath only): exit non-zero
                // if the no-op probe costs more than 3% of the frozen
                // uninstrumented baseline.
                gate_probe = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    match target.as_str() {
        "list" => {
            for id in all_ids() {
                println!("{id}");
            }
            for id in ablation_ids() {
                println!("{id}");
            }
            for id in diagnostic_ids() {
                println!("{id}");
            }
            for id in perf_ids() {
                println!("{id}");
            }
        }
        "ablations" => {
            for id in ablation_ids() {
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
            }
        }
        "diagnostics" => {
            for id in diagnostic_ids() {
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
            }
        }
        "all" => {
            println!(
                "# reproducing all {} experiments (scale {}, {} reps, seed {})",
                all_ids().len(),
                cfg.scale,
                cfg.reps,
                cfg.seed
            );
            let total = Instant::now();
            for id in all_ids() {
                let start = Instant::now();
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
                println!("# {id} took {:.1}s\n", start.elapsed().as_secs_f64());
            }
            println!(
                "# total: {:.1}s; archived to {}",
                total.elapsed().as_secs_f64(),
                out_dir.display()
            );
        }
        id => match run(id, &cfg) {
            Some(report) => {
                report.print();
                report.save(&out_dir).expect("write results");
                archive_perf(&report);
                if report.id == "trace" && cfg.timeline {
                    spill_timeline(&report);
                }
                if gate_scaling && report.id == "hotpath" {
                    match scaling_gate(&report.data) {
                        Ok(()) => println!("# scaling gate: ok (threaded p=2 >= p=1 on ER)"),
                        Err(why) => {
                            eprintln!("# scaling gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_local && report.id == "hotpath" {
                    match local_gate(&report.data) {
                        Ok(()) => {
                            println!("# local gate: ok (threaded p=1 >= 0.75x sequential on ER)")
                        }
                        Err(why) => {
                            eprintln!("# local gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_batch && report.id == "hotpath" {
                    match batch_gate(&report.data) {
                        Ok(()) => println!(
                            "# batch gate: ok (threaded p=1 with batching >= 0.90x sequential on ER)"
                        ),
                        Err(why) => {
                            eprintln!("# batch gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_probe && report.id == "hotpath" {
                    match probe_gate(&report.data) {
                        Ok(()) => println!("# probe gate: ok (no-op probe within 3% of baseline)"),
                        Err(why) => {
                            eprintln!("# probe gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_proc && report.id == "hotpath" {
                    match proc_gate(&report.data) {
                        Ok(note) => println!("# proc gate: {note}"),
                        Err(why) => {
                            eprintln!("# proc gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_mem && report.id == "genscale" {
                    match mem_gate(&report.data) {
                        Ok(note) => println!("# mem gate: {note}"),
                        Err(why) => {
                            eprintln!("# mem gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_mixing && report.id == "mixing" {
                    match mixing_gate(&report.data) {
                        Ok(note) => println!("# mixing gate: {note}"),
                        Err(why) => {
                            eprintln!("# mixing gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            None => usage(),
        },
    }
}

// ---------------------------------------------------------------------------
// `repro serve`: the randomization job server, plus the CI smoke gate.
// ---------------------------------------------------------------------------

/// `repro serve [--listen ADDR] [--ckpt DIR] [--pool N] [--queue N]
/// [--chunk N] [--ckpt-every N] [--smoke]`
///
/// Without `--smoke`: bind the job server, print `SERVE <addr>` on
/// stdout (machine-readable; resolves `--listen 127.0.0.1:0` to the
/// actual port) and serve until a `shutdown` op arrives.
///
/// With `--smoke`: the CI gate. Spawns this same binary as a child
/// server, submits a quick ER job and streams its progress, submits a
/// second job and SIGKILLs the server mid-run, respawns the server on
/// the same checkpoint directory, and fails (exit 1) unless both jobs
/// finish with digests bit-identical to uninterrupted in-process
/// reference runs.
fn serve_main(args: &[String]) -> ! {
    let mut listen = String::from("127.0.0.1:4517");
    let mut ckpt: Option<PathBuf> = None;
    let mut sched = edgeswitch_svc::SchedOpts::default();
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        let flag_val = |idx: usize| args.get(idx + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--listen" => {
                listen = flag_val(i);
                i += 2;
            }
            "--ckpt" => {
                ckpt = Some(PathBuf::from(flag_val(i)));
                i += 2;
            }
            "--pool" => {
                sched.pool = flag_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--queue" => {
                sched.queue_cap = flag_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--chunk" => {
                sched.worker.chunk = flag_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--ckpt-every" => {
                sched.worker.ckpt_every = flag_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    if smoke {
        let dir = ckpt.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("repro-serve-smoke-{}", std::process::id()))
        });
        let _ = std::fs::remove_dir_all(&dir);
        match serve_smoke(&dir) {
            Ok(()) => {
                let _ = std::fs::remove_dir_all(&dir);
                println!("# serve smoke: ok");
                std::process::exit(0);
            }
            Err(why) => {
                eprintln!("# serve smoke FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
    let dir = ckpt.unwrap_or_else(|| PathBuf::from("svc-ckpt"));
    let server = edgeswitch_svc::Server::bind(
        &listen,
        edgeswitch_svc::ServerOpts {
            ckpt_dir: dir.clone(),
            sched,
        },
    )
    .unwrap_or_else(|err| {
        eprintln!("# serve: cannot bind {listen}: {err}");
        std::process::exit(1);
    });
    println!("SERVE {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().expect("server run");
    std::process::exit(0);
}

/// Spawn this binary as a child `repro serve` process over `dir` and
/// read the bound address off its stdout.
fn spawn_server(dir: &std::path::Path) -> Result<(std::process::Child, String), String> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--ckpt",
            &dir.display().to_string(),
            "--pool",
            "4",
            "--queue",
            "8",
            "--chunk",
            "512",
            "--ckpt-every",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn server: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.map_err(|e| format!("read server stdout: {e}"))?;
        if let Some(addr) = line.strip_prefix("SERVE ") {
            return Ok((child, addr.to_string()));
        }
    }
    let _ = child.kill();
    Err("server exited without printing its address".into())
}

/// Uninterrupted in-process reference for a job spec: digest of the
/// switched graph plus operations performed.
fn smoke_reference(job: &str) -> Result<(String, u64), String> {
    let spec = edgeswitch_svc::JobSpec::from_json(
        &edgeswitch_svc::json::parse(job).map_err(|e| format!("bad smoke job: {e}"))?,
    )?;
    let graph = spec.graph.build()?;
    let out = spec.as_run().execute(&graph);
    Ok((
        format!("{:#018x}", out.graph().edge_digest()),
        out.performed(),
    ))
}

fn serve_smoke(dir: &std::path::Path) -> Result<(), String> {
    use edgeswitch_svc::{Client, Json};
    use std::time::Duration;

    // Job 1: quick, streams to completion. Job 2: long enough that the
    // SIGKILL below lands mid-run (checkpoints every 512 switches).
    let quick = r#"{"graph":{"type":"er","n":120,"m":480,"seed":5},
                    "budget":{"switches":400},"driver":"simulated","p":2,"seed":11,"window":4}"#;
    let long = r#"{"graph":{"type":"er","n":120,"m":480,"seed":5},
                   "budget":{"switches":3000000},"driver":"sequential","seed":23}"#;
    let quick_ref = smoke_reference(quick)?;
    let long_ref = smoke_reference(long)?;

    let (mut child, addr) = spawn_server(dir)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;

    // Quick job: submit, wait, stream the event log, check the digest.
    let quick_id = client
        .submit_json(quick)
        .map_err(|e| format!("submit quick: {e}"))?
        .map_err(|r| format!("quick job rejected: {}", r.to_json()))?;
    let result = client
        .wait_done(quick_id, Duration::from_secs(120))
        .map_err(|e| format!("quick job: {e}"))?;
    let digest = result.get("digest").and_then(Json::as_str).unwrap_or("");
    if digest != quick_ref.0 {
        let _ = child.kill();
        return Err(format!(
            "quick job digest {digest} != reference {}",
            quick_ref.0
        ));
    }
    let (events, _) = client
        .events(quick_id, 0)
        .map_err(|e| format!("events: {e}"))?;
    let steps = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("step"))
        .count();
    if steps == 0 {
        let _ = child.kill();
        return Err("quick job streamed no step events".into());
    }
    println!(
        "# smoke: quick job ok ({} events, {steps} steps, digest {digest})",
        events.len()
    );

    // Long job: wait for its first on-disk snapshot, then SIGKILL the
    // server out from under it.
    let long_id = client
        .submit_json(long)
        .map_err(|e| format!("submit long: {e}"))?
        .map_err(|r| format!("long job rejected: {}", r.to_json()))?;
    let snapshot = dir.join(format!("{long_id}.ckpt"));
    let done = dir.join(format!("{long_id}.done"));
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !snapshot.exists() && !done.exists() {
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            return Err("long job never wrote a checkpoint".into());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let finished_first = done.exists();
    child.kill().map_err(|e| format!("kill server: {e}"))?;
    child.wait().map_err(|e| format!("reap server: {e}"))?;
    println!(
        "# smoke: server SIGKILLed {}",
        if finished_first {
            "after the long job finished (fast host); restart still must serve it"
        } else {
            "mid-run; restart must resume from the snapshot"
        }
    );

    // Respawn over the same checkpoint directory: the long job must
    // finish bit-identically, and the quick job's result must survive.
    let (mut child, addr) = spawn_server(dir)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("reconnect {addr}: {e}"))?;
    let result = client
        .wait_done(long_id, Duration::from_secs(300))
        .map_err(|e| format!("resumed long job: {e}"))?;
    let digest = result.get("digest").and_then(Json::as_str).unwrap_or("");
    let performed = result.get("performed").and_then(Json::as_u64).unwrap_or(0);
    if digest != long_ref.0 || performed != long_ref.1 {
        let _ = child.kill();
        return Err(format!(
            "resumed long job diverged: digest {digest} (want {}), performed {performed} (want {})",
            long_ref.0, long_ref.1
        ));
    }
    let again = client
        .wait_done(quick_id, Duration::from_secs(30))
        .map_err(|e| format!("quick job after restart: {e}"))?;
    if again.get("digest").and_then(Json::as_str) != Some(&quick_ref.0[..]) {
        let _ = child.kill();
        return Err("quick job result changed across restart".into());
    }
    println!("# smoke: resumed long job bit-identical (digest {digest}, {performed} switches)");
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    child.wait().map_err(|e| format!("reap server: {e}"))?;
    Ok(())
}
