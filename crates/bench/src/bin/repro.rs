//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro list                      # show experiment ids
//! repro fig4 [--scale 0.5] ...    # one experiment
//! repro all [--out results]       # everything, archived to --out
//! ```

use edgeswitch_bench::experiments::{
    ablation_ids, all_ids, diagnostic_ids,
    hotpath::{batch_gate, local_gate, probe_gate, proc_gate, scaling_gate},
    mixing::mixing_gate,
    perf_ids, run, ExpConfig,
};
use edgeswitch_bench::report::Report;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|ablations|diagnostics|list> [--scale S] [--reps N] [--seed X] [--out DIR] [--quick] [--timeline] [--gate-scaling] [--gate-probe] [--gate-local] [--gate-batch] [--gate-proc] [--gate-mixing]\n\
         experiments: {}",
        all_ids().join(", ")
    );
    std::process::exit(2);
}

/// `trace --timeline` additionally spills the per-step rows as
/// newline-delimited JSON (`trace.jsonl` in the invocation directory),
/// one row per `(driver, step)`, ready for `jq`/pandas.
fn spill_timeline(report: &Report) {
    let Some(rows) = report.data["timeline"].as_array() else {
        return;
    };
    if rows.is_empty() {
        return;
    }
    let body: String = rows
        .iter()
        .map(|row| serde_json::to_string(row).expect("serializable row") + "\n")
        .collect();
    std::fs::write("trace.jsonl", body).expect("write timeline");
    println!("# wrote trace.jsonl ({} rows)", rows.len());
}

/// Perf-tracking experiments additionally archive their structured data
/// as `BENCH_<id>.json` in the invocation directory (the repo root when
/// run from a checkout), giving later changes a trajectory to regress
/// against.
fn archive_perf(report: &Report) {
    if !perf_ids().contains(&report.id.as_str()) {
        return;
    }
    let path = format!("BENCH_{}.json", report.id);
    let body = serde_json::to_string_pretty(&report.data).expect("serializable report");
    std::fs::write(&path, body + "\n").expect("write benchmark archive");
    println!("# archived {path}");
}

fn main() {
    // Process-backend rank children re-enter through here: with the shm
    // environment set this runs the rank loop and exits, so a `repro`
    // invocation benching `Backend::Process` can re-spawn its own binary.
    edgeswitch_core::parallel::child_entry_from_env();

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let target = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut gate_scaling = false;
    let mut gate_probe = false;
    let mut gate_local = false;
    let mut gate_batch = false;
    let mut gate_proc = false;
    let mut gate_mixing = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--reps" => {
                cfg.reps = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out_dir = args
                    .get(i + 1)
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--quick" => {
                // CI smoke mode: tiny instances, single rep.
                cfg.scale = 0.02;
                cfg.reps = 1;
                i += 1;
            }
            "--timeline" => {
                // Include per-step rows in the trace report and spill
                // them as trace.jsonl next to the BENCH archives.
                cfg.timeline = true;
                i += 1;
            }
            "--gate-scaling" => {
                // CI anti-scaling guard (hotpath only): exit non-zero if
                // threaded p=2 falls below p=1 on the quick ER case.
                gate_scaling = true;
                i += 1;
            }
            "--gate-local" => {
                // CI fast-path guard (hotpath only): exit non-zero if
                // threaded p=1 at the default window falls below 75% of
                // sequential throughput on the quick ER case.
                gate_local = true;
                i += 1;
            }
            "--gate-batch" => {
                // CI speculative-batch guard (hotpath only): exit
                // non-zero if threaded p=1 with batching on falls below
                // 90% of sequential throughput on the quick ER case.
                gate_batch = true;
                i += 1;
            }
            "--gate-proc" => {
                // CI process-scaling guard (hotpath only): exit non-zero
                // if process p=2 falls below 1.3x process p=1 on the
                // quick ER case. Auto-skips (with a notice) on 1-core
                // runners and platforms without the process backend.
                gate_proc = true;
                i += 1;
            }
            "--gate-mixing" => {
                // CI mixing-efficiency guard (mixing only): exit non-zero
                // if sequential Curveball needs more than half the
                // operations sequential switching needs to reach the
                // target visit rate on the quick PA case. Auto-skips
                // (with a notice) when the instance is too small to mix.
                gate_mixing = true;
                i += 1;
            }
            "--gate-probe" => {
                // CI probe-overhead guard (hotpath only): exit non-zero
                // if the no-op probe costs more than 3% of the frozen
                // uninstrumented baseline.
                gate_probe = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    match target.as_str() {
        "list" => {
            for id in all_ids() {
                println!("{id}");
            }
            for id in ablation_ids() {
                println!("{id}");
            }
            for id in diagnostic_ids() {
                println!("{id}");
            }
            for id in perf_ids() {
                println!("{id}");
            }
        }
        "ablations" => {
            for id in ablation_ids() {
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
            }
        }
        "diagnostics" => {
            for id in diagnostic_ids() {
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
            }
        }
        "all" => {
            println!(
                "# reproducing all {} experiments (scale {}, {} reps, seed {})",
                all_ids().len(),
                cfg.scale,
                cfg.reps,
                cfg.seed
            );
            let total = Instant::now();
            for id in all_ids() {
                let start = Instant::now();
                let report = run(id, &cfg).expect("known id");
                report.print();
                report.save(&out_dir).expect("write results");
                println!("# {id} took {:.1}s\n", start.elapsed().as_secs_f64());
            }
            println!(
                "# total: {:.1}s; archived to {}",
                total.elapsed().as_secs_f64(),
                out_dir.display()
            );
        }
        id => match run(id, &cfg) {
            Some(report) => {
                report.print();
                report.save(&out_dir).expect("write results");
                archive_perf(&report);
                if report.id == "trace" && cfg.timeline {
                    spill_timeline(&report);
                }
                if gate_scaling && report.id == "hotpath" {
                    match scaling_gate(&report.data) {
                        Ok(()) => println!("# scaling gate: ok (threaded p=2 >= p=1 on ER)"),
                        Err(why) => {
                            eprintln!("# scaling gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_local && report.id == "hotpath" {
                    match local_gate(&report.data) {
                        Ok(()) => {
                            println!("# local gate: ok (threaded p=1 >= 0.75x sequential on ER)")
                        }
                        Err(why) => {
                            eprintln!("# local gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_batch && report.id == "hotpath" {
                    match batch_gate(&report.data) {
                        Ok(()) => println!(
                            "# batch gate: ok (threaded p=1 with batching >= 0.90x sequential on ER)"
                        ),
                        Err(why) => {
                            eprintln!("# batch gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_probe && report.id == "hotpath" {
                    match probe_gate(&report.data) {
                        Ok(()) => println!("# probe gate: ok (no-op probe within 3% of baseline)"),
                        Err(why) => {
                            eprintln!("# probe gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_proc && report.id == "hotpath" {
                    match proc_gate(&report.data) {
                        Ok(note) => println!("# proc gate: {note}"),
                        Err(why) => {
                            eprintln!("# proc gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
                if gate_mixing && report.id == "mixing" {
                    match mixing_gate(&report.data) {
                        Ok(note) => println!("# mixing gate: {note}"),
                        Err(why) => {
                            eprintln!("# mixing gate FAILED: {why}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            None => usage(),
        },
    }
}
