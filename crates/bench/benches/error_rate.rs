//! Similarity-metric and variant-algorithm benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgeswitch_core::error_rate::BlockMatrix;
use edgeswitch_core::variants::{sequential_edge_switch_connected, sequential_exact_visit};
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{erdos_renyi_gnm, small_world};
use edgeswitch_graph::metrics::{average_clustering_sampled, transitivity, triangle_count};

fn bench_error_rate(c: &mut Criterion) {
    let mut rng = root_rng(1);
    let g = erdos_renyi_gnm(20_000, 200_000, &mut rng);
    let mut group = c.benchmark_group("error_rate");
    for r in [4usize, 20, 100] {
        group.bench_with_input(BenchmarkId::new("block_matrix", r), &r, |b, &r| {
            b.iter(|| BlockMatrix::measure(&g, r))
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants");
    let t = 2_000u64;
    group.throughput(Throughput::Elements(t));

    group.bench_function("connected_switch", |b| {
        let mut rng = root_rng(2);
        let g = small_world(3_000, 10, 0.05, &mut rng);
        b.iter_batched(
            || (g.clone(), root_rng(3)),
            |(mut g, mut rng)| sequential_edge_switch_connected(&mut g, t, &mut rng),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("exact_visit", |b| {
        let mut rng = root_rng(4);
        let g = erdos_renyi_gnm(5_000, 25_000, &mut rng);
        b.iter_batched(
            || (g.clone(), root_rng(5)),
            |(mut g, mut rng)| sequential_exact_visit(&mut g, 0.2, &mut rng),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = root_rng(6);
    let g = small_world(10_000, 10, 0.1, &mut rng);
    let mut group = c.benchmark_group("metrics");
    group.bench_function("triangle_count", |b| b.iter(|| triangle_count(&g)));
    group.bench_function("transitivity", |b| b.iter(|| transitivity(&g)));
    group.bench_function("clustering_sampled_1k", |b| {
        let mut rng = root_rng(7);
        b.iter(|| average_clustering_sampled(&g, 1000, &mut rng))
    });
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_error_rate, bench_variants, bench_metrics
}
criterion_main!(benches);
