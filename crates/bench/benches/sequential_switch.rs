//! Sequential edge-switch throughput (Algorithm 1): the `O(t log d_max)`
//! baseline every speedup in the paper is measured against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgeswitch_core::sequential::sequential_edge_switch;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{
    contact_network, erdos_renyi_gnm, preferential_attachment, ContactParams,
};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_switch");
    let t = 20_000u64;
    group.throughput(Throughput::Elements(t));

    let mut rng = root_rng(1);
    let cases = vec![
        ("erdos_renyi", erdos_renyi_gnm(10_000, 100_000, &mut rng)),
        (
            "contact",
            contact_network(ContactParams::miami_like(2_000), &mut rng),
        ),
        ("pref_attach", preferential_attachment(10_000, 10, &mut rng)),
    ];
    for (name, graph) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter_batched(
                || (g.clone(), root_rng(2)),
                |(mut g, mut rng)| sequential_edge_switch(&mut g, t, &mut rng),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_sequential
}
criterion_main!(benches);
