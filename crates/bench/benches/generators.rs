//! Generator throughput for the Table 2 dataset classes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edgeswitch_dist::root_rng;
use edgeswitch_graph::degree::{havel_hakimi, power_law_sequence};
use edgeswitch_graph::generators::{
    contact_network, erdos_renyi_gnm, preferential_attachment, small_world, ContactParams,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let n = 10_000usize;
    group.throughput(Throughput::Elements(n as u64 * 10));

    group.bench_function("erdos_renyi_gnm", |b| {
        let mut rng = root_rng(1);
        b.iter(|| erdos_renyi_gnm(n, n * 10, &mut rng))
    });
    group.bench_function("small_world", |b| {
        let mut rng = root_rng(2);
        b.iter(|| small_world(n, 20, 0.1, &mut rng))
    });
    group.bench_function("preferential_attachment", |b| {
        let mut rng = root_rng(3);
        b.iter(|| preferential_attachment(n, 10, &mut rng))
    });
    group.bench_function("contact_network", |b| {
        let mut rng = root_rng(4);
        b.iter(|| contact_network(ContactParams::miami_like(2_000), &mut rng))
    });
    group.bench_function("havel_hakimi_power_law", |b| {
        let mut rng = root_rng(5);
        let seq = power_law_sequence(n, 2.3, 2, 200, &mut rng);
        b.iter(|| havel_hakimi(&seq).unwrap())
    });
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_generators
}
criterion_main!(benches);
