//! Data-structure microbenches: the O(1) edge pool and the O(log d)
//! adjacency operations that bound every switch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::erdos_renyi_gnm;
use edgeswitch_graph::sampling::EdgePool;
use edgeswitch_graph::Edge;
use rand::Rng;

fn bench_edge_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_pool");
    let size = 100_000u64;
    let ops = 10_000u64;
    group.throughput(Throughput::Elements(ops));

    group.bench_function("sample", |b| {
        let pool: EdgePool = (0..size).map(|i| Edge::new(i, i + size)).collect();
        let mut rng = root_rng(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..ops {
                acc = acc.wrapping_add(pool.sample(&mut rng).unwrap().src());
            }
            acc
        })
    });

    group.bench_function("insert_remove_churn", |b| {
        let mut pool: EdgePool = (0..size).map(|i| Edge::new(i, i + size)).collect();
        let mut rng = root_rng(2);
        b.iter(|| {
            for _ in 0..ops {
                let e = pool.sample(&mut rng).unwrap();
                pool.remove(e);
                pool.insert(Edge::new(
                    e.src(),
                    e.dst() + 1_000_000 + rng.gen_range(0..97),
                ));
            }
        })
    });
    group.finish();
}

fn bench_adjacency_probe(c: &mut Criterion) {
    let mut rng = root_rng(3);
    let g = erdos_renyi_gnm(10_000, 200_000, &mut rng);
    let probes = 10_000u64;
    let mut group = c.benchmark_group("adjacency");
    group.throughput(Throughput::Elements(probes));
    group.bench_function("has_edge", |b| {
        let mut rng = root_rng(4);
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..probes {
                let a = rng.gen_range(0..10_000u64);
                let b2 = rng.gen_range(0..10_000u64);
                if a != b2 && g.has_edge(Edge::new(a, b2)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("neighbor_contains", |b| {
        let mut rng = root_rng(5);
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..probes {
                let a = rng.gen_range(0..10_000u64);
                let b2 = rng.gen_range(0..10_000u64);
                if g.neighbors(a).contains(b2) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_edge_pool, bench_adjacency_probe
}
criterion_main!(benches);
