//! Partitioning costs: building each scheme and the per-vertex `owner`
//! lookup that sits on the protocol's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::preferential_attachment;
use edgeswitch_graph::store::build_stores;
use edgeswitch_graph::{Partitioner, SchemeKind};

fn bench_build(c: &mut Criterion) {
    let mut rng = root_rng(1);
    let g = preferential_attachment(50_000, 10, &mut rng);
    let p = 1024;
    let mut group = c.benchmark_group("partition/build");
    for scheme in SchemeKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut rng = root_rng(2);
                    Partitioner::build(scheme, &g, p, &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_owner(c: &mut Criterion) {
    let mut rng = root_rng(3);
    let g = preferential_attachment(50_000, 10, &mut rng);
    let p = 1024;
    let n = g.num_vertices() as u64;
    let mut group = c.benchmark_group("partition/owner_lookup");
    group.throughput(Throughput::Elements(n));
    for scheme in SchemeKind::all() {
        let part = Partitioner::build(scheme, &g, p, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &part,
            |b, part| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for v in 0..n {
                        acc = acc.wrapping_add(part.owner(v));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_store_build(c: &mut Criterion) {
    let mut rng = root_rng(4);
    let g = preferential_attachment(50_000, 10, &mut rng);
    let part = Partitioner::hash_universal(64, &mut rng);
    c.bench_function("partition/build_stores", |b| {
        b.iter(|| build_stores(&g, &part))
    });
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_build, bench_owner, bench_store_build
}
criterion_main!(benches);
