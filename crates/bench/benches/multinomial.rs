//! Random-variate throughput: BINV binomial draws (including the
//! underflow-splitting path) and multinomial generation (Algorithms 3–5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgeswitch_dist::multinomial::multinomial;
use edgeswitch_dist::parallel::multinomial_partitioned;
use edgeswitch_dist::{binomial, root_rng};

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    for &(n, q) in &[(1_000u64, 0.3f64), (1_000_000, 0.01), (1_000_000_000, 1e-5)] {
        group.throughput(Throughput::Elements((n as f64 * q.min(1.0 - q)) as u64 + 1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_q{q}")),
            &(n, q),
            |b, &(n, q)| {
                let mut rng = root_rng(1);
                b.iter(|| binomial(n, q, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_multinomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("multinomial");
    let n = 1_000_000u64;
    group.throughput(Throughput::Elements(n));
    for l in [4usize, 64, 1024] {
        let q = vec![1.0 / l as f64; l];
        group.bench_with_input(BenchmarkId::new("outcomes", l), &q, |b, q| {
            let mut rng = root_rng(2);
            b.iter(|| multinomial(n, q, &mut rng))
        });
    }
    // The per-rank decomposition of Algorithm 5 (single-process form).
    for parts in [16usize, 256] {
        let q = vec![1.0 / 32.0; 32];
        group.bench_with_input(
            BenchmarkId::new("partitioned", parts),
            &parts,
            |b, &parts| {
                let mut rng = root_rng(3);
                b.iter(|| multinomial_partitioned(n, &q, parts, &mut rng))
            },
        );
    }
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_binomial, bench_multinomial
}
criterion_main!(benches);
