//! Parallel-engine throughput: the deterministic driver (pure protocol
//! cost, no thread scheduling noise) across world sizes and schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgeswitch_core::config::{ParallelConfig, StepSize};
use edgeswitch_core::parallel::simulate_parallel;
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::erdos_renyi_gnm;
use edgeswitch_graph::SchemeKind;

fn bench_world_size(c: &mut Criterion) {
    let mut rng = root_rng(3);
    let g = erdos_renyi_gnm(5_000, 50_000, &mut rng);
    let t = 10_000u64;
    let mut group = c.benchmark_group("parallel_engine/world_size");
    group.throughput(Throughput::Elements(t));
    for p in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let cfg = ParallelConfig::new(p)
                .with_scheme(SchemeKind::HashUniversal)
                .with_step_size(StepSize::FractionOfT(10))
                .with_seed(5);
            b.iter(|| simulate_parallel(&g, t, &cfg))
        });
    }
    group.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut rng = root_rng(4);
    let g = erdos_renyi_gnm(5_000, 50_000, &mut rng);
    let t = 10_000u64;
    let mut group = c.benchmark_group("parallel_engine/scheme");
    group.throughput(Throughput::Elements(t));
    for scheme in SchemeKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                let cfg = ParallelConfig::new(16)
                    .with_scheme(scheme)
                    .with_step_size(StepSize::FractionOfT(10))
                    .with_seed(5);
                b.iter(|| simulate_parallel(&g, t, &cfg))
            },
        );
    }
    group.finish();
}

/// Short-run configuration: this repository benches on a single-core
/// machine; 10 samples x ~2s per benchmark keeps the full suite fast
/// while still flagging order-of-magnitude regressions.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_world_size, bench_schemes
}
criterion_main!(benches);
