//! A hand-rolled JSON value, parser and writer — just enough for the
//! newline-delimited wire protocol, with zero dependencies.
//!
//! Numbers are kept as `f64`; every integer the protocol ships (ids,
//! counts, budgets) stays well under 2^53, and the one value that does
//! not — the graph digest — travels as a hex string. Parsing is strict
//! on structure (balanced brackets, string escapes) and permissive on
//! whitespace; input comes from our own client or a curl-wielding
//! operator, not an adversary, but malformed input returns `Err`, never
//! panics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects keep sorted keys (`BTreeMap`) so encoding is
/// deterministic — byte-stable responses make the smoke gates' digest
/// comparisons trivial.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs for the 2^53 caveat).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from a u64 (callers keep values under 2^53).
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007199254740992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 9.007199254740992e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this protocol.
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let text = r#"{"op":"submit","job":{"graph":{"type":"er","n":200,"m":800},"budget":{"visit_rate":0.5},"p":2,"tags":["a","b\n\"c\""],"inline":[[0,1],[1,2]],"flag":true,"none":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        let job = v.get("job").unwrap();
        assert_eq!(
            job.get("graph")
                .and_then(|g| g.get("n"))
                .and_then(Json::as_u64),
            Some(200)
        );
        assert_eq!(
            job.get("budget")
                .and_then(|b| b.get("visit_rate"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
        assert_eq!(job.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(job.get("none"), Some(&Json::Null));
        // Encode → parse → encode is a fixed point (sorted keys).
        let encoded = v.to_json();
        assert_eq!(parse(&encoded).unwrap().to_json(), encoded);
    }

    #[test]
    fn strings_escape_cleanly() {
        let v = Json::str("line\nbreak \"quoted\" back\\slash\ttab");
        let encoded = v.to_json();
        assert_eq!(parse(&encoded).unwrap(), v);
    }

    #[test]
    fn numbers_preserve_integers_exactly() {
        for n in [0u64, 1, 42, 1 << 40, (1 << 53) - 1] {
            let encoded = Json::num(n).to_json();
            assert_eq!(parse(&encoded).unwrap().as_u64(), Some(n), "{n}");
        }
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("-5").unwrap().as_u64(), None);
        assert_eq!(parse("0.25").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn malformed_input_errors_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "nullx",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
