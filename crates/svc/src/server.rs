//! The TCP front door: newline-delimited JSON, thread per connection.
//!
//! Requests are single-line JSON objects with an `"op"` field;
//! responses are single-line objects with `"ok"` plus op-specific
//! fields. Errors carry `"error"` (stable code), `"detail"` and an
//! HTTP-flavoured `"code"` number — `429` for queue-full, `400` for
//! malformed requests, `404` for unknown jobs, `422` for specs that
//! fail validation.
//!
//! | op         | fields            | reply                              |
//! |------------|-------------------|------------------------------------|
//! | `ping`     |                   | `{"ok":true,"pong":true}`          |
//! | `submit`   | `job`             | `{"ok":true,"id":N}`               |
//! | `status`   | `id`              | `{"ok":true,"state":...}`          |
//! | `events`   | `id`, `from`      | `{"ok":true,"events":[...],"next":N}` |
//! | `watch`    | `id`, `from`      | streams one event per line, then a final `{"ok":true,...}` |
//! | `result`   | `id`              | `{"ok":true,"result":{...}}`       |
//! | `shutdown` |                   | `{"ok":true}`, then the server checkpoints and exits |
//!
//! `watch` is the streaming form of `events`: the connection stays open
//! and each appended event is written as its own line until the job
//! reaches a terminal state.

use crate::ckpt::CkptStore;
use crate::job::{JobPhase, JobSpec};
use crate::json::{self, Json};
use crate::sched::{SchedOpts, Scheduler, SubmitError};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerOpts {
    /// Checkpoint directory (specs, snapshots, results).
    pub ckpt_dir: PathBuf,
    /// Scheduler sizing.
    pub sched: SchedOpts,
}

/// The job server: owns the listener and the scheduler.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), open the
    /// checkpoint store, and recover any jobs it holds.
    pub fn bind(addr: &str, opts: ServerOpts) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let ckpt = CkptStore::open(&opts.ckpt_dir)?;
        let scheduler = Arc::new(Scheduler::start(opts.sched, ckpt));
        Ok(Server {
            listener,
            addr,
            scheduler,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct scheduler access (in-process tests submit through this).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Accept connections until a `shutdown` op arrives, then stop the
    /// scheduler (running jobs snapshot and park) and return.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let scheduler = self.scheduler.clone();
            let shutdown = self.shutdown.clone();
            let addr = self.addr;
            std::thread::Builder::new()
                .name("svc-conn".to_string())
                .spawn(move || {
                    let _ = handle_connection(stream, &scheduler, &shutdown, addr);
                })
                .expect("spawn connection handler");
        }
        // Park every job behind a final snapshot before returning, so
        // the checkpoint directory is quiescent and a successor server
        // can take it over immediately.
        self.scheduler.stop();
        Ok(())
    }
}

fn reply_err(code: u64, error: &str, detail: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str(error)),
        ("detail", Json::str(detail)),
        ("code", Json::num(code)),
    ])
}

fn write_line(stream: &mut TcpStream, line: &Json) -> io::Result<()> {
    stream.write_all(line.to_json().as_bytes())?;
    stream.write_all(b"\n")
}

fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match json::parse(&line) {
            Ok(v) => v,
            Err(err) => {
                write_line(&mut writer, &reply_err(400, "bad-json", &err))?;
                continue;
            }
        };
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        match op {
            "ping" => write_line(
                &mut writer,
                &Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
            )?,
            "submit" => {
                let reply = match request.get("job").map(JobSpec::from_json) {
                    None => reply_err(400, "bad-request", "missing 'job'"),
                    Some(Err(err)) => reply_err(400, "bad-job", &err),
                    Some(Ok(spec)) => match scheduler.submit(spec) {
                        Ok(id) => Json::obj([("ok", Json::Bool(true)), ("id", Json::num(id))]),
                        Err(SubmitError::QueueFull { cap }) => reply_err(
                            429,
                            "queue-full",
                            &format!("admission queue is at its cap of {cap}"),
                        ),
                        Err(SubmitError::TooWide { want, pool }) => reply_err(
                            422,
                            "too-wide",
                            &format!("job wants {want} ranks, pool has {pool}"),
                        ),
                        Err(SubmitError::Invalid { code, detail }) => reply_err(422, code, &detail),
                    },
                };
                write_line(&mut writer, &reply)?;
            }
            "status" | "result" | "events" | "watch" => {
                let Some(id) = request.get("id").and_then(Json::as_u64) else {
                    write_line(&mut writer, &reply_err(400, "bad-request", "missing 'id'"))?;
                    continue;
                };
                let Some(entry) = scheduler.job(id) else {
                    write_line(
                        &mut writer,
                        &reply_err(404, "not-found", &format!("no job {id}")),
                    )?;
                    continue;
                };
                match op {
                    "status" => {
                        let mut status = entry.status_json();
                        if let Json::Obj(map) = &mut status {
                            map.insert("ok".to_string(), Json::Bool(true));
                        }
                        write_line(&mut writer, &status)?;
                    }
                    "result" => {
                        let reply = match entry.result_json() {
                            Some(result) => {
                                Json::obj([("ok", Json::Bool(true)), ("result", result)])
                            }
                            None => reply_err(
                                409,
                                "not-done",
                                &format!("job {id} is {}", entry.phase().label()),
                            ),
                        };
                        write_line(&mut writer, &reply)?;
                    }
                    "events" => {
                        let from = request.get("from").and_then(Json::as_u64).unwrap_or(0) as usize;
                        let (events, next) = entry.events_from(from);
                        write_line(
                            &mut writer,
                            &Json::obj([
                                ("ok", Json::Bool(true)),
                                ("events", Json::Arr(events)),
                                ("next", Json::num(next as u64)),
                            ]),
                        )?;
                    }
                    "watch" => {
                        let mut cursor =
                            request.get("from").and_then(Json::as_u64).unwrap_or(0) as usize;
                        loop {
                            let (events, next, phase) =
                                entry.wait_events(cursor, Duration::from_millis(250));
                            for event in &events {
                                write_line(&mut writer, event)?;
                            }
                            cursor = next;
                            if matches!(phase, JobPhase::Done | JobPhase::Failed)
                                && events.is_empty()
                            {
                                write_line(
                                    &mut writer,
                                    &Json::obj([
                                        ("ok", Json::Bool(true)),
                                        ("state", Json::str(phase.label())),
                                        ("next", Json::num(cursor as u64)),
                                    ]),
                                )?;
                                break;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            "shutdown" => {
                shutdown.store(true, Ordering::SeqCst);
                write_line(&mut writer, &Json::obj([("ok", Json::Bool(true))]))?;
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            other => write_line(
                &mut writer,
                &reply_err(400, "bad-op", &format!("unknown op '{other}'")),
            )?,
        }
    }
    Ok(())
}
