//! Job specs, per-job state, and the execution loop.
//!
//! A job is a graph (inline edges or a generator spec), a budget, a
//! randomizer and driver knobs. Switch jobs run on the *resumable*
//! engines — [`SequentialResumable`] chunk by chunk,
//! [`SimWorld`] step by step — so the worker can emit a progress event
//! and (periodically) an `ESNP` snapshot between units of work.
//! Curveball jobs have no resumable engine yet; they run one-shot
//! through [`Run::try_execute`] and a killed server restarts them from
//! the spec (deterministic seeds make that bit-identical too, it just
//! re-spends the work).

use crate::json::Json;
use edgeswitch_core::obs::ProgressEvent;
use edgeswitch_core::parallel::wire::{
    decode_seq_checkpoint, decode_world_snapshot, encode_seq_checkpoint, encode_world_snapshot,
};
use edgeswitch_core::parallel::SimWorld;
use edgeswitch_core::sequential::SequentialResumable;
use edgeswitch_core::{ParallelConfig, Randomizer, Run, RunError};
use edgeswitch_dist::{root_rng, switch_ops_for_visit_rate};
use edgeswitch_graph::generators::{erdos_renyi_gnm, preferential_attachment, StreamSpec};
use edgeswitch_graph::{Edge, Graph};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The input graph: shipped inline or regenerated from a seeded spec.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Explicit vertex count and edge list.
    Inline {
        /// Number of vertices.
        n: usize,
        /// The edges as `(src, dst)` pairs.
        edges: Vec<(u64, u64)>,
    },
    /// `G(n, m)` Erdős–Rényi, regenerated from `seed`.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Preferential attachment with `d` edges per arrival.
    PreferentialAttachment {
        /// Number of vertices.
        n: usize,
        /// Edges per arriving vertex.
        d: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A streaming recomputation generator (`"pa-stream"` /
    /// `"degree-seq"` on the wire): the O(1) [`StreamSpec`] currency of
    /// the seed-boot pipeline. Validated at submit time via
    /// [`StreamSpec::validate`], so a bad spec is rejected before the
    /// job is queued.
    Streamed(StreamSpec),
}

impl GraphSpec {
    /// Materialize the graph (deterministic for generator specs).
    pub fn build(&self) -> Result<Graph, String> {
        match self {
            GraphSpec::Inline { n, edges } => {
                Graph::from_edges(*n, edges.iter().map(|&(a, b)| Edge::new(a, b)))
                    .map_err(|err| format!("bad inline graph: {err:?}"))
            }
            GraphSpec::ErdosRenyi { n, m, seed } => {
                Ok(erdos_renyi_gnm(*n, *m, &mut root_rng(*seed)))
            }
            GraphSpec::PreferentialAttachment { n, d, seed } => {
                Ok(preferential_attachment(*n, *d, &mut root_rng(*seed)))
            }
            GraphSpec::Streamed(spec) => spec
                .build()
                .map_err(|err| format!("streamed graph spec failed to realize: {err:?}")),
        }
    }
}

/// How much randomization to do.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetSpec {
    /// Explicit operation count.
    Switches(u64),
    /// Target expected visit rate in `(0, 1]`.
    VisitRate(f64),
}

/// Which driver executes the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Algorithm 1, chunked through [`SequentialResumable`].
    Sequential,
    /// The parallel protocol on `p` simulated ranks ([`SimWorld`]).
    Simulated,
}

/// One job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The input graph.
    pub graph: GraphSpec,
    /// The budget.
    pub budget: BudgetSpec,
    /// The driver.
    pub driver: Driver,
    /// Simulated world size (rank-pool cost; 1 for sequential).
    pub p: usize,
    /// Master seed for the switching RNG streams.
    pub seed: u64,
    /// Pipelining window (simulated driver).
    pub window: usize,
    /// Speculative batch size (simulated driver).
    pub spec_batch: usize,
    /// Randomization engine.
    pub randomizer: Randomizer,
    /// Whether the result should carry the switched edge list.
    pub return_edges: bool,
}

impl JobSpec {
    /// Rank-pool slots this job occupies while running.
    pub fn ranks(&self) -> usize {
        match self.driver {
            Driver::Sequential => 1,
            Driver::Simulated => self.p.max(1),
        }
    }

    /// The equivalent [`Run`] builder — used for validation and for
    /// one-shot (Curveball) execution.
    pub fn as_run(&self) -> Run {
        let run = match self.driver {
            Driver::Sequential => Run::sequential(),
            Driver::Simulated => Run::simulated(self.p),
        };
        let run = match self.budget {
            BudgetSpec::Switches(t) => run.switches(t),
            BudgetSpec::VisitRate(x) => run.visit_rate(x),
        };
        run.seed(self.seed)
            .window(self.window)
            .spec_batch(self.spec_batch)
            .randomizer(self.randomizer)
    }

    /// Submit-time validation via [`Run::validate`].
    pub fn validate(&self) -> Result<(), RunError> {
        self.as_run().validate()
    }

    /// The config the simulated driver runs with.
    pub fn config(&self) -> ParallelConfig {
        self.as_run().config().clone()
    }

    /// Resolve the operation budget against `graph`.
    pub fn ops(&self, graph: &Graph) -> u64 {
        match self.budget {
            BudgetSpec::Switches(t) => t,
            BudgetSpec::VisitRate(x) => switch_ops_for_visit_rate(graph.num_edges() as u64, x),
        }
    }

    /// Parse from the wire shape (see DESIGN.md §4i for the schema).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let graph_json = v.get("graph").ok_or("missing 'graph'")?;
        let graph = match graph_json.get("type").and_then(Json::as_str) {
            Some("inline") => {
                let n = graph_json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("inline graph needs 'n'")? as usize;
                let edges = graph_json
                    .get("edges")
                    .and_then(Json::as_arr)
                    .ok_or("inline graph needs 'edges'")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().ok_or("edge must be [src, dst]")?;
                        match (
                            pair.first().and_then(Json::as_u64),
                            pair.get(1).and_then(Json::as_u64),
                        ) {
                            (Some(a), Some(b)) if pair.len() == 2 => Ok((a, b)),
                            _ => Err("edge must be [src, dst]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                GraphSpec::Inline { n, edges }
            }
            Some("er") => GraphSpec::ErdosRenyi {
                n: graph_json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("er graph needs 'n'")? as usize,
                m: graph_json
                    .get("m")
                    .and_then(Json::as_u64)
                    .ok_or("er graph needs 'm'")? as usize,
                seed: graph_json.get("seed").and_then(Json::as_u64).unwrap_or(1),
            },
            Some("pa") => GraphSpec::PreferentialAttachment {
                n: graph_json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("pa graph needs 'n'")? as usize,
                d: graph_json
                    .get("d")
                    .and_then(Json::as_u64)
                    .ok_or("pa graph needs 'd'")? as usize,
                seed: graph_json.get("seed").and_then(Json::as_u64).unwrap_or(1),
            },
            Some("pa-stream") => {
                let spec = StreamSpec::Pa {
                    n: graph_json
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or("pa-stream graph needs 'n'")? as usize,
                    d: graph_json
                        .get("d")
                        .and_then(Json::as_u64)
                        .ok_or("pa-stream graph needs 'd'")? as usize,
                    seed: graph_json.get("seed").and_then(Json::as_u64).unwrap_or(1),
                };
                spec.validate()?;
                GraphSpec::Streamed(spec)
            }
            Some("degree-seq") => {
                let spec = StreamSpec::PowerLawSeq {
                    n: graph_json
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or("degree-seq graph needs 'n'")? as usize,
                    gamma: graph_json
                        .get("gamma")
                        .and_then(Json::as_f64)
                        .ok_or("degree-seq graph needs 'gamma'")?,
                    d_min: graph_json
                        .get("d_min")
                        .and_then(Json::as_u64)
                        .ok_or("degree-seq graph needs 'd_min'")?
                        as usize,
                    d_max: graph_json
                        .get("d_max")
                        .and_then(Json::as_u64)
                        .ok_or("degree-seq graph needs 'd_max'")?
                        as usize,
                    seed: graph_json.get("seed").and_then(Json::as_u64).unwrap_or(1),
                };
                spec.validate()?;
                GraphSpec::Streamed(spec)
            }
            other => return Err(format!("unknown graph type {other:?}")),
        };
        let budget_json = v.get("budget").ok_or("missing 'budget'")?;
        let budget = if let Some(t) = budget_json.get("switches").and_then(Json::as_u64) {
            BudgetSpec::Switches(t)
        } else if let Some(x) = budget_json.get("visit_rate").and_then(Json::as_f64) {
            BudgetSpec::VisitRate(x)
        } else {
            return Err("budget needs 'switches' or 'visit_rate'".to_string());
        };
        let driver = match v.get("driver").and_then(Json::as_str) {
            Some("sequential") | None => Driver::Sequential,
            Some("simulated") => Driver::Simulated,
            Some(other) => return Err(format!("unknown driver '{other}'")),
        };
        let randomizer = match v.get("randomizer").and_then(Json::as_str) {
            Some("switch") | None => Randomizer::Switch,
            Some("curveball") => Randomizer::Curveball,
            Some(other) => return Err(format!("unknown randomizer '{other}'")),
        };
        Ok(JobSpec {
            graph,
            budget,
            driver,
            p: v.get("p").and_then(Json::as_u64).unwrap_or(1) as usize,
            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
            window: v.get("window").and_then(Json::as_u64).unwrap_or(1) as usize,
            spec_batch: v.get("spec_batch").and_then(Json::as_u64).unwrap_or(1) as usize,
            randomizer,
            return_edges: v
                .get("return_edges")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Serialize back to the wire shape (inverse of
    /// [`JobSpec::from_json`]; used for `.job` persistence).
    pub fn to_json(&self) -> Json {
        let graph = match &self.graph {
            GraphSpec::Inline { n, edges } => Json::obj([
                ("type", Json::str("inline")),
                ("n", Json::num(*n as u64)),
                (
                    "edges",
                    Json::Arr(
                        edges
                            .iter()
                            .map(|&(a, b)| Json::Arr(vec![Json::num(a), Json::num(b)]))
                            .collect(),
                    ),
                ),
            ]),
            GraphSpec::ErdosRenyi { n, m, seed } => Json::obj([
                ("type", Json::str("er")),
                ("n", Json::num(*n as u64)),
                ("m", Json::num(*m as u64)),
                ("seed", Json::num(*seed)),
            ]),
            GraphSpec::PreferentialAttachment { n, d, seed } => Json::obj([
                ("type", Json::str("pa")),
                ("n", Json::num(*n as u64)),
                ("d", Json::num(*d as u64)),
                ("seed", Json::num(*seed)),
            ]),
            GraphSpec::Streamed(StreamSpec::Pa { n, d, seed }) => Json::obj([
                ("type", Json::str("pa-stream")),
                ("n", Json::num(*n as u64)),
                ("d", Json::num(*d as u64)),
                ("seed", Json::num(*seed)),
            ]),
            GraphSpec::Streamed(StreamSpec::PowerLawSeq {
                n,
                gamma,
                d_min,
                d_max,
                seed,
            }) => Json::obj([
                ("type", Json::str("degree-seq")),
                ("n", Json::num(*n as u64)),
                ("gamma", Json::Num(*gamma)),
                ("d_min", Json::num(*d_min as u64)),
                ("d_max", Json::num(*d_max as u64)),
                ("seed", Json::num(*seed)),
            ]),
        };
        let budget = match self.budget {
            BudgetSpec::Switches(t) => Json::obj([("switches", Json::num(t))]),
            BudgetSpec::VisitRate(x) => Json::obj([("visit_rate", Json::Num(x))]),
        };
        Json::obj([
            ("graph", graph),
            ("budget", budget),
            (
                "driver",
                Json::str(match self.driver {
                    Driver::Sequential => "sequential",
                    Driver::Simulated => "simulated",
                }),
            ),
            (
                "randomizer",
                Json::str(match self.randomizer {
                    Randomizer::Switch => "switch",
                    Randomizer::Curveball => "curveball",
                }),
            ),
            ("p", Json::num(self.p as u64)),
            ("seed", Json::num(self.seed)),
            ("window", Json::num(self.window as u64)),
            ("spec_batch", Json::num(self.spec_batch as u64)),
            ("return_edges", Json::Bool(self.return_edges)),
        ])
    }
}

/// Lifecycle phase of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for rank-pool slots.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; result stored.
    Done,
    /// Failed; error stored.
    Failed,
}

impl JobPhase {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    performed: u64,
    budget: u64,
    visit_rate: f64,
    events: Vec<Json>,
    result: Option<Json>,
    error: Option<String>,
}

/// One job's shared state: spec plus a mutex-guarded progress record
/// that workers write and connection handlers read. A condvar wakes
/// event streamers on every append.
#[derive(Debug)]
pub struct JobEntry {
    /// The job's id.
    pub id: u64,
    /// The spec it runs.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    wake: Condvar,
}

impl JobEntry {
    /// A freshly admitted job.
    pub fn new(id: u64, spec: JobSpec) -> JobEntry {
        let entry = JobEntry {
            id,
            spec,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                performed: 0,
                budget: 0,
                visit_rate: 0.0,
                events: Vec::new(),
                result: None,
                error: None,
            }),
            wake: Condvar::new(),
        };
        entry.push_event(Json::obj([("event", Json::str("queued"))]));
        entry
    }

    /// A job recovered as already finished: state jumps straight to
    /// `Done` with the stored result.
    pub fn recovered_done(id: u64, spec: JobSpec, result: Json) -> JobEntry {
        let entry = JobEntry::new(id, spec);
        {
            let mut st = entry.state.lock().unwrap();
            st.phase = JobPhase::Done;
            st.performed = result.get("performed").and_then(Json::as_u64).unwrap_or(0);
            st.result = Some(result);
        }
        entry
    }

    /// Append one event and wake streamers.
    pub fn push_event(&self, event: Json) {
        let mut st = self.state.lock().unwrap();
        st.events.push(event);
        self.wake.notify_all();
    }

    fn set_phase(&self, phase: JobPhase) {
        let mut st = self.state.lock().unwrap();
        st.phase = phase;
        drop(st);
        self.push_event(Json::obj([("event", Json::str(phase.label()))]));
    }

    /// Record one unit of forward progress.
    pub fn progress(&self, performed: u64, budget: u64, visit_rate: f64) {
        let mut st = self.state.lock().unwrap();
        st.performed = performed;
        st.budget = budget;
        st.visit_rate = visit_rate;
    }

    /// Mark done with `result`.
    pub fn set_done(&self, result: Json) {
        {
            let mut st = self.state.lock().unwrap();
            st.phase = JobPhase::Done;
            st.result = Some(result);
        }
        self.push_event(Json::obj([("event", Json::str("done"))]));
    }

    /// Mark failed with `error` (a wire code plus detail).
    pub fn set_failed(&self, code: &str, detail: String) {
        {
            let mut st = self.state.lock().unwrap();
            st.phase = JobPhase::Failed;
            st.error = Some(format!("{code}: {detail}"));
        }
        self.push_event(Json::obj([
            ("event", Json::str("failed")),
            ("error", Json::str(detail)),
            ("code", Json::str(code)),
        ]));
    }

    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        self.state.lock().unwrap().phase
    }

    /// The status object served for `{"op":"status"}`.
    pub fn status_json(&self) -> Json {
        let st = self.state.lock().unwrap();
        let mut fields = vec![
            ("id", Json::num(self.id)),
            ("state", Json::str(st.phase.label())),
            ("performed", Json::num(st.performed)),
            ("budget", Json::num(st.budget)),
            ("visit_rate", Json::Num(st.visit_rate)),
            ("events", Json::num(st.events.len() as u64)),
        ];
        if let Some(err) = &st.error {
            fields.push(("error", Json::str(err.clone())));
        }
        Json::obj(fields)
    }

    /// Events from index `from` on, plus the next cursor.
    pub fn events_from(&self, from: usize) -> (Vec<Json>, usize) {
        let st = self.state.lock().unwrap();
        let from = from.min(st.events.len());
        (st.events[from..].to_vec(), st.events.len())
    }

    /// Block until there are events past `from` or the job reaches a
    /// terminal phase; returns like [`JobEntry::events_from`].
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<Json>, usize, JobPhase) {
        let mut st = self.state.lock().unwrap();
        while st.events.len() <= from && !matches!(st.phase, JobPhase::Done | JobPhase::Failed) {
            let (guard, wait) = self.wake.wait_timeout(st, timeout).unwrap();
            st = guard;
            if wait.timed_out() {
                break;
            }
        }
        let from = from.min(st.events.len());
        (st.events[from..].to_vec(), st.events.len(), st.phase)
    }

    /// The stored result (`None` until done).
    pub fn result_json(&self) -> Option<Json> {
        self.state.lock().unwrap().result.clone()
    }
}

/// Worker-side knobs: sequential chunk size and the checkpoint cadence
/// (every `ckpt_every` chunks/steps).
#[derive(Clone, Copy, Debug)]
pub struct WorkerOpts {
    /// Operations per sequential chunk (one progress event each).
    pub chunk: u64,
    /// Chunks/steps between snapshots (0 disables checkpointing).
    pub ckpt_every: u64,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            chunk: 4096,
            ckpt_every: 4,
        }
    }
}

fn result_json(
    graph: &Graph,
    performed: u64,
    abandoned: u64,
    visit_rate: f64,
    spec: &JobSpec,
) -> Json {
    let mut fields = vec![
        ("performed", Json::num(performed)),
        ("abandoned", Json::num(abandoned)),
        ("visit_rate", Json::Num(visit_rate)),
        (
            "digest",
            Json::str(format!("{:#018x}", graph.edge_digest())),
        ),
        ("num_vertices", Json::num(graph.num_vertices() as u64)),
        ("num_edges", Json::num(graph.num_edges() as u64)),
    ];
    if spec.return_edges {
        fields.push((
            "edges",
            Json::Arr(
                graph
                    .sorted_edges()
                    .into_iter()
                    .map(|e| Json::Arr(vec![Json::num(e.src()), Json::num(e.dst())]))
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

/// Execute `entry` to completion (or until `stop` is raised, leaving a
/// snapshot behind). `save_snapshot` persists checkpoint bytes; errors
/// from it are surfaced as job failures.
pub fn run_job(
    entry: &JobEntry,
    opts: WorkerOpts,
    snapshot: Option<Vec<u8>>,
    stop: &AtomicBool,
    save_snapshot: &dyn Fn(&[u8]) -> std::io::Result<()>,
) -> Option<Json> {
    entry.set_phase(JobPhase::Running);
    let graph = match entry.spec.graph.build() {
        Ok(graph) => graph,
        Err(err) => {
            entry.set_failed("bad-graph", err);
            return None;
        }
    };
    if entry.spec.randomizer == Randomizer::Curveball {
        return run_oneshot(entry, &graph);
    }
    match entry.spec.driver {
        Driver::Sequential => run_sequential(entry, graph, opts, snapshot, stop, save_snapshot),
        Driver::Simulated => run_simulated(entry, graph, opts, snapshot, stop, save_snapshot),
    }
}

/// One-shot path (Curveball): no chunking, no snapshots.
fn run_oneshot(entry: &JobEntry, graph: &Graph) -> Option<Json> {
    match entry.spec.as_run().try_execute(graph) {
        Ok(out) => {
            entry.progress(out.performed(), out.performed(), out.visit_rate());
            let result = result_json(
                out.graph(),
                out.performed(),
                0,
                out.visit_rate(),
                &entry.spec,
            );
            entry.set_done(result.clone());
            Some(result)
        }
        Err(err) => {
            entry.set_failed(error_code(&err), err.to_string());
            None
        }
    }
}

fn run_sequential(
    entry: &JobEntry,
    graph: Graph,
    opts: WorkerOpts,
    snapshot: Option<Vec<u8>>,
    stop: &AtomicBool,
    save_snapshot: &dyn Fn(&[u8]) -> std::io::Result<()>,
) -> Option<Json> {
    let t = entry.spec.ops(&graph);
    let mut eng = match snapshot {
        Some(bytes) => SequentialResumable::restore(&decode_seq_checkpoint(&bytes)),
        None => SequentialResumable::new(graph, t, entry.spec.seed),
    };
    let (tx, rx) = channel::<ProgressEvent>();
    eng.attach_probe(tx, 1024);
    let mut chunks = 0u64;
    while !eng.is_done() {
        if stop.load(Ordering::Relaxed) {
            if save_snapshot(&encode_seq_checkpoint(&eng.checkpoint())).is_err() {
                entry.set_failed("io", "checkpoint write failed at shutdown".to_string());
            }
            return None;
        }
        eng.step(opts.chunk);
        chunks += 1;
        // Drain the probe's span totals into the event stream.
        let mut spans_total = None;
        while let Ok(ProgressEvent::Spans(totals)) = rx.try_recv() {
            spans_total = Some(totals.total);
        }
        entry.progress(eng.performed(), eng.budget(), eng.visit_rate());
        let mut fields = vec![
            ("event", Json::str("step")),
            ("performed", Json::num(eng.performed())),
            ("budget", Json::num(eng.budget())),
            ("visit_rate", Json::Num(eng.visit_rate())),
        ];
        if let Some(total) = spans_total {
            fields.push(("spans", Json::num(total)));
        }
        entry.push_event(Json::obj(fields));
        if opts.ckpt_every > 0 && chunks.is_multiple_of(opts.ckpt_every) && !eng.is_done() {
            if save_snapshot(&encode_seq_checkpoint(&eng.checkpoint())).is_err() {
                entry.set_failed("io", "checkpoint write failed".to_string());
                return None;
            }
            entry.push_event(Json::obj([
                ("event", Json::str("checkpoint")),
                ("performed", Json::num(eng.performed())),
            ]));
        }
    }
    let (graph, outcome) = eng.finish();
    let visit_rate = outcome.visit_rate();
    let result = result_json(
        &graph,
        outcome.performed,
        outcome.abandoned,
        visit_rate,
        &entry.spec,
    );
    entry.progress(outcome.performed, outcome.performed, visit_rate);
    entry.set_done(result.clone());
    Some(result)
}

fn run_simulated(
    entry: &JobEntry,
    graph: Graph,
    opts: WorkerOpts,
    snapshot: Option<Vec<u8>>,
    stop: &AtomicBool,
    save_snapshot: &dyn Fn(&[u8]) -> std::io::Result<()>,
) -> Option<Json> {
    let config = entry.spec.config();
    let t = entry.spec.ops(&graph);
    let mut world = match snapshot {
        Some(bytes) => SimWorld::resume(&graph, &config, &decode_world_snapshot(&bytes)),
        None => SimWorld::new(&graph, t, &config),
    };
    let steps = world.steps();
    while !world.is_done() {
        if stop.load(Ordering::Relaxed) {
            if save_snapshot(&encode_world_snapshot(&world.snapshot())).is_err() {
                entry.set_failed("io", "checkpoint write failed at shutdown".to_string());
            }
            return None;
        }
        let step = world.next_step();
        let logical = world
            .step()
            .map(|tel| tel.logical_msgs.total())
            .unwrap_or(0);
        entry.progress(world.performed(), t, world.visit_rate());
        entry.push_event(Json::obj([
            ("event", Json::str("step")),
            ("step", Json::num(step + 1)),
            ("steps", Json::num(steps)),
            ("performed", Json::num(world.performed())),
            ("budget", Json::num(t)),
            ("visit_rate", Json::Num(world.visit_rate())),
            ("logical_msgs", Json::num(logical)),
        ]));
        if opts.ckpt_every > 0 && (step + 1) % opts.ckpt_every == 0 && !world.is_done() {
            if save_snapshot(&encode_world_snapshot(&world.snapshot())).is_err() {
                entry.set_failed("io", "checkpoint write failed".to_string());
                return None;
            }
            entry.push_event(Json::obj([
                ("event", Json::str("checkpoint")),
                ("step", Json::num(step + 1)),
            ]));
        }
    }
    let outcome = world.finish();
    let visit_rate = outcome.visit_rate();
    let performed = outcome.performed();
    let result = result_json(&outcome.graph, performed, 0, visit_rate, &entry.spec);
    entry.progress(performed, t, visit_rate);
    entry.set_done(result.clone());
    Some(result)
}

/// The wire error code for a [`RunError`].
pub fn error_code(err: &RunError) -> &'static str {
    match err {
        RunError::InvalidBudget(_) => "invalid-budget",
        RunError::InvalidConfig(_) => "invalid-config",
        RunError::BackendUnsupported(_) => "backend-unsupported",
        RunError::SpawnFailed(_) => "spawn-failed",
        RunError::RankDied(_) => "rank-died",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn er_spec() -> JobSpec {
        JobSpec {
            graph: GraphSpec::ErdosRenyi {
                n: 100,
                m: 400,
                seed: 3,
            },
            budget: BudgetSpec::Switches(300),
            driver: Driver::Simulated,
            p: 2,
            seed: 9,
            window: 4,
            spec_batch: 1,
            randomizer: Randomizer::Switch,
            return_edges: false,
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for spec in [
            er_spec(),
            JobSpec {
                graph: GraphSpec::Inline {
                    n: 4,
                    edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
                },
                budget: BudgetSpec::VisitRate(0.5),
                driver: Driver::Sequential,
                p: 1,
                seed: 0,
                window: 1,
                spec_batch: 1,
                randomizer: Randomizer::Curveball,
                return_edges: true,
            },
            JobSpec {
                graph: GraphSpec::Streamed(StreamSpec::Pa {
                    n: 200,
                    d: 4,
                    seed: 7,
                }),
                ..er_spec()
            },
            JobSpec {
                graph: GraphSpec::Streamed(StreamSpec::PowerLawSeq {
                    n: 150,
                    gamma: 2.5,
                    d_min: 2,
                    d_max: 12,
                    seed: 7,
                }),
                ..er_spec()
            },
        ] {
            let encoded = spec.to_json().to_json();
            let back = JobSpec::from_json(&json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn streamed_specs_are_validated_at_parse_time() {
        // A malformed generator spec is rejected when the submission is
        // parsed — before a job is queued — with the generator's own
        // message, not a build-time failure.
        let bad_pa = r#"{"graph":{"type":"pa-stream","n":4,"d":9,"seed":1},
                         "budget":{"switches":10}}"#;
        let err = JobSpec::from_json(&json::parse(bad_pa).unwrap()).unwrap_err();
        assert!(err.contains("1 <= d < n"), "{err}");
        let bad_seq = r#"{"graph":{"type":"degree-seq","n":50,"gamma":2.5,
                          "d_min":9,"d_max":2,"seed":1},"budget":{"switches":10}}"#;
        let err = JobSpec::from_json(&json::parse(bad_seq).unwrap()).unwrap_err();
        assert!(err.contains("d_min <= d_max"), "{err}");
        // Missing required fields name the field.
        let no_gamma = r#"{"graph":{"type":"degree-seq","n":50,"d_min":2,"d_max":9},
                           "budget":{"switches":10}}"#;
        let err = JobSpec::from_json(&json::parse(no_gamma).unwrap()).unwrap_err();
        assert!(err.contains("gamma"), "{err}");
    }

    #[test]
    fn streamed_spec_job_runs_to_completion() {
        let spec = JobSpec {
            graph: GraphSpec::Streamed(StreamSpec::Pa {
                n: 120,
                d: 3,
                seed: 4,
            }),
            budget: BudgetSpec::Switches(200),
            driver: Driver::Sequential,
            p: 1,
            ..er_spec()
        };
        let entry = JobEntry::new(1, spec.clone());
        let result = run_job(
            &entry,
            WorkerOpts::default(),
            None,
            &AtomicBool::new(false),
            &|_| Ok(()),
        )
        .expect("job completes");
        assert_eq!(entry.phase(), JobPhase::Done);
        // Deterministic: the spec materializes to the same graph the
        // job started from.
        let graph = spec.graph.build().unwrap();
        let direct = spec.as_run().execute(&graph);
        assert_eq!(
            result.get("digest").and_then(Json::as_str),
            Some(&format!("{:#018x}", direct.graph().edge_digest())[..])
        );
    }

    #[test]
    fn invalid_specs_fail_validation() {
        let mut spec = er_spec();
        spec.window = 0;
        assert!(matches!(spec.validate(), Err(RunError::InvalidConfig(_))));
        let mut spec = er_spec();
        spec.budget = BudgetSpec::VisitRate(1.5);
        assert!(matches!(spec.validate(), Err(RunError::InvalidBudget(_))));
        assert!(er_spec().validate().is_ok());
    }

    #[test]
    fn run_job_completes_and_matches_direct_execution() {
        let spec = er_spec();
        let entry = JobEntry::new(1, spec.clone());
        let stop = AtomicBool::new(false);
        let result = run_job(&entry, WorkerOpts::default(), None, &stop, &|_bytes| Ok(()))
            .expect("job completes");
        assert_eq!(entry.phase(), JobPhase::Done);
        // The same spec through the one-shot Run API lands on the same
        // switched graph.
        let graph = spec.graph.build().unwrap();
        let direct = spec.as_run().execute(&graph);
        let expect = format!("{:#018x}", direct.graph().edge_digest());
        assert_eq!(
            result.get("digest").and_then(Json::as_str),
            Some(&expect[..])
        );
        assert_eq!(
            result.get("performed").and_then(Json::as_u64),
            Some(direct.performed())
        );
        let (events, _) = entry.events_from(0);
        assert!(events.len() >= 3, "queued + running + steps + done");
    }

    #[test]
    fn stopped_job_leaves_a_resumable_snapshot() {
        let spec = JobSpec {
            driver: Driver::Sequential,
            p: 1,
            budget: BudgetSpec::Switches(5000),
            ..er_spec()
        };
        // Run uninterrupted for the reference digest.
        let reference = {
            let entry = JobEntry::new(1, spec.clone());
            run_job(
                &entry,
                WorkerOpts {
                    chunk: 256,
                    ckpt_every: 1,
                },
                None,
                &AtomicBool::new(false),
                &|_| Ok(()),
            )
            .unwrap()
        };
        // Raise stop before the first chunk: the worker snapshots the
        // fresh engine and returns; resuming replays the whole run.
        let entry = JobEntry::new(2, spec.clone());
        let stop_now = AtomicBool::new(true);
        let snap = std::sync::Mutex::new(Vec::new());
        let out = run_job(
            &entry,
            WorkerOpts {
                chunk: 256,
                ckpt_every: 1,
            },
            None,
            &stop_now,
            &|bytes| {
                *snap.lock().unwrap() = bytes.to_vec();
                Ok(())
            },
        );
        assert!(out.is_none());
        let bytes = snap.lock().unwrap().clone();
        assert!(!bytes.is_empty(), "stop must leave a snapshot");
        let resumed = run_job(
            &entry,
            WorkerOpts {
                chunk: 256,
                ckpt_every: 1,
            },
            Some(bytes),
            &AtomicBool::new(false),
            &|_| Ok(()),
        )
        .unwrap();
        assert_eq!(
            resumed.get("digest").and_then(Json::as_str),
            reference.get("digest").and_then(Json::as_str),
            "resumed result must be bit-identical"
        );
    }
}
