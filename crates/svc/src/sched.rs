//! The scheduler: FIFO admission over a bounded rank pool.
//!
//! Every job costs [`JobSpec::ranks`] slots out of a pool of `pool`
//! ranks. Jobs are admitted strictly in submission order — the head of
//! the queue waits until enough slots are free, then runs on its own
//! worker thread; jobs behind it wait even if they would fit (FIFO, no
//! bypass — starvation-freedom over utilization). At most `queue_cap`
//! jobs may be waiting; submissions beyond that are rejected with
//! [`SubmitError::QueueFull`] — the wire layer turns that into its
//! 429-style response.
//!
//! On shutdown ([`Scheduler::stop`]) workers raise a stop flag that the
//! job loops check between chunks/steps: each running job writes a final
//! snapshot and parks, so a restart resumes it bit-identically.

use crate::ckpt::CkptStore;
use crate::job::{error_code, run_job, JobEntry, JobPhase, JobSpec, WorkerOpts};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduler sizing.
#[derive(Clone, Copy, Debug)]
pub struct SchedOpts {
    /// Total rank slots; one job holds [`JobSpec::ranks`] while running.
    pub pool: usize,
    /// Maximum jobs waiting for admission before submissions bounce.
    pub queue_cap: usize,
    /// Worker-side execution knobs.
    pub worker: WorkerOpts,
}

impl Default for SchedOpts {
    fn default() -> Self {
        SchedOpts {
            pool: 4,
            queue_cap: 16,
            worker: WorkerOpts::default(),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at `queue_cap` (the 429 case).
    QueueFull {
        /// The configured cap that was hit.
        cap: usize,
    },
    /// The spec failed validation: wire code plus detail.
    Invalid {
        /// Stable error code (e.g. `invalid-config`).
        code: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The spec asks for more ranks than the pool will ever have.
    TooWide {
        /// Ranks the job wants.
        want: usize,
        /// Ranks the pool has.
        pool: usize,
    },
}

struct SchedState {
    /// Ids waiting for admission, FIFO.
    queue: VecDeque<u64>,
    /// Rank slots currently free.
    free: usize,
    /// Jobs currently holding slots (id → slots held).
    running: BTreeMap<u64, usize>,
}

struct Shared {
    opts: SchedOpts,
    ckpt: CkptStore,
    state: Mutex<SchedState>,
    wake: Condvar,
    stop: AtomicBool,
    next_id: AtomicU64,
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The job scheduler; see the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start a scheduler over `ckpt`, recovering every job found on
    /// disk: finished jobs are served from their stored results,
    /// unfinished ones re-enter the queue (snapshots are picked up at
    /// execution time).
    pub fn start(opts: SchedOpts, ckpt: CkptStore) -> Scheduler {
        assert!(opts.pool >= 1, "rank pool must hold at least one rank");
        let recovered = ckpt.scan().unwrap_or_default();
        let max_id = recovered.iter().map(|j| j.id).max().unwrap_or(0);
        let shared = Arc::new(Shared {
            opts,
            ckpt,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                free: opts.pool,
                running: BTreeMap::new(),
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(max_id + 1),
            jobs: Mutex::new(BTreeMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        for job in recovered {
            match job.done {
                Some(result) => {
                    let entry = Arc::new(JobEntry::recovered_done(job.id, job.spec, result));
                    shared.jobs.lock().unwrap().insert(job.id, entry);
                }
                None => {
                    let entry = Arc::new(JobEntry::new(job.id, job.spec));
                    shared.jobs.lock().unwrap().insert(job.id, entry);
                    shared.state.lock().unwrap().queue.push_back(job.id);
                }
            }
        }
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("svc-dispatch".to_string())
                .spawn(move || dispatch_loop(shared))
                .expect("spawn dispatcher")
        };
        shared.wake.notify_all();
        Scheduler {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Submit a job: validate, persist the spec, enqueue. Returns the id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if let Err(err) = spec.validate() {
            return Err(SubmitError::Invalid {
                code: error_code(&err),
                detail: err.to_string(),
            });
        }
        if spec.ranks() > self.shared.opts.pool {
            return Err(SubmitError::TooWide {
                want: spec.ranks(),
                pool: self.shared.opts.pool,
            });
        }
        let mut state = self.shared.state.lock().unwrap();
        if state.queue.len() >= self.shared.opts.queue_cap {
            return Err(SubmitError::QueueFull {
                cap: self.shared.opts.queue_cap,
            });
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(JobEntry::new(id, spec));
        // Persist before acknowledging: a crash right after submit must
        // still re-run the job.
        if let Err(err) = self.shared.ckpt.save_job(id, &entry.spec) {
            return Err(SubmitError::Invalid {
                code: "io",
                detail: format!("persisting job spec: {err}"),
            });
        }
        self.shared.jobs.lock().unwrap().insert(id, entry);
        state.queue.push_back(id);
        drop(state);
        self.shared.wake.notify_all();
        Ok(id)
    }

    /// Look up a job by id.
    pub fn job(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.shared.jobs.lock().unwrap().get(&id).cloned()
    }

    /// Ids of all known jobs (admission order).
    pub fn job_ids(&self) -> Vec<u64> {
        self.shared.jobs.lock().unwrap().keys().copied().collect()
    }

    /// Jobs currently holding rank slots (for tests and introspection).
    pub fn running_count(&self) -> usize {
        self.shared.state.lock().unwrap().running.len()
    }

    /// Graceful shutdown: running jobs snapshot and park; queued jobs
    /// stay queued on disk. Blocks until the dispatcher and every
    /// worker have returned, so the checkpoint directory is quiescent
    /// when this returns. Safe to call more than once.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.lock().unwrap().take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        let id = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // FIFO: only the head may be admitted.
                if let Some(&id) = state.queue.front() {
                    let want = shared
                        .jobs
                        .lock()
                        .unwrap()
                        .get(&id)
                        .map(|j| j.spec.ranks())
                        .unwrap_or(1);
                    if want <= state.free {
                        state.queue.pop_front();
                        state.free -= want;
                        state.running.insert(id, want);
                        break id;
                    }
                }
                state = shared.wake.wait(state).unwrap();
            }
        };
        let Some(entry) = shared.jobs.lock().unwrap().get(&id).cloned() else {
            let mut state = shared.state.lock().unwrap();
            if let Some(slots) = state.running.remove(&id) {
                state.free += slots;
            }
            continue;
        };
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("svc-job-{id}"))
            .spawn(move || {
                let snapshot = worker_shared.ckpt.load_snapshot(id);
                let ckpt = worker_shared.ckpt.clone();
                let save = move |bytes: &[u8]| ckpt.save_snapshot(id, bytes);
                let result = run_job(
                    &entry,
                    worker_shared.opts.worker,
                    snapshot,
                    &worker_shared.stop,
                    &save,
                );
                if let Some(result) = result {
                    if entry.phase() == JobPhase::Done {
                        let _ = worker_shared.ckpt.save_done(id, &result);
                    }
                }
                let mut state = worker_shared.state.lock().unwrap();
                if let Some(slots) = state.running.remove(&id) {
                    state.free += slots;
                }
                drop(state);
                worker_shared.wake.notify_all();
            })
            .expect("spawn worker");
        shared.workers.lock().unwrap().push(handle);
    }
}
