//! Durable job state: specs, engine snapshots, and results on disk.
//!
//! Three files per job under one directory, all written atomically
//! (temp file + rename on the same filesystem) so a `SIGKILL` at any
//! instant leaves either the old or the new bytes, never a torn file:
//!
//! - `<id>.job` — the submitted spec as JSON; written at admission,
//!   never rewritten.
//! - `<id>.ckpt` — the engine snapshot (the binary `ESNP` codec from
//!   `core::parallel::wire`); rewritten at every checkpoint interval.
//! - `<id>.done` — the final result as JSON; written once at completion.
//!
//! [`CkptStore::scan`] classifies every job after a restart: a `.done`
//! file means finished (serve the stored result); a `.job` without one
//! means in-flight — resume from `.ckpt` if present, else restart from
//! the spec. Either way the engines' step-boundary determinism makes the
//! final result bit-identical to an uninterrupted run.

use crate::job::JobSpec;
use crate::json::{self, Json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One job recovered from disk by [`CkptStore::scan`].
#[derive(Debug)]
pub struct RecoveredJob {
    /// The job's id.
    pub id: u64,
    /// The spec it was submitted with.
    pub spec: JobSpec,
    /// The latest engine snapshot, if one was written.
    pub snapshot: Option<Vec<u8>>,
    /// The stored result, if the job finished.
    pub done: Option<Json>,
}

/// A directory of per-job files; see the module docs for the layout.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
}

impl CkptStore {
    /// Open (creating if needed) the checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CkptStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CkptStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, id: u64, ext: &str) -> PathBuf {
        self.dir.join(format!("{id}.{ext}"))
    }

    /// Atomic write: the bytes land under a temp name, then rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)
    }

    /// Persist the submitted spec (`<id>.job`).
    pub fn save_job(&self, id: u64, spec: &JobSpec) -> io::Result<()> {
        self.write_atomic(&self.path(id, "job"), spec.to_json().to_json().as_bytes())
    }

    /// Persist the latest engine snapshot (`<id>.ckpt`).
    pub fn save_snapshot(&self, id: u64, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(&self.path(id, "ckpt"), bytes)
    }

    /// Persist the final result (`<id>.done`) and drop the snapshot.
    pub fn save_done(&self, id: u64, result: &Json) -> io::Result<()> {
        self.write_atomic(&self.path(id, "done"), result.to_json().as_bytes())?;
        let _ = fs::remove_file(self.path(id, "ckpt"));
        Ok(())
    }

    /// Load the snapshot for `id`, if any.
    pub fn load_snapshot(&self, id: u64) -> Option<Vec<u8>> {
        fs::read(self.path(id, "ckpt")).ok()
    }

    /// Recover every job on disk (sorted by id, i.e. admission order).
    pub fn scan(&self) -> io::Result<Vec<RecoveredJob>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("job") {
                continue;
            }
            let Some(id) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let text = fs::read_to_string(&path)?;
            let spec_json = json::parse(&text)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
            let spec = JobSpec::from_json(&spec_json)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
            let done = fs::read_to_string(self.path(id, "done"))
                .ok()
                .and_then(|text| json::parse(&text).ok());
            jobs.push(RecoveredJob {
                id,
                spec,
                snapshot: self.load_snapshot(id),
                done,
            });
        }
        jobs.sort_by_key(|j| j.id);
        Ok(jobs)
    }

    /// Highest job id on disk (0 when empty) — the restart id counter
    /// continues above it.
    pub fn max_id(&self) -> u64 {
        self.scan()
            .map(|jobs| jobs.iter().map(|j| j.id).max().unwrap_or(0))
            .unwrap_or(0)
    }
}
