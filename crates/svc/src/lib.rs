//! # edgeswitch-svc
//!
//! Randomization-as-a-service: a zero-dependency job server over the
//! switching engines. Submit a graph (inline edges or a generator
//! spec), a budget, a randomizer and driver knobs; get a job id; poll
//! or stream progress events; fetch the final report and switched
//! graph. See DESIGN.md §4i for the architecture.
//!
//! - [`json`]: hand-rolled JSON value, parser and writer (std only);
//! - [`job`]: job specs, per-job state, and the execution loop over the
//!   resumable engines;
//! - [`sched`]: FIFO admission over a bounded rank pool, with a queue
//!   cap that turns overload into typed rejections;
//! - [`ckpt`]: durable specs/snapshots/results with atomic writes, so a
//!   `SIGKILL`ed server resumes every in-flight job bit-identically;
//! - [`server`]: the TCP front door (thread per connection,
//!   newline-delimited JSON);
//! - [`Client`]: a minimal blocking client for tests and the
//!   `repro serve` smoke driver.
//!
//! ```no_run
//! use edgeswitch_svc::{Client, Server, ServerOpts, SchedOpts};
//!
//! let opts = ServerOpts { ckpt_dir: "/tmp/svc".into(), sched: SchedOpts::default() };
//! let server = Server::bind("127.0.0.1:0", opts).unwrap();
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(&addr.to_string()).unwrap();
//! let id = client
//!     .submit_json(r#"{"graph":{"type":"er","n":200,"m":800,"seed":1},
//!                      "budget":{"visit_rate":0.5},"driver":"simulated","p":2,"seed":9}"#)
//!     .unwrap()            // I/O level
//!     .expect("admitted"); // protocol level (429 etc. land here)
//! let result = client.wait_done(id, std::time::Duration::from_secs(60)).unwrap();
//! println!("digest: {}", result.get("digest").unwrap().as_str().unwrap());
//! ```

#![warn(missing_docs)]

pub mod ckpt;
pub mod job;
pub mod json;
pub mod sched;
pub mod server;

pub use ckpt::{CkptStore, RecoveredJob};
pub use job::{BudgetSpec, Driver, GraphSpec, JobEntry, JobPhase, JobSpec, WorkerOpts};
pub use json::Json;
pub use sched::{SchedOpts, Scheduler, SubmitError};
pub use server::{Server, ServerOpts};

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A minimal blocking client: one request line out, one response line
/// back (plus a streaming mode for `watch`).
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server at `addr` (e.g. `127.0.0.1:4517`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Send one request object and read one response line.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let stream = self.reader.get_mut();
        stream.write_all(request.to_json().as_bytes())?;
        stream.write_all(b"\n")?;
        self.read_line()
    }

    /// Read a single response line.
    pub fn read_line(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        json::parse(line.trim_end()).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
        })
    }

    /// Submit a job given as a JSON text; returns the job id on
    /// admission and the server's error reply otherwise.
    pub fn submit_json(&mut self, job: &str) -> io::Result<Result<u64, Json>> {
        let spec =
            json::parse(job).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
        self.submit(spec)
    }

    /// Submit a job given as a parsed spec object.
    pub fn submit(&mut self, job: Json) -> io::Result<Result<u64, Json>> {
        let reply = self.request(&Json::obj([("op", Json::str("submit")), ("job", job)]))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            let id = reply.get("id").and_then(Json::as_u64).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "submit reply without id")
            })?;
            Ok(Ok(id))
        } else {
            Ok(Err(reply))
        }
    }

    /// Fetch a job's status object.
    pub fn status(&mut self, id: u64) -> io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::str("status")),
            ("id", Json::num(id)),
        ]))
    }

    /// Fetch events from cursor `from`; returns `(events, next_cursor)`.
    pub fn events(&mut self, id: u64, from: u64) -> io::Result<(Vec<Json>, u64)> {
        let reply = self.request(&Json::obj([
            ("op", Json::str("events")),
            ("id", Json::num(id)),
            ("from", Json::num(from)),
        ]))?;
        let events = reply
            .get("events")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        let next = reply.get("next").and_then(Json::as_u64).unwrap_or(from);
        Ok((events, next))
    }

    /// Poll `status` until the job is done (returning its result) or
    /// failed / timed out (returning an error).
    pub fn wait_done(&mut self, id: u64, timeout: Duration) -> io::Result<Json> {
        let start = Instant::now();
        loop {
            let status = self.status(id)?;
            match status.get("state").and_then(Json::as_str) {
                Some("done") => {
                    let reply = self.request(&Json::obj([
                        ("op", Json::str("result")),
                        ("id", Json::num(id)),
                    ]))?;
                    return reply.get("result").cloned().ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "done job without result")
                    });
                }
                Some("failed") => {
                    return Err(io::Error::other(format!(
                        "job {id} failed: {}",
                        status
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                    )));
                }
                _ => {
                    if start.elapsed() > timeout {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("job {id} not done after {timeout:?}"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Ask the server to shut down (it checkpoints running jobs first).
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::obj([("op", Json::str("shutdown"))]))
    }
}
