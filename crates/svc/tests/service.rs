//! End-to-end service tests over real TCP connections: submission and
//! results, concurrent jobs on the bounded rank pool, queue-full
//! rejection, wire-level validation errors, and checkpoint/resume
//! bit-identity across a server restart.

use edgeswitch_svc::{json, Client, Json, SchedOpts, Server, ServerOpts, WorkerOpts};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "edgeswitch-svc-{}-{tag}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &Path, sched: SchedOpts) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOpts {
            ckpt_dir: dir.to_path_buf(),
            sched,
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn er_job(budget: &str, driver: &str, p: u64) -> Json {
    json::parse(&format!(
        r#"{{"graph":{{"type":"er","n":120,"m":480,"seed":5}},
            "budget":{budget},"driver":"{driver}","p":{p},"seed":11,"window":4}}"#
    ))
    .unwrap()
}

#[test]
fn submit_poll_result_roundtrip() {
    let dir = temp_dir("roundtrip");
    let (addr, handle) = start_server(&dir, SchedOpts::default());
    let mut client = Client::connect(&addr).unwrap();

    let pong = client
        .request(&Json::obj([("op", Json::str("ping"))]))
        .unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    let id = client
        .submit(er_job(r#"{"switches":400}"#, "simulated", 2))
        .unwrap()
        .expect("admitted");
    let result = client.wait_done(id, Duration::from_secs(60)).unwrap();
    assert_eq!(result.get("performed").and_then(Json::as_u64), Some(400));
    let digest = result.get("digest").and_then(Json::as_str).unwrap();
    assert!(digest.starts_with("0x") && digest.len() == 18, "{digest}");

    // The event stream saw the full lifecycle.
    let (events, _) = client.events(id, 0).unwrap();
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert_eq!(kinds.first(), Some(&"queued"));
    assert!(kinds.contains(&"running"));
    assert!(kinds.iter().filter(|k| **k == "step").count() >= 1);
    assert_eq!(kinds.last(), Some(&"done"));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn pool_runs_concurrent_jobs_and_queue_cap_rejects() {
    let dir = temp_dir("pool");
    // Pool of 2 single-rank slots; jobs long enough to overlap
    // (sequential, small chunks → many scheduling points).
    let sched = SchedOpts {
        pool: 2,
        queue_cap: 1,
        worker: WorkerOpts {
            chunk: 64,
            ckpt_every: 0,
        },
    };
    let (addr, handle) = start_server(&dir, sched);
    let mut client = Client::connect(&addr).unwrap();

    let a = client
        .submit(er_job(r#"{"switches":1500000}"#, "sequential", 1))
        .unwrap()
        .expect("job a admitted");
    let b = client
        .submit(er_job(r#"{"switches":1500000}"#, "sequential", 1))
        .unwrap()
        .expect("job b admitted");

    // Both must be observed running at once (pool has 2 slots).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let sa = client.status(a).unwrap();
        let sb = client.status(b).unwrap();
        let running = |s: &Json| s.get("state").and_then(Json::as_str) == Some("running");
        if running(&sa) && running(&sb) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "jobs never overlapped: {} / {}",
            sa.to_json(),
            sb.to_json()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Pool exhausted: the next job queues (cap 1), the one after bounces.
    let c = client
        .submit(er_job(r#"{"switches":100}"#, "sequential", 1))
        .unwrap()
        .expect("job c queues");
    let rejected = client
        .submit(er_job(r#"{"switches":100}"#, "sequential", 1))
        .unwrap()
        .expect_err("queue is full");
    assert_eq!(
        rejected.get("error").and_then(Json::as_str),
        Some("queue-full")
    );
    assert_eq!(rejected.get("code").and_then(Json::as_u64), Some(429));

    for id in [a, b, c] {
        client.wait_done(id, Duration::from_secs(120)).unwrap();
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn wire_validation_maps_run_errors() {
    let dir = temp_dir("validate");
    let (addr, handle) = start_server(&dir, SchedOpts::default());
    let mut client = Client::connect(&addr).unwrap();

    let bad_budget = client
        .submit(er_job(r#"{"visit_rate":1.5}"#, "sequential", 1))
        .unwrap()
        .expect_err("visit rate out of range");
    assert_eq!(
        bad_budget.get("error").and_then(Json::as_str),
        Some("invalid-budget")
    );
    assert_eq!(bad_budget.get("code").and_then(Json::as_u64), Some(422));

    let bad_window = client
        .submit(
            json::parse(
                r#"{"graph":{"type":"er","n":50,"m":100,"seed":1},
                    "budget":{"switches":10},"driver":"simulated","p":2,"window":0}"#,
            )
            .unwrap(),
        )
        .unwrap()
        .expect_err("window 0");
    assert_eq!(
        bad_window.get("error").and_then(Json::as_str),
        Some("invalid-config")
    );

    let too_wide = client
        .submit(er_job(r#"{"switches":10}"#, "simulated", 64))
        .unwrap()
        .expect_err("wider than the pool");
    assert_eq!(
        too_wide.get("error").and_then(Json::as_str),
        Some("too-wide")
    );

    let not_found = client
        .request(&Json::obj([
            ("op", Json::str("status")),
            ("id", Json::num(999)),
        ]))
        .unwrap();
    assert_eq!(not_found.get("code").and_then(Json::as_u64), Some(404));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The headline guarantee: a server stopped mid-run resumes every
/// in-flight job from its snapshot to a bit-identical result.
#[test]
fn restart_resumes_jobs_bit_identically() {
    for (driver, p, budget) in [
        ("sequential", 1u64, r#"{"switches":40000}"#),
        ("simulated", 4u64, r#"{"switches":4000}"#),
    ] {
        let dir = temp_dir("resume");
        let sched = SchedOpts {
            pool: 4,
            queue_cap: 8,
            worker: WorkerOpts {
                chunk: 128,
                ckpt_every: 1,
            },
        };
        let (addr, handle) = start_server(&dir, sched);
        let mut client = Client::connect(&addr).unwrap();
        let id = client
            .submit(er_job(budget, driver, p))
            .unwrap()
            .expect("admitted");

        // Reference: the same spec executed uninterrupted in-process.
        let spec = edgeswitch_svc::JobSpec::from_json(&er_job(budget, driver, p)).unwrap();
        let graph = spec.graph.build().unwrap();
        let reference = spec.as_run().execute(&graph);
        let expect_digest = format!("{:#018x}", reference.graph().edge_digest());

        // Let it make some progress, then stop the server mid-run. (If
        // the machine is fast enough that the job finishes first, the
        // restart still has to serve the stored result identically.)
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.status(id).unwrap();
            let performed = status.get("performed").and_then(Json::as_u64).unwrap_or(0);
            let state = status.get("state").and_then(Json::as_str).unwrap_or("");
            if performed > 0 || state == "done" {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job never progressed: {}",
                status.to_json()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        client.shutdown().unwrap();
        handle.join().unwrap();

        // Second server over the same checkpoint dir picks the job up.
        let (addr, handle) = start_server(
            &dir,
            SchedOpts {
                pool: 4,
                queue_cap: 8,
                worker: WorkerOpts {
                    chunk: 128,
                    ckpt_every: 1,
                },
            },
        );
        let mut client = Client::connect(&addr).unwrap();
        let result = client.wait_done(id, Duration::from_secs(120)).unwrap();
        assert_eq!(
            result.get("digest").and_then(Json::as_str),
            Some(&expect_digest[..]),
            "{driver} p={p}: resumed digest must match the uninterrupted run"
        );
        assert_eq!(
            result.get("performed").and_then(Json::as_u64),
            Some(reference.performed()),
            "{driver} p={p}: performed must match"
        );
        client.shutdown().unwrap();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A finished job's result survives a restart (served from `.done`).
#[test]
fn done_results_survive_restart() {
    let dir = temp_dir("done");
    let (addr, handle) = start_server(&dir, SchedOpts::default());
    let mut client = Client::connect(&addr).unwrap();
    let id = client
        .submit(er_job(r#"{"switches":200}"#, "simulated", 2))
        .unwrap()
        .expect("admitted");
    let first = client.wait_done(id, Duration::from_secs(60)).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    let (addr, handle) = start_server(&dir, SchedOpts::default());
    let mut client = Client::connect(&addr).unwrap();
    let again = client.wait_done(id, Duration::from_secs(10)).unwrap();
    assert_eq!(
        again.get("digest").and_then(Json::as_str),
        first.get("digest").and_then(Json::as_str)
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
