//! Tests of the tag-filtered receive paths that protect step-boundary
//! collectives from protocol traffic and vice versa.

use crate::packet::CollPayload;
use crate::runtime::run_world_default;

#[test]
fn try_recv_tag_buffers_other_tags() {
    let out = run_world_default::<CollPayload, (u64, u64), _>(2, |comm| {
        let peer = 1 - comm.rank();
        // Send two messages with different tags.
        comm.send(peer, 8, CollPayload::U64(80 + comm.rank() as u64));
        comm.send(peer, 9, CollPayload::U64(90 + comm.rank() as u64));
        comm.barrier();
        // Ask for tag 9 first: tag 8 must be buffered, not lost.
        let nine = loop {
            if let Some(p) = comm.try_recv_tag(9) {
                break p;
            }
        };
        let eight = comm.try_recv_tag(8).expect("buffered message available");
        let get = |p: crate::packet::Packet<CollPayload>| match p.payload {
            CollPayload::U64(v) => v,
            _ => unreachable!(),
        };
        (get(eight), get(nine))
    });
    assert_eq!(out[0], (80 + 1, 90 + 1));
    assert_eq!(out[1], (80, 90));
}

#[test]
fn try_recv_tag_returns_none_when_empty() {
    let out = run_world_default::<CollPayload, bool, _>(2, |comm| {
        comm.barrier();
        comm.try_recv_tag(5).is_none()
    });
    assert_eq!(out, vec![true, true]);
}

#[test]
fn recv_tag_skips_collective_traffic() {
    // One rank races ahead into an allgather while the other still
    // expects a user message: the user message must be deliverable and
    // the collective must still complete.
    let out = run_world_default::<CollPayload, Vec<u64>, _>(2, |comm| {
        let peer = 1 - comm.rank();
        comm.send(peer, 2, CollPayload::U64(7));
        let v = comm.allgather_u64(comm.rank() as u64);
        let pkt = comm.recv_tag(2);
        match pkt.payload {
            CollPayload::U64(7) => {}
            other => panic!("wrong payload {other:?}"),
        }
        v
    });
    for row in out {
        assert_eq!(row, vec![0, 1]);
    }
}

#[test]
fn fifo_order_within_same_tag_and_source() {
    let out = run_world_default::<CollPayload, Vec<u64>, _>(2, |comm| {
        let peer = 1 - comm.rank();
        for i in 0..5u64 {
            comm.send(peer, 3, CollPayload::U64(i));
        }
        (0..5)
            .map(|_| match comm.recv_match(peer, 3).payload {
                CollPayload::U64(v) => v,
                _ => unreachable!(),
            })
            .collect()
    });
    for row in out {
        assert_eq!(row, vec![0, 1, 2, 3, 4]);
    }
}
