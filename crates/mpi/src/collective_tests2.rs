//! Tests of the rooted collectives and scans.

use crate::packet::CollPayload;
use crate::runtime::run_world_default;

#[test]
fn gather_collects_at_root_only() {
    let out = run_world_default::<CollPayload, Option<Vec<u64>>, _>(5, |comm| {
        comm.gather_u64(2, comm.rank() as u64 * 3)
    });
    for (rank, res) in out.iter().enumerate() {
        if rank == 2 {
            assert_eq!(res.as_deref(), Some(&[0, 3, 6, 9, 12][..]));
        } else {
            assert!(res.is_none());
        }
    }
}

#[test]
fn scatter_distributes_from_root() {
    let out = run_world_default::<CollPayload, u64, _>(4, |comm| {
        let values = if comm.rank() == 0 {
            Some(vec![10, 11, 12, 13])
        } else {
            None
        };
        comm.scatter_u64(0, values.as_deref())
    });
    assert_eq!(out, vec![10, 11, 12, 13]);
}

#[test]
fn allreduce_f64_sums() {
    let out = run_world_default::<CollPayload, f64, _>(4, |comm| {
        comm.allreduce_sum_f64(0.25 * (comm.rank() as f64 + 1.0))
    });
    for v in out {
        assert!((v - 2.5).abs() < 1e-12);
    }
}

#[test]
fn scan_is_inclusive_prefix_sum() {
    let out = run_world_default::<CollPayload, u64, _>(5, |comm| {
        comm.scan_sum_u64(comm.rank() as u64 + 1)
    });
    assert_eq!(out, vec![1, 3, 6, 10, 15]);
}

#[test]
fn rooted_collectives_compose_with_symmetric_ones() {
    let out = run_world_default::<CollPayload, (u64, u64), _>(3, |comm| {
        let gathered = comm.gather_u64(1, comm.rank() as u64);
        let total = comm.allreduce_sum_u64(comm.rank() as u64);
        let scattered = comm.scatter_u64(
            1,
            gathered
                .map(|g| g.iter().map(|x| x * 10).collect::<Vec<_>>())
                .as_deref(),
        );
        (scattered, total)
    });
    assert_eq!(out, vec![(0, 3), (10, 3), (20, 3)]);
}
