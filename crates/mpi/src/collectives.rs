//! Collective operations over a [`Comm`].
//!
//! Implementations are direct-exchange (`O(p)` messages) for clarity and
//! robustness — the paper's `O(log p)` tree costs are what the
//! virtual-time cost models charge; the threaded runtime only needs
//! correctness. Every collective draws a fresh sequence number so that
//! back-to-back collectives and in-flight user messages can never be
//! confused (non-matching packets are buffered by `recv_match`).

// Rank indices are used simultaneously for slot indexing and message
// routing; iterator rewrites would hide the SPMD structure.
#![allow(clippy::needless_range_loop)]

use crate::comm::{CollCarrier, Comm};
use crate::packet::{CollPayload, COLLECTIVE_TAG_BASE};

/// Tags per collective invocation (round budget).
const TAG_STRIDE: u32 = 4;

impl<M: CollCarrier> Comm<M> {
    fn next_coll_tag(&mut self) -> u32 {
        let seq = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        COLLECTIVE_TAG_BASE + (seq % ((u32::MAX - COLLECTIVE_TAG_BASE) / TAG_STRIDE)) * TAG_STRIDE
    }

    fn expect_coll(&mut self, src: usize, tag: u32) -> CollPayload {
        self.recv_match(src, tag)
            .payload
            .into_coll()
            .expect("user message arrived with a collective tag")
    }

    /// Dissemination barrier: all ranks must call; returns when every rank
    /// has entered.
    ///
    /// All `⌈log₂ p⌉` rounds share one tag: round messages from the same
    /// peer are totally ordered by channel FIFO, so `recv_match` always
    /// consumes the earliest (i.e. correct) round.
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        if p == 1 {
            self.stats.collectives += 1;
            return;
        }
        let mut k = 1usize;
        while k < p {
            let dst = (rank + k) % p;
            let src = (rank + p - k % p) % p;
            self.send_raw(dst, tag, M::from_coll(CollPayload::Unit));
            let _ = self.expect_coll(src, tag);
            k <<= 1;
        }
        self.stats.collectives += 1;
    }

    /// Gather one `u64` from every rank; every rank receives the full
    /// vector indexed by rank.
    pub fn allgather_u64(&mut self, value: u64) -> Vec<u64> {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        let mut out = vec![0u64; p];
        out[rank] = value;
        for dst in 0..p {
            if dst != rank {
                self.send_raw(dst, tag, M::from_coll(CollPayload::U64(value)));
            }
        }
        for src in 0..p {
            if src != rank {
                match self.expect_coll(src, tag) {
                    CollPayload::U64(v) => out[src] = v,
                    other => panic!("allgather_u64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        out
    }

    /// Gather a `Vec<u64>` from every rank (rows may differ in length).
    pub fn allgather_vec_u64(&mut self, row: Vec<u64>) -> Vec<Vec<u64>> {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
        for dst in 0..p {
            if dst != rank {
                self.send_raw(dst, tag, M::from_coll(CollPayload::VecU64(row.clone())));
            }
        }
        out[rank] = row;
        for src in 0..p {
            if src != rank {
                match self.expect_coll(src, tag) {
                    CollPayload::VecU64(v) => out[src] = v,
                    other => panic!("allgather_vec_u64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        out
    }

    /// Personalized all-to-all of one `u64` per peer: rank `i` sends
    /// `row[j]` to rank `j` and receives `result[k]` from each rank `k`.
    /// This is the exchange step of the parallel multinomial algorithm
    /// (Alg. 5, line 5).
    pub fn alltoall_u64(&mut self, row: &[u64]) -> Vec<u64> {
        let (rank, p) = (self.rank(), self.size());
        assert_eq!(row.len(), p, "alltoall row must have one entry per rank");
        let tag = self.next_coll_tag();
        let mut out = vec![0u64; p];
        out[rank] = row[rank];
        for dst in 0..p {
            if dst != rank {
                self.send_raw(dst, tag, M::from_coll(CollPayload::U64(row[dst])));
            }
        }
        for src in 0..p {
            if src != rank {
                match self.expect_coll(src, tag) {
                    CollPayload::U64(v) => out[src] = v,
                    other => panic!("alltoall_u64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        out
    }

    /// Sum-allreduce of a single `u64`.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        self.allgather_u64(value).into_iter().sum()
    }

    /// Max-allreduce of a single `u64`.
    pub fn allreduce_max_u64(&mut self, value: u64) -> u64 {
        self.allgather_u64(value).into_iter().max().unwrap_or(0)
    }

    /// Gather one `u64` from every rank at `root`; `root` returns the
    /// rank-indexed vector, everyone else `None`.
    pub fn gather_u64(&mut self, root: usize, value: u64) -> Option<Vec<u64>> {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        self.stats.collectives += 1;
        if rank == root {
            let mut out = vec![0u64; p];
            out[rank] = value;
            for src in 0..p {
                if src != root {
                    match self.expect_coll(src, tag) {
                        CollPayload::U64(v) => out[src] = v,
                        other => panic!("gather_u64 got {other:?}"),
                    }
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, M::from_coll(CollPayload::U64(value)));
            None
        }
    }

    /// Scatter one `u64` per rank from `root`; every rank returns its
    /// element. Only `root` supplies `values` (length `p`).
    pub fn scatter_u64(&mut self, root: usize, values: Option<&[u64]>) -> u64 {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        self.stats.collectives += 1;
        if rank == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(values.len(), p, "scatter needs one value per rank");
            for dst in 0..p {
                if dst != root {
                    self.send_raw(dst, tag, M::from_coll(CollPayload::U64(values[dst])));
                }
            }
            values[rank]
        } else {
            match self.expect_coll(root, tag) {
                CollPayload::U64(v) => v,
                other => panic!("scatter_u64 got {other:?}"),
            }
        }
    }

    /// Sum-allreduce of an `f64`.
    pub fn allreduce_sum_f64(&mut self, value: f64) -> f64 {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        for dst in 0..p {
            if dst != rank {
                self.send_raw(dst, tag, M::from_coll(CollPayload::F64(value)));
            }
        }
        let mut sum = value;
        for src in 0..p {
            if src != rank {
                match self.expect_coll(src, tag) {
                    CollPayload::F64(v) => sum += v,
                    other => panic!("allreduce_sum_f64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        sum
    }

    /// Inclusive prefix-sum scan of a `u64`: rank `i` returns
    /// `Σ_{j ≤ i} value_j`.
    pub fn scan_sum_u64(&mut self, value: u64) -> u64 {
        // Direct implementation over allgather (p is small in this
        // substrate; the DES charges the log-p tree cost).
        let all = self.allgather_u64(value);
        all[..=self.rank()].iter().sum()
    }

    /// Broadcast a `Vec<f64>` from `root` to everyone; each rank returns
    /// its copy.
    pub fn broadcast_vec_f64(&mut self, root: usize, data: Option<Vec<f64>>) -> Vec<f64> {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.rank(), self.size());
        self.stats.collectives += 1;
        if rank == root {
            let data = data.expect("root must supply broadcast data");
            for dst in 0..p {
                if dst != root {
                    self.send_raw(dst, tag, M::from_coll(CollPayload::VecF64(data.clone())));
                }
            }
            data
        } else {
            match self.expect_coll(root, tag) {
                CollPayload::VecF64(v) => v,
                other => panic!("broadcast_vec_f64 got {other:?}"),
            }
        }
    }
}
