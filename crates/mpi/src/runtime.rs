//! Spawning a world of ranks as scoped threads.

use crate::comm::{CollCarrier, Comm, DEFAULT_SPIN_RELAX, DEFAULT_SPIN_TOTAL};
use crate::packet::Packet;
use crossbeam::channel::unbounded;
use std::time::Duration;

/// Configuration for a threaded world.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Per-receive deadlock timeout; a rank that waits longer panics.
    pub recv_timeout: Duration,
    /// Busy-spin iterations with CPU relax hints at the start of a
    /// blocking receive.
    pub spin_relax: u32,
    /// Total spin iterations (relax, then `yield_now`) before the receive
    /// parks on the channel. Keep small when ranks timeshare cores; grow
    /// it once each rank owns one.
    pub spin_total: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            recv_timeout: Duration::from_secs(120),
            spin_relax: DEFAULT_SPIN_RELAX,
            spin_total: DEFAULT_SPIN_TOTAL,
        }
    }
}

/// Run `f` on `p` ranks, each in its own thread with a connected
/// [`Comm`]; returns the per-rank results in rank order.
///
/// This is the SPMD entry point: every rank runs the same closure and
/// branches on `comm.rank()`, exactly like an `MPI_COMM_WORLD` program.
///
/// # Panics
/// Propagates the first rank panic (including recv timeouts, which turn
/// protocol deadlocks into loud test failures).
pub fn run_world<M, T, F>(p: usize, config: WorldConfig, f: F) -> Vec<T>
where
    M: CollCarrier + Send + 'static,
    T: Send,
    F: Fn(&mut Comm<M>) -> T + Send + Sync,
{
    assert!(p >= 1, "world needs at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Packet<M>>();
        senders.push(tx);
        receivers.push(rx);
    }
    let f = &f;
    let mut comms: Vec<Comm<M>> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            Comm::new(
                rank,
                senders.clone(),
                rx,
                config.recv_timeout,
                config.spin_relax,
                config.spin_total,
            )
        })
        .collect();
    // Channels now live only inside the Comms, so a send to a finished
    // rank fails fast instead of queueing forever.
    drop(senders);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|comm| scope.spawn(move || f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// [`run_world`] with the default configuration.
pub fn run_world_default<M, T, F>(p: usize, f: F) -> Vec<T>
where
    M: CollCarrier + Send + 'static,
    T: Send,
    F: Fn(&mut Comm<M>) -> T + Send + Sync,
{
    run_world(p, WorldConfig::default(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::CollPayload;

    #[test]
    fn ranks_see_their_ids() {
        let out = run_world_default::<CollPayload, _, _>(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = run_world_default::<CollPayload, usize, _>(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 7, CollPayload::U64(comm.rank() as u64));
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let pkt = comm.recv_match(prev, 7);
            match pkt.payload {
                CollPayload::U64(v) => v as usize,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn single_rank_world() {
        let out = run_world_default::<CollPayload, _, _>(1, |comm| {
            comm.barrier();
            comm.allgather_u64(42)
        });
        assert_eq!(out, vec![vec![42]]);
    }

    #[test]
    fn self_send_is_received() {
        let out = run_world_default::<CollPayload, u64, _>(2, |comm| {
            let me = comm.rank();
            comm.send(me, 3, CollPayload::U64(9 + me as u64));
            match comm.recv_match(me, 3).payload {
                CollPayload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![9, 10]);
    }
}
