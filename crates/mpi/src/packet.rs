//! Wire types: tagged packets and the payloads collectives exchange.

/// A message in flight between two ranks.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Sender rank.
    pub src: usize,
    /// Application tag. Tags at or above [`COLLECTIVE_TAG_BASE`] are
    /// reserved for collective operations.
    pub tag: u32,
    /// Payload.
    pub payload: M,
}

/// First tag reserved for collectives; user code must tag below this.
pub const COLLECTIVE_TAG_BASE: u32 = 0xF000_0000;

/// Payloads used internally by the collective operations. User message
/// types embed this via [`From`]/[`TryInto`]-style conversions provided by
/// the [`crate::comm::CollCarrier`] trait.
#[derive(Clone, Debug, PartialEq)]
pub enum CollPayload {
    /// Pure synchronization (barrier rounds).
    Unit,
    /// A single counter (reductions).
    U64(u64),
    /// A single float (reductions).
    F64(f64),
    /// A vector of counters (allgather / alltoall rows).
    VecU64(Vec<u64>),
    /// A vector of floats (probability vectors).
    VecF64(Vec<f64>),
}

impl CollPayload {
    /// Approximate wire size in bytes, for traffic accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            CollPayload::Unit => 1,
            CollPayload::U64(_) | CollPayload::F64(_) => 8,
            CollPayload::VecU64(v) => 8 * v.len(),
            CollPayload::VecF64(v) => 8 * v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(CollPayload::Unit.wire_size(), 1);
        assert_eq!(CollPayload::U64(9).wire_size(), 8);
        assert_eq!(CollPayload::VecU64(vec![1, 2, 3]).wire_size(), 24);
        assert_eq!(CollPayload::VecF64(vec![0.5; 4]).wire_size(), 32);
    }
}
