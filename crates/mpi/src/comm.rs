//! Per-rank communicator: tagged point-to-point messaging.

use crate::packet::{CollPayload, Packet, COLLECTIVE_TAG_BASE};
use crate::stats::CommStats;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;
use std::time::Duration;

/// Default iterations of the cheap spin phase of a blocking receive
/// (busy-poll with a CPU relax hint) before escalating to `yield_now`.
/// Tuned for oversubscribed single-machine worlds; configurable per world
/// through [`crate::WorldConfig`] once ranks own their cores.
pub const DEFAULT_SPIN_RELAX: u32 = 64;

/// Default total polling iterations (relax + yield phases) of a blocking
/// receive before parking on the channel with a timeout. Oversubscribed
/// boxes reach the yield phase almost immediately, so the sender's thread
/// gets scheduled instead of us burning its time slice. Configurable per
/// world through [`crate::WorldConfig`].
pub const DEFAULT_SPIN_TOTAL: u32 = 256;

/// How user message types expose their approximate wire size and embed
/// collective payloads. Implemented for [`CollPayload`] itself and easily
/// derived for protocol enums that add a `Coll(CollPayload)` variant.
pub trait CollCarrier: Sized {
    /// Wrap a collective payload into the message type.
    fn from_coll(p: CollPayload) -> Self;
    /// Extract a collective payload (`None` if this is a user message —
    /// receiving one inside a collective is a protocol error).
    fn into_coll(self) -> Option<CollPayload>;
    /// Approximate serialized size in bytes, for traffic accounting.
    fn wire_size(&self) -> usize {
        std::mem::size_of::<Self>()
    }
    /// Counter slot in [`CommStats::logical_by_kind`] for this message.
    /// Protocol enums override this to get per-variant traffic counts;
    /// the default buckets everything into the last (catch-all) slot.
    fn kind_index(&self) -> usize {
        crate::stats::KIND_SLOTS - 1
    }
    /// Fold this message into per-kind counters. The default counts one
    /// message under [`CollCarrier::kind_index`]; batching carriers
    /// override it to count each framed logical message under its own
    /// kind, keeping per-kind counts packet-framing-independent.
    fn record_kinds(&self, slots: &mut [u64]) {
        slots[self.kind_index().min(slots.len() - 1)] += 1;
    }
}

impl CollCarrier for CollPayload {
    fn from_coll(p: CollPayload) -> Self {
        p
    }
    fn into_coll(self) -> Option<CollPayload> {
        Some(self)
    }
    fn wire_size(&self) -> usize {
        CollPayload::wire_size(self)
    }
}

/// Buffered packets indexed by tag, preserving global arrival order.
///
/// The protocol keeps very few distinct tags alive at once (the
/// point-to-point protocol tag plus the current rotating collective
/// tag), so the index is an association list of per-tag FIFO queues:
/// lookup by tag is a scan over ≤ a handful of buckets instead of a
/// scan over every buffered packet, and emptied buckets are freed so
/// rotating collective tags cannot accumulate.
struct PendingBuf<M> {
    /// `(tag, queue of (arrival_seq, packet))`.
    buckets: Vec<(u32, TagQueue<M>)>,
    /// Emptied per-tag queues kept for reuse. Collective tags rotate, so
    /// without recycling every collective that overtakes a peer pays a
    /// fresh queue allocation for its one-shot tag; with it the same few
    /// queue buffers cycle for the whole run. Kept separate from
    /// `buckets` so the live index stays a minimal scan.
    spares: Vec<TagQueue<M>>,
    /// Queue allocations avoided via `spares`.
    reuses: u64,
    /// Global arrival stamp, so any-tag receives stay FIFO.
    seq: u64,
}

/// One tag's FIFO of `(arrival_seq, packet)` entries.
type TagQueue<M> = VecDeque<(u64, Packet<M>)>;

/// Emptied per-tag queues retained for reuse (beyond this, retired
/// queues are dropped; the protocol keeps ≤ a handful of tags alive).
const SPARE_QUEUES: usize = 4;

impl<M> PendingBuf<M> {
    fn new() -> Self {
        PendingBuf {
            buckets: Vec::new(),
            spares: Vec::new(),
            reuses: 0,
            seq: 0,
        }
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    fn push(&mut self, p: Packet<M>) {
        let seq = self.seq;
        self.seq += 1;
        match self.buckets.iter_mut().find(|(t, _)| *t == p.tag) {
            Some((_, q)) => q.push_back((seq, p)),
            None => {
                let mut q = match self.spares.pop() {
                    Some(q) => {
                        self.reuses += 1;
                        q
                    }
                    None => VecDeque::new(),
                };
                let tag = p.tag;
                q.push_back((seq, p));
                self.buckets.push((tag, q));
            }
        }
    }

    /// Drop bucket `idx` (it just emptied), parking its queue for reuse.
    fn retire(&mut self, idx: usize) {
        let (_, q) = self.buckets.swap_remove(idx);
        debug_assert!(q.is_empty(), "retired bucket still holds packets");
        if self.spares.len() < SPARE_QUEUES {
            self.spares.push(q);
        }
    }

    /// Earliest-arrived packet of any tag.
    fn pop_any(&mut self) -> Option<Packet<M>> {
        let idx = self
            .buckets
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, q))| q.front().expect("buckets are never empty").0)
            .map(|(i, _)| i)?;
        Some(self.pop_front_of(idx))
    }

    /// Earliest-arrived packet with `tag`.
    fn pop_tag(&mut self, tag: u32) -> Option<Packet<M>> {
        let idx = self.buckets.iter().position(|(t, _)| *t == tag)?;
        Some(self.pop_front_of(idx))
    }

    /// Earliest-arrived packet matching `(src, tag)`.
    fn pop_match(&mut self, src: usize, tag: u32) -> Option<Packet<M>> {
        let idx = self.buckets.iter().position(|(t, _)| *t == tag)?;
        let q = &mut self.buckets[idx].1;
        let at = q.iter().position(|(_, p)| p.src == src)?;
        let (_, packet) = q.remove(at).expect("position is in range");
        if q.is_empty() {
            self.retire(idx);
        }
        Some(packet)
    }

    fn pop_front_of(&mut self, idx: usize) -> Packet<M> {
        let q = &mut self.buckets[idx].1;
        let (_, packet) = q.pop_front().expect("buckets are never empty");
        if q.is_empty() {
            self.retire(idx);
        }
        packet
    }
}

/// One rank's endpoint into the world: `send`/`recv` plus collectives
/// (in [`crate::collectives`]).
pub struct Comm<M> {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet<M>>>,
    receiver: Receiver<Packet<M>>,
    /// Messages received while waiting for something more specific,
    /// indexed by tag.
    pending: PendingBuf<M>,
    pub(crate) stats: CommStats,
    pub(crate) coll_seq: u32,
    timeout: Duration,
    spin_relax: u32,
    spin_total: u32,
}

impl<M: CollCarrier> Comm<M> {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Packet<M>>>,
        receiver: Receiver<Packet<M>>,
        timeout: Duration,
        spin_relax: u32,
        spin_total: u32,
    ) -> Self {
        let size = senders.len();
        Comm {
            rank,
            size,
            senders,
            receiver,
            pending: PendingBuf::new(),
            stats: CommStats::default(),
            coll_seq: 0,
            timeout,
            spin_relax,
            spin_total,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks `p`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        let mut stats = self.stats;
        stats.recv_buf_reuses = self.pending.reuses;
        stats
    }

    /// Zero every traffic counter, so a subsequent [`Comm::stats`] reads
    /// only the traffic since this call (e.g. to exclude a warm-up phase
    /// from a measurement). The buffer-reuse counter lives in the pending
    /// buffer rather than in [`CommStats`] — `stats()` copies it in at
    /// read time — so it must be cleared here too, or the next snapshot
    /// would resurrect the pre-reset count.
    pub fn reset_stats(&mut self) {
        self.stats = CommStats::default();
        self.pending.reuses = 0;
    }

    /// Send `payload` to `dst` with a user tag.
    ///
    /// # Panics
    /// Panics if `dst` is out of range, the tag collides with the
    /// collective namespace, or the destination has already shut down.
    pub fn send(&mut self, dst: usize, tag: u32, payload: M) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} reserved for collectives"
        );
        self.send_raw(dst, tag, payload);
    }

    pub(crate) fn send_raw(&mut self, dst: usize, tag: u32, payload: M) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += payload.wire_size() as u64;
        payload.record_kinds(&mut self.stats.logical_by_kind);
        self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .unwrap_or_else(|_| panic!("rank {} -> {dst}: receiver disconnected", self.rank));
    }

    /// Blocking channel receive with a spin-then-park phase: hot
    /// exchanges are usually answered within microseconds, so busy-poll
    /// briefly (relax, then yield so an oversubscribed sender can run)
    /// before paying `recv_timeout` parking latency. `None` on timeout.
    /// Park time is metered into [`CommStats::park_ns`] (the park
    /// already costs microseconds, so the `Instant` reads are noise).
    fn recv_spin(&mut self) -> Option<Packet<M>> {
        for spin in 0..self.spin_total {
            if let Ok(p) = self.receiver.try_recv() {
                return Some(p);
            }
            if spin < self.spin_relax {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let parked_at = std::time::Instant::now();
        let res = self.receiver.recv_timeout(self.timeout).ok();
        self.stats.parks += 1;
        self.stats.park_ns += parked_at.elapsed().as_nanos() as u64;
        res
    }

    /// Sample the channel backlog at a receive entry point into
    /// [`CommStats::recv_queue_peak`].
    #[inline]
    fn note_queue_depth(&mut self) {
        let depth = self.receiver.len() as u64;
        if depth > self.stats.recv_queue_peak {
            self.stats.recv_queue_peak = depth;
        }
    }

    /// Non-blocking receive of the next available message (any source,
    /// any tag); earlier-buffered messages are drained first.
    pub fn try_recv(&mut self) -> Option<Packet<M>> {
        self.note_queue_depth();
        if let Some(p) = self.pending.pop_any() {
            self.stats.packets_received += 1;
            return Some(p);
        }
        match self.receiver.try_recv() {
            Ok(p) => {
                self.stats.packets_received += 1;
                Some(p)
            }
            Err(_) => None,
        }
    }

    /// Blocking receive of the next message (any source, any tag).
    ///
    /// # Panics
    /// Panics after the configured timeout — a deadlocked protocol should
    /// fail loudly in tests rather than hang.
    pub fn recv(&mut self) -> Packet<M> {
        self.note_queue_depth();
        if let Some(p) = self.pending.pop_any() {
            self.stats.packets_received += 1;
            return p;
        }
        let p = self.recv_spin().unwrap_or_else(|| {
            panic!(
                "rank {}: recv timed out after {:?} (deadlock?)",
                self.rank, self.timeout
            )
        });
        self.stats.packets_received += 1;
        p
    }

    /// Blocking receive of a message matching `(src, tag)`; anything else
    /// arriving in the meantime is buffered for later `try_recv`/`recv`.
    pub fn recv_match(&mut self, src: usize, tag: u32) -> Packet<M> {
        self.note_queue_depth();
        if let Some(p) = self.pending.pop_match(src, tag) {
            self.stats.packets_received += 1;
            return p;
        }
        loop {
            let p = self.recv_spin().unwrap_or_else(|| {
                panic!(
                    "rank {}: recv_match(src={src}, tag={tag:#x}) timed out (deadlock?)",
                    self.rank
                )
            });
            if p.src == src && p.tag == tag {
                self.stats.packets_received += 1;
                return p;
            }
            self.pending.push(p);
        }
    }

    /// Non-blocking receive of a message with `tag` from any source;
    /// messages with other tags encountered on the way are buffered (so
    /// e.g. early-arriving collective traffic from a rank that has moved
    /// ahead survives until its collective runs).
    pub fn try_recv_tag(&mut self, tag: u32) -> Option<Packet<M>> {
        self.note_queue_depth();
        if let Some(p) = self.pending.pop_tag(tag) {
            self.stats.packets_received += 1;
            return Some(p);
        }
        loop {
            match self.receiver.try_recv() {
                Ok(p) if p.tag == tag => {
                    self.stats.packets_received += 1;
                    return Some(p);
                }
                Ok(p) => self.pending.push(p),
                Err(_) => return None,
            }
        }
    }

    /// Blocking receive of a message with `tag` from any source.
    pub fn recv_tag(&mut self, tag: u32) -> Packet<M> {
        self.note_queue_depth();
        if let Some(p) = self.pending.pop_tag(tag) {
            self.stats.packets_received += 1;
            return p;
        }
        loop {
            let p = self.recv_spin().unwrap_or_else(|| {
                panic!(
                    "rank {}: recv_tag({tag:#x}) timed out (deadlock?)",
                    self.rank
                )
            });
            if p.tag == tag {
                self.stats.packets_received += 1;
                return p;
            }
            self.pending.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: usize, tag: u32, v: u64) -> Packet<CollPayload> {
        Packet {
            src,
            tag,
            payload: CollPayload::U64(v),
        }
    }

    fn val(p: &Packet<CollPayload>) -> u64 {
        match p.payload {
            CollPayload::U64(v) => v,
            _ => unreachable!("test packets are U64"),
        }
    }

    #[test]
    fn pending_pop_any_is_globally_fifo_across_tags() {
        let mut buf = PendingBuf::new();
        buf.push(pkt(0, 7, 1));
        buf.push(pkt(1, 3, 2));
        buf.push(pkt(2, 7, 3));
        let order: Vec<u64> = std::iter::from_fn(|| buf.pop_any().as_ref().map(val)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(buf.is_empty());
    }

    #[test]
    fn pending_pop_tag_keeps_per_tag_order_and_frees_buckets() {
        let mut buf = PendingBuf::new();
        // Rotating collective tags: each used once, then emptied.
        for tag in 0..100u32 {
            buf.push(pkt(0, tag, tag as u64));
            assert_eq!(buf.pop_tag(tag).as_ref().map(val), Some(tag as u64));
        }
        assert!(buf.is_empty());
        assert!(buf.buckets.capacity() <= 8, "buckets list stays small");
        assert_eq!(
            buf.reuses, 99,
            "after the first tag, every rotation reuses a retired queue"
        );
        assert!(buf.spares.len() <= SPARE_QUEUES);
        buf.push(pkt(0, 5, 10));
        buf.push(pkt(1, 5, 11));
        buf.push(pkt(0, 6, 12));
        assert_eq!(buf.pop_tag(5).as_ref().map(val), Some(10));
        assert_eq!(buf.pop_tag(5).as_ref().map(val), Some(11));
        assert!(buf.pop_tag(5).is_none());
        assert_eq!(buf.pop_tag(6).as_ref().map(val), Some(12));
    }

    /// A one-rank world talking to itself, for exercising the `Comm`
    /// surface without spinning up threads.
    fn loopback() -> Comm<CollPayload> {
        let (tx, rx) = crossbeam::channel::unbounded();
        Comm::new(
            0,
            vec![tx],
            rx,
            Duration::from_secs(5),
            DEFAULT_SPIN_RELAX,
            DEFAULT_SPIN_TOTAL,
        )
    }

    #[test]
    fn reset_stats_clears_buffer_reuse_counter_too() {
        let mut comm = loopback();
        // Drive traffic that exercises the pending buffer's queue
        // recycling: rotate tags so each retired queue is reused, which
        // bumps the reuse counter that lives *outside* `CommStats`.
        for tag in 0..10u32 {
            comm.send(0, tag, CollPayload::U64(tag as u64));
            // Buffer it under the wrong tag first, forcing a push.
            assert!(comm.try_recv_tag(tag + 1).is_none());
            assert!(comm.try_recv_tag(tag).is_some());
        }
        let before = comm.stats();
        assert_eq!(before.packets_sent, 10);
        assert_eq!(before.packets_received, 10);
        assert!(
            before.recv_buf_reuses > 0,
            "rotating tags must recycle retired queues"
        );

        comm.reset_stats();
        let zeroed = comm.stats();
        assert_eq!(zeroed.packets_sent, 0);
        assert_eq!(zeroed.packets_received, 0);
        assert_eq!(zeroed.bytes_sent, 0);
        assert_eq!(zeroed.parks, 0);
        assert_eq!(
            zeroed.recv_buf_reuses, 0,
            "reset must reach the reuse counter in the pending buffer"
        );
        assert!(zeroed.logical_by_kind.iter().all(|&c| c == 0));

        // Counters start fresh afterwards — no resurrected totals.
        comm.send(0, 3, CollPayload::U64(7));
        assert!(comm.try_recv().is_some());
        let after = comm.stats();
        assert_eq!(after.packets_sent, 1);
        assert_eq!(after.packets_received, 1);
    }

    #[test]
    fn pending_pop_match_selects_by_source() {
        let mut buf = PendingBuf::new();
        buf.push(pkt(3, 9, 1));
        buf.push(pkt(1, 9, 2));
        buf.push(pkt(1, 4, 3));
        assert_eq!(buf.pop_match(1, 9).as_ref().map(val), Some(2));
        assert!(buf.pop_match(1, 9).is_none());
        assert_eq!(buf.pop_match(3, 9).as_ref().map(val), Some(1));
        assert_eq!(buf.pop_match(1, 4).as_ref().map(val), Some(3));
        assert!(buf.is_empty());
    }
}
