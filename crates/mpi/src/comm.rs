//! Per-rank communicator: tagged point-to-point messaging.

use crate::packet::{CollPayload, Packet, COLLECTIVE_TAG_BASE};
use crate::stats::CommStats;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;
use std::time::Duration;

/// How user message types expose their approximate wire size and embed
/// collective payloads. Implemented for [`CollPayload`] itself and easily
/// derived for protocol enums that add a `Coll(CollPayload)` variant.
pub trait CollCarrier: Sized {
    /// Wrap a collective payload into the message type.
    fn from_coll(p: CollPayload) -> Self;
    /// Extract a collective payload (`None` if this is a user message —
    /// receiving one inside a collective is a protocol error).
    fn into_coll(self) -> Option<CollPayload>;
    /// Approximate serialized size in bytes, for traffic accounting.
    fn wire_size(&self) -> usize {
        std::mem::size_of::<Self>()
    }
    /// Counter slot in [`CommStats::sent_by_kind`] for this message.
    /// Protocol enums override this to get per-variant traffic counts;
    /// the default buckets everything into the last (catch-all) slot.
    fn kind_index(&self) -> usize {
        crate::stats::KIND_SLOTS - 1
    }
}

impl CollCarrier for CollPayload {
    fn from_coll(p: CollPayload) -> Self {
        p
    }
    fn into_coll(self) -> Option<CollPayload> {
        Some(self)
    }
    fn wire_size(&self) -> usize {
        CollPayload::wire_size(self)
    }
}

/// One rank's endpoint into the world: `send`/`recv` plus collectives
/// (in [`crate::collectives`]).
pub struct Comm<M> {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet<M>>>,
    receiver: Receiver<Packet<M>>,
    /// Messages received while waiting for something more specific.
    pending: VecDeque<Packet<M>>,
    pub(crate) stats: CommStats,
    pub(crate) coll_seq: u32,
    timeout: Duration,
}

impl<M: CollCarrier> Comm<M> {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Packet<M>>>,
        receiver: Receiver<Packet<M>>,
        timeout: Duration,
    ) -> Self {
        let size = senders.len();
        Comm {
            rank,
            size,
            senders,
            receiver,
            pending: VecDeque::new(),
            stats: CommStats::default(),
            coll_seq: 0,
            timeout,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks `p`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Send `payload` to `dst` with a user tag.
    ///
    /// # Panics
    /// Panics if `dst` is out of range, the tag collides with the
    /// collective namespace, or the destination has already shut down.
    pub fn send(&mut self, dst: usize, tag: u32, payload: M) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} reserved for collectives"
        );
        self.send_raw(dst, tag, payload);
    }

    pub(crate) fn send_raw(&mut self, dst: usize, tag: u32, payload: M) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.wire_size() as u64;
        self.stats.sent_by_kind[payload.kind_index().min(crate::stats::KIND_SLOTS - 1)] += 1;
        self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .unwrap_or_else(|_| panic!("rank {} -> {dst}: receiver disconnected", self.rank));
    }

    /// Non-blocking receive of the next available message (any source,
    /// any tag); earlier-buffered messages are drained first.
    pub fn try_recv(&mut self) -> Option<Packet<M>> {
        if let Some(p) = self.pending.pop_front() {
            self.stats.messages_received += 1;
            return Some(p);
        }
        match self.receiver.try_recv() {
            Ok(p) => {
                self.stats.messages_received += 1;
                Some(p)
            }
            Err(_) => None,
        }
    }

    /// Blocking receive of the next message (any source, any tag).
    ///
    /// # Panics
    /// Panics after the configured timeout — a deadlocked protocol should
    /// fail loudly in tests rather than hang.
    pub fn recv(&mut self) -> Packet<M> {
        if let Some(p) = self.pending.pop_front() {
            self.stats.messages_received += 1;
            return p;
        }
        let p = self
            .receiver
            .recv_timeout(self.timeout)
            .unwrap_or_else(|_| {
                panic!(
                    "rank {}: recv timed out after {:?} (deadlock?)",
                    self.rank, self.timeout
                )
            });
        self.stats.messages_received += 1;
        p
    }

    /// Blocking receive of a message matching `(src, tag)`; anything else
    /// arriving in the meantime is buffered for later `try_recv`/`recv`.
    pub fn recv_match(&mut self, src: usize, tag: u32) -> Packet<M> {
        // Check the buffer first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            self.stats.messages_received += 1;
            return self.pending.remove(pos).unwrap();
        }
        loop {
            let p = self
                .receiver
                .recv_timeout(self.timeout)
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: recv_match(src={src}, tag={tag:#x}) timed out (deadlock?)",
                        self.rank
                    )
                });
            if p.src == src && p.tag == tag {
                self.stats.messages_received += 1;
                return p;
            }
            self.pending.push_back(p);
        }
    }

    /// Non-blocking receive of a message with `tag` from any source;
    /// messages with other tags encountered on the way are buffered (so
    /// e.g. early-arriving collective traffic from a rank that has moved
    /// ahead survives until its collective runs).
    pub fn try_recv_tag(&mut self, tag: u32) -> Option<Packet<M>> {
        if let Some(pos) = self.pending.iter().position(|p| p.tag == tag) {
            self.stats.messages_received += 1;
            return self.pending.remove(pos);
        }
        loop {
            match self.receiver.try_recv() {
                Ok(p) if p.tag == tag => {
                    self.stats.messages_received += 1;
                    return Some(p);
                }
                Ok(p) => self.pending.push_back(p),
                Err(_) => return None,
            }
        }
    }

    /// Blocking receive of a message with `tag` from any source.
    pub fn recv_tag(&mut self, tag: u32) -> Packet<M> {
        if let Some(pos) = self.pending.iter().position(|p| p.tag == tag) {
            self.stats.messages_received += 1;
            return self.pending.remove(pos).unwrap();
        }
        loop {
            let p = self
                .receiver
                .recv_timeout(self.timeout)
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: recv_tag({tag:#x}) timed out (deadlock?)",
                        self.rank
                    )
                });
            if p.tag == tag {
                self.stats.messages_received += 1;
                return p;
            }
            self.pending.push_back(p);
        }
    }
}
