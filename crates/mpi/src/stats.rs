//! Per-rank traffic counters, consumed by the virtual-time cost models
//! and the observability layer.
//!
//! Vocabulary (used consistently across the workspace):
//! - **packets** — physical channel sends/receives. A coalesced
//!   `Batch` frame is one packet regardless of how many protocol
//!   messages it carries.
//! - **logical messages** — protocol-level messages, counted per kind
//!   in [`CommStats::logical_by_kind`]; batching is transparent (each
//!   framed message counts under its own kind, the frame itself counts
//!   nothing).

/// Number of per-kind counter slots in [`CommStats::logical_by_kind`].
///
/// Message types report a slot via [`crate::comm::CollCarrier::kind_index`];
/// the last slot (`KIND_SLOTS - 1`) is the default catch-all for types that
/// don't classify their variants.
pub const KIND_SLOTS: usize = 24;

/// Traffic and wait counters accumulated by one rank's
/// [`crate::comm::Comm`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Physical packets sent (including collective rounds); a coalesced
    /// batch counts once.
    pub packets_sent: u64,
    /// Approximate payload bytes sent.
    pub bytes_sent: u64,
    /// Physical packets received.
    pub packets_received: u64,
    /// Collective operations completed.
    pub collectives: u64,
    /// Logical messages sent, bucketed by
    /// [`crate::comm::CollCarrier::kind_index`] (batch-transparent).
    pub logical_by_kind: [u64; KIND_SLOTS],
    /// Times a blocking receive exhausted its spin budget and parked on
    /// the channel.
    pub parks: u64,
    /// Total nanoseconds spent parked in blocking receives.
    pub park_ns: u64,
    /// Peak receive-queue depth observed at receive entry (how far
    /// behind its senders this rank got).
    pub recv_queue_peak: u64,
    /// Receive-buffer queue allocations avoided by recycling emptied
    /// per-tag buckets (rotating collective tags retire one per
    /// collective).
    pub recv_buf_reuses: u64,
}

impl CommStats {
    /// Element-wise aggregation for a whole world's traffic: counters
    /// add, `recv_queue_peak` takes the max.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        let mut logical_by_kind = self.logical_by_kind;
        for (slot, v) in logical_by_kind.iter_mut().zip(other.logical_by_kind.iter()) {
            *slot += v;
        }
        CommStats {
            packets_sent: self.packets_sent + other.packets_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            packets_received: self.packets_received + other.packets_received,
            collectives: self.collectives + other.collectives,
            logical_by_kind,
            parks: self.parks + other.parks,
            park_ns: self.park_ns + other.park_ns,
            recv_queue_peak: self.recv_queue_peak.max(other.recv_queue_peak),
            recv_buf_reuses: self.recv_buf_reuses + other.recv_buf_reuses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_peaks() {
        let mut ka = [0u64; KIND_SLOTS];
        ka[0] = 7;
        let mut kb = [0u64; KIND_SLOTS];
        kb[0] = 2;
        kb[3] = 1;
        let a = CommStats {
            packets_sent: 1,
            bytes_sent: 10,
            packets_received: 2,
            collectives: 3,
            logical_by_kind: ka,
            parks: 1,
            park_ns: 100,
            recv_queue_peak: 4,
            recv_buf_reuses: 2,
        };
        let b = CommStats {
            packets_sent: 4,
            bytes_sent: 40,
            packets_received: 5,
            collectives: 6,
            logical_by_kind: kb,
            parks: 2,
            park_ns: 300,
            recv_queue_peak: 2,
            recv_buf_reuses: 3,
        };
        let c = a.merge(&b);
        assert_eq!(c.packets_sent, 5);
        assert_eq!(c.bytes_sent, 50);
        assert_eq!(c.packets_received, 7);
        assert_eq!(c.collectives, 9);
        assert_eq!(c.logical_by_kind[0], 9);
        assert_eq!(c.logical_by_kind[3], 1);
        assert_eq!(c.logical_by_kind[1], 0);
        assert_eq!(c.parks, 3);
        assert_eq!(c.park_ns, 400);
        assert_eq!(c.recv_queue_peak, 4);
        assert_eq!(c.recv_buf_reuses, 5);
    }
}
