//! Per-rank traffic counters, consumed by the virtual-time cost models.

/// Message and byte counts accumulated by one rank's [`crate::comm::Comm`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (including collective rounds).
    pub messages_sent: u64,
    /// Approximate payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Collective operations completed.
    pub collectives: u64,
}

impl CommStats {
    /// Element-wise sum, for aggregating a whole world's traffic.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_received: self.messages_received + other.messages_received,
            collectives: self.collectives + other.collectives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = CommStats {
            messages_sent: 1,
            bytes_sent: 10,
            messages_received: 2,
            collectives: 3,
        };
        let b = CommStats {
            messages_sent: 4,
            bytes_sent: 40,
            messages_received: 5,
            collectives: 6,
        };
        let c = a.merge(&b);
        assert_eq!(c.messages_sent, 5);
        assert_eq!(c.bytes_sent, 50);
        assert_eq!(c.messages_received, 7);
        assert_eq!(c.collectives, 9);
    }
}
