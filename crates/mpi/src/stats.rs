//! Per-rank traffic counters, consumed by the virtual-time cost models.

/// Number of per-kind send counter slots in [`CommStats::sent_by_kind`].
///
/// Message types report a slot via [`crate::comm::CollCarrier::kind_index`];
/// the last slot (`KIND_SLOTS - 1`) is the default catch-all for types that
/// don't classify their variants.
pub const KIND_SLOTS: usize = 16;

/// Message and byte counts accumulated by one rank's [`crate::comm::Comm`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (including collective rounds).
    pub messages_sent: u64,
    /// Approximate payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Collective operations completed.
    pub collectives: u64,
    /// Messages sent, bucketed by [`crate::comm::CollCarrier::kind_index`].
    pub sent_by_kind: [u64; KIND_SLOTS],
}

impl CommStats {
    /// Element-wise sum, for aggregating a whole world's traffic.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        let mut sent_by_kind = self.sent_by_kind;
        for (slot, v) in sent_by_kind.iter_mut().zip(other.sent_by_kind.iter()) {
            *slot += v;
        }
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_received: self.messages_received + other.messages_received,
            collectives: self.collectives + other.collectives,
            sent_by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut ka = [0u64; KIND_SLOTS];
        ka[0] = 7;
        let mut kb = [0u64; KIND_SLOTS];
        kb[0] = 2;
        kb[3] = 1;
        let a = CommStats {
            messages_sent: 1,
            bytes_sent: 10,
            messages_received: 2,
            collectives: 3,
            sent_by_kind: ka,
        };
        let b = CommStats {
            messages_sent: 4,
            bytes_sent: 40,
            messages_received: 5,
            collectives: 6,
            sent_by_kind: kb,
        };
        let c = a.merge(&b);
        assert_eq!(c.messages_sent, 5);
        assert_eq!(c.bytes_sent, 50);
        assert_eq!(c.messages_received, 7);
        assert_eq!(c.collectives, 9);
        assert_eq!(c.sent_by_kind[0], 9);
        assert_eq!(c.sent_by_kind[3], 1);
        assert_eq!(c.sent_by_kind[1], 0);
    }
}
