//! # mpilite
//!
//! A small thread-backed distributed-memory message-passing runtime: the
//! substrate standing in for MPI in this reproduction. Each *rank* is an
//! OS thread with a private mailbox; ranks exchange tagged messages and
//! participate in collectives, exactly mirroring the communication
//! pattern of the paper's MPI implementation (DESIGN.md §2 explains the
//! substitution).
//!
//! ```
//! use mpilite::{run_world_default, CollPayload};
//!
//! let sums = run_world_default::<CollPayload, u64, _>(4, |comm| {
//!     comm.allreduce_sum_u64(comm.rank() as u64 + 1)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod packet;
pub mod runtime;
pub mod stats;

#[cfg(test)]
mod collective_tests2;
#[cfg(test)]
mod tag_tests;

pub use comm::{CollCarrier, Comm, DEFAULT_SPIN_RELAX, DEFAULT_SPIN_TOTAL};
pub use packet::{CollPayload, Packet, COLLECTIVE_TAG_BASE};
pub use runtime::{run_world, run_world_default, WorldConfig};
pub use stats::{CommStats, KIND_SLOTS};

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn barrier_completes_for_various_p() {
        for p in [1, 2, 3, 4, 7, 8, 13] {
            run_world_default::<CollPayload, (), _>(p, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn allgather_collects_rank_values() {
        let out = run_world_default::<CollPayload, Vec<u64>, _>(6, |comm| {
            comm.allgather_u64(comm.rank() as u64 * 10)
        });
        for row in out {
            assert_eq!(row, vec![0, 10, 20, 30, 40, 50]);
        }
    }

    #[test]
    fn allgather_vec_collects_rows() {
        let out = run_world_default::<CollPayload, Vec<Vec<u64>>, _>(3, |comm| {
            let r = comm.rank() as u64;
            comm.allgather_vec_u64(vec![r; comm.rank() + 1])
        });
        for rows in out {
            assert_eq!(rows, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        // rank i sends row[j] = i*10 + j to rank j; rank j should end up
        // with out[i] = i*10 + j.
        let out = run_world_default::<CollPayload, Vec<u64>, _>(4, |comm| {
            let i = comm.rank() as u64;
            let row: Vec<u64> = (0..4).map(|j| i * 10 + j).collect();
            comm.alltoall_u64(&row)
        });
        for (j, got) in out.into_iter().enumerate() {
            let expect: Vec<u64> = (0..4).map(|i| i * 10 + j as u64).collect();
            assert_eq!(got, expect, "rank {j}");
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = run_world_default::<CollPayload, (u64, u64), _>(5, |comm| {
            let r = comm.rank() as u64;
            (comm.allreduce_sum_u64(r), comm.allreduce_max_u64(r * r))
        });
        for (sum, max) in out {
            assert_eq!(sum, 1 + 2 + 3 + 4);
            assert_eq!(max, 16);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = run_world_default::<CollPayload, Vec<f64>, _>(4, |comm| {
            let data = if comm.rank() == 2 {
                Some(vec![0.25, 0.75])
            } else {
                None
            };
            comm.broadcast_vec_f64(2, data)
        });
        for row in out {
            assert_eq!(row, vec![0.25, 0.75]);
        }
    }

    #[test]
    fn collectives_ignore_in_flight_user_messages() {
        // A user message sent before a barrier must survive it.
        let out = run_world_default::<CollPayload, u64, _>(3, |comm| {
            let next = (comm.rank() + 1) % 3;
            comm.send(next, 1, CollPayload::U64(comm.rank() as u64));
            comm.barrier();
            let v = comm.allgather_u64(7);
            assert_eq!(v, vec![7, 7, 7]);
            let prev = (comm.rank() + 2) % 3;
            match comm.recv_match(prev, 1).payload {
                CollPayload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![2, 0, 1]);
    }

    #[test]
    fn stats_count_traffic() {
        let stats = run_world_default::<CollPayload, CommStats, _>(2, |comm| {
            comm.send(1 - comm.rank(), 5, CollPayload::U64(1));
            let _ = comm.recv_match(1 - comm.rank(), 5);
            comm.barrier();
            comm.stats()
        });
        for s in stats {
            assert!(s.packets_sent >= 2, "p2p + barrier rounds: {s:?}");
            assert!(s.packets_received >= 2);
            assert_eq!(s.collectives, 1);
            assert!(s.bytes_sent >= 8);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        let out = run_world_default::<CollPayload, (Vec<u64>, Vec<u64>), _>(4, |comm| {
            let a = comm.allgather_u64(comm.rank() as u64);
            let b = comm.allgather_u64(100 + comm.rank() as u64);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![0, 1, 2, 3]);
            assert_eq!(b, vec![100, 101, 102, 103]);
        }
    }
}
