//! # edgeswitch-core
//!
//! Sequential and distributed-memory parallel edge-switching algorithms:
//! the primary contribution of Bhuiyan et al., *"Fast Parallel Algorithms
//! for Edge-Switching to Achieve a Target Visit Rate in Heterogeneous
//! Graphs"* (ICPP 2014; extended JPDC version).
//!
//! - [`switch`]: straight/cross recombination and legality,
//! - [`sequential`]: Algorithm 1,
//! - [`parallel`]: the distributed protocol (Sections 4–5) with threaded
//!   and deterministic drivers,
//! - [`visit`]: visit-rate tracking (Section 3.1),
//! - [`error_rate`]: the sequential-vs-parallel similarity metric
//!   (Section 4.6),
//! - [`config`]: run configuration (scheme, step size, seed).
//!
//! ```
//! use edgeswitch_core::{sequential::sequential_edge_switch, config::*};
//! use edgeswitch_graph::generators::erdos_renyi_gnm;
//! use edgeswitch_dist::root_rng;
//!
//! let mut rng = root_rng(1);
//! let mut g = erdos_renyi_gnm(100, 400, &mut rng);
//! let before = g.degree_sequence();
//! let out = sequential_edge_switch(&mut g, 500, &mut rng);
//! assert_eq!(out.performed, 500);
//! assert_eq!(g.degree_sequence(), before); // switches preserve degrees
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod error_rate;
pub mod obs;
pub mod parallel;
pub mod run;
pub mod sequential;
pub mod switch;
pub mod trade;
pub mod variants;
pub mod visit;

pub use config::{Backend, ParallelConfig, ProcOpts, Randomizer, StepSize};
pub use error_rate::{error_rate, BlockMatrix};
pub use obs::{Obs, ObsSpec, Probe, RunReport};
pub use parallel::{
    child_entry_from_env, parallel_curveball, parallel_edge_switch, simulate_curveball,
    simulate_parallel, MsgCounts, ParallelOutcome, StepTelemetry,
};
pub use run::{Run, RunOutcome, SequentialRun};
pub use sequential::{
    sequential_edge_switch, sequential_edge_switch_observed, sequential_for_visit_rate,
    SequentialOutcome,
};
pub use switch::{RejectReason, SwitchKind};
pub use trade::{
    sequential_curveball, sequential_curveball_observed, CurveballOutcome, TradeBudget,
};
pub use variants::{sequential_edge_switch_connected, sequential_exact_visit, ConstrainedOutcome};
pub use visit::VisitTracker;
