//! # edgeswitch-core
//!
//! Sequential and distributed-memory parallel edge-switching algorithms:
//! the primary contribution of Bhuiyan et al., *"Fast Parallel Algorithms
//! for Edge-Switching to Achieve a Target Visit Rate in Heterogeneous
//! Graphs"* (ICPP 2014; extended JPDC version).
//!
//! - [`switch`]: straight/cross recombination and legality,
//! - [`sequential`]: Algorithm 1,
//! - [`parallel`]: the distributed protocol (Sections 4–5) with threaded
//!   and deterministic drivers,
//! - [`visit`]: visit-rate tracking (Section 3.1),
//! - [`error_rate`]: the sequential-vs-parallel similarity metric
//!   (Section 4.6),
//! - [`config`]: run configuration (scheme, step size, seed).
//!
//! The front door is the [`Run`] builder; the per-driver free functions
//! it superseded remain as `#[doc(hidden)]` shims for old call sites:
//!
//! ```
//! use edgeswitch_core::Run;
//! use edgeswitch_dist::root_rng;
//! use edgeswitch_graph::generators::erdos_renyi_gnm;
//!
//! let g = erdos_renyi_gnm(100, 400, &mut root_rng(1));
//! let out = Run::sequential().switches(500).seed(1).execute(&g);
//! assert_eq!(out.performed(), 500);
//! // Switches preserve degrees.
//! assert_eq!(out.graph().degree_sequence(), g.degree_sequence());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod error_rate;
pub mod obs;
pub mod parallel;
pub mod run;
pub mod sequential;
pub mod switch;
pub mod trade;
pub mod variants;
pub mod visit;

pub use config::{Backend, ParallelConfig, ProcOpts, Randomizer, StepSize};
pub use error_rate::{error_rate, BlockMatrix};
pub use obs::{Obs, ObsSpec, Probe, RunReport};
pub use parallel::{child_entry_from_env, MsgCounts, ParallelOutcome, StepTelemetry};
pub use run::{Run, RunError, RunOutcome, SequentialRun};
pub use sequential::{SeqCheckpoint, SequentialOutcome, SequentialResumable};
pub use switch::{RejectReason, SwitchKind};
pub use trade::{CurveballOutcome, TradeBudget};

// Legacy per-driver entry points, superseded by [`Run`]. Kept callable so
// old call sites keep compiling, but dropped from the documented facade.
#[doc(hidden)]
pub use parallel::{
    parallel_curveball, parallel_edge_switch, simulate_curveball, simulate_parallel,
};
#[doc(hidden)]
pub use sequential::{
    sequential_edge_switch, sequential_edge_switch_observed, sequential_for_visit_rate,
};
#[doc(hidden)]
pub use trade::{sequential_curveball, sequential_curveball_observed};
pub use variants::{sequential_edge_switch_connected, sequential_exact_visit, ConstrainedOutcome};
pub use visit::VisitTracker;
