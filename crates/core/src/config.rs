//! Configuration of a parallel edge-switch run.

use crate::obs::ObsSpec;
use edgeswitch_dist::Rng64;
use edgeswitch_graph::SchemeKind;
use serde::{Deserialize, Serialize};

/// Salt decorrelating the driver-level root stream (partitioning,
/// world-building) from the per-rank protocol streams derived from the
/// same master seed.
const ROOT_STREAM_SALT: u64 = 0x9a17;

/// Default bound on concurrently in-flight own conversations per rank
/// (the pipelining window). 16 keeps several message round trips
/// overlapped without flooding partner ranks with proposals.
pub const DEFAULT_WINDOW: usize = 16;

fn default_window() -> usize {
    DEFAULT_WINDOW
}

fn default_local_fastpath() -> bool {
    true
}

fn default_spec_batch() -> usize {
    1
}

/// Default busy-spin iterations with CPU relax hints before a blocked
/// receive starts yielding the scheduler slice.
pub const DEFAULT_SPIN_RELAX: u32 = 64;

/// Default total spin iterations (relax + yield) before a blocked receive
/// parks on its transport's wakeup primitive.
pub const DEFAULT_SPIN_TOTAL: u32 = 256;

fn default_spin_relax() -> u32 {
    DEFAULT_SPIN_RELAX
}

fn default_spin_total() -> u32 {
    DEFAULT_SPIN_TOTAL
}

/// Which substrate the parallel driver runs its ranks on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Ranks are scoped threads in this process exchanging `Msg` values
    /// through in-memory channels (`mpilite`). Deterministic-friendly and
    /// portable, but on one machine all ranks timeshare the parent's
    /// scheduler context.
    #[default]
    Threaded,
    /// Ranks are child processes of the current binary exchanging encoded
    /// frames through shared-memory rings (`edgeswitch-shm`), so `p` ranks
    /// genuinely occupy `p` cores. Requires Linux; the launching binary
    /// must route rank children into
    /// [`crate::parallel::child_entry_from_env`].
    Process,
}

/// Tuning for the process backend that only makes sense per-invocation
/// (never serialized with the rest of the configuration).
#[derive(Clone, Debug, PartialEq)]
pub struct ProcOpts {
    /// Extra argv passed to re-spawned rank children. The default routes
    /// libtest binaries into an `#[ignore]`d `shm_child_entry` hook test;
    /// binaries that call [`crate::parallel::child_entry_from_env`] at the
    /// top of `main` ignore their argv entirely.
    pub child_args: Vec<String>,
    /// Print one `shm-child-pid: <pid>` line per spawned rank child
    /// (consumed by orphan-reaping tests).
    pub announce_children: bool,
    /// Per-pair ring data capacity in bytes (rounded up to a power of two,
    /// min 4 KiB).
    pub ring_capacity: usize,
    /// Binary to respawn as rank children instead of `current_exe()`.
    /// `None` (the default) respawns the current binary; tests point this
    /// at a nonexistent path to exercise the spawn-failure path of
    /// [`crate::run::RunError::SpawnFailed`].
    pub exe_override: Option<std::path::PathBuf>,
}

impl Default for ProcOpts {
    fn default() -> Self {
        ProcOpts {
            child_args: vec![
                "shm_child_entry".into(),
                "--include-ignored".into(),
                "--nocapture".into(),
            ],
            announce_children: false,
            ring_capacity: 1 << 18,
            exe_override: None,
        }
    }
}

/// Which randomization engine a [`crate::Run`] drives.
///
/// Both engines preserve the degree sequence exactly and report
/// progress through the same [`crate::VisitTracker`] semantics; they
/// differ in how much graph they re-randomize per unit of work (see
/// DESIGN.md §4h).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Randomizer {
    /// Single edge switches (the paper's protocol): each operation
    /// removes two sampled edges and inserts the crossed pair.
    #[default]
    Switch,
    /// Global Curveball trades (Carstens/Hamann/Meyer, arXiv
    /// 1804.08487): each pass pairs all vertices in a random perfect
    /// matching and every pair re-deals the disjoint part of its two
    /// neighborhoods in one Fisher–Yates shuffle.
    Curveball,
}

/// How the step size `s` is chosen (Section 4.5: the probability vector
/// `q` is refreshed every `s` operations).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StepSize {
    /// A fixed number of operations per step.
    Ops(u64),
    /// `s = max(1, t / divisor)` — the paper's `t/100` and `t/1000`
    /// presets.
    FractionOfT(u64),
    /// All `t` operations in one step (the paper runs HP schemes this
    /// way; Table 3).
    SingleStep,
}

impl StepSize {
    /// Resolve to a concrete `s` for a run of `t` operations.
    pub fn resolve(&self, t: u64) -> u64 {
        match self {
            StepSize::Ops(s) => (*s).max(1),
            StepSize::FractionOfT(div) => (t / (*div).max(1)).max(1),
            StepSize::SingleStep => t.max(1),
        }
    }
}

/// How per-step operation quotas (and partner choices) are weighted.
///
/// The paper weights both by the live edge counts `q_i = |E_i|/|E|`
/// (Algorithm 2); the uniform policy exists as an ablation showing why
/// that choice matters for similarity to the sequential process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaPolicy {
    /// `q_i = |E_i| / |E|` — the paper's design.
    EdgeProportional,
    /// `q_i = 1/p` — ablation: ignores partition loads.
    Uniform,
}

/// Full configuration of a parallel run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Number of processors (partitions) `p`.
    pub processors: usize,
    /// Partitioning scheme.
    pub scheme: SchemeKind,
    /// Step size policy.
    pub step_size: StepSize,
    /// Quota/partner weighting (see [`QuotaPolicy`]).
    pub quota_policy: QuotaPolicy,
    /// Master seed; all rank streams derive from it.
    pub seed: u64,
    /// Bound on concurrently in-flight own conversations per rank
    /// (clamped to ≥ 1). `1` reproduces the original stop-and-wait
    /// protocol exactly; larger values pipeline message round trips.
    #[serde(default = "default_window")]
    pub window: usize,
    /// Observability attached to the run (off by default; recording
    /// never perturbs results — see [`crate::obs`]).
    #[serde(default)]
    pub obs: ObsSpec,
    /// Commit rank-local switches inline, without allocating a
    /// conversation or routing self-addressed protocol messages (§4's
    /// local/global distinction made structural). On by default; the
    /// `false` setting is a conformance-testing escape hatch — the
    /// fast path is draw-order- and apply-order-preserving, so outcomes
    /// are bit-identical either way (enforced by
    /// `tests/driver_conformance.rs`).
    #[serde(default = "default_local_fastpath")]
    pub local_fastpath: bool,
    /// Speculative batch size: how many switches a rank optimistically
    /// samples and applies per scheduling round before validating all
    /// reservations touching a given partner rank in one coalesced
    /// `BatchPropose`/`BatchVerdict` pair (losers roll back in reverse
    /// apply order and retry through the per-switch path). `1` disables
    /// speculation and reproduces the per-switch schedule bit-identically
    /// (enforced by `tests/driver_conformance.rs`).
    #[serde(default = "default_spec_batch")]
    pub spec_batch: usize,
    /// Rank substrate: in-process threads (default) or OS processes over
    /// shared-memory rings. Identical logical protocol either way; at
    /// `p = 1` both are bit-identical to the simulators (enforced by
    /// `tests/driver_conformance.rs`).
    #[serde(default)]
    pub backend: Backend,
    /// Busy-spin iterations with CPU relax hints before a blocked receive
    /// starts yielding (both backends honor this).
    #[serde(default = "default_spin_relax")]
    pub spin_relax: u32,
    /// Total spin iterations (relax + yield) before a blocked receive
    /// parks (threaded: channel timeout-park; process: futex doorbell).
    #[serde(default = "default_spin_total")]
    pub spin_total: u32,
    /// Per-invocation process-backend knobs (child argv, pid announcing,
    /// ring sizing). Skipped by serde: a deserialized config gets the
    /// defaults.
    #[serde(skip)]
    pub proc_opts: ProcOpts,
    /// Randomization engine: single edge switches (default) or global
    /// Curveball trades. The Curveball engine runs on the sequential,
    /// threaded, FIFO, and DES drivers; the process backend currently
    /// supports switches only.
    #[serde(default)]
    pub randomizer: Randomizer,
}

impl ParallelConfig {
    /// The paper's default setup for strong-scaling runs: CP scheme with
    /// `s = t/100`.
    pub fn new(processors: usize) -> Self {
        ParallelConfig {
            processors,
            scheme: SchemeKind::Consecutive,
            step_size: StepSize::FractionOfT(100),
            quota_policy: QuotaPolicy::EdgeProportional,
            seed: 0,
            window: default_window(),
            obs: ObsSpec::default(),
            local_fastpath: default_local_fastpath(),
            spec_batch: default_spec_batch(),
            backend: Backend::default(),
            spin_relax: default_spin_relax(),
            spin_total: default_spin_total(),
            proc_opts: ProcOpts::default(),
            randomizer: Randomizer::default(),
        }
    }

    /// Builder-style scheme override.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builder-style step-size override.
    pub fn with_step_size(mut self, step_size: StepSize) -> Self {
        self.step_size = step_size;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style pipelining-window override (`1` = stop-and-wait).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Builder-style quota-policy override (ablation only).
    pub fn with_quota_policy(mut self, quota_policy: QuotaPolicy) -> Self {
        self.quota_policy = quota_policy;
        self
    }

    /// Builder-style observability override.
    pub fn with_obs(mut self, obs: ObsSpec) -> Self {
        self.obs = obs;
        self
    }

    /// Builder-style local fast-path override (`false` forces every
    /// switch through the conversation protocol; conformance tests
    /// only).
    pub fn with_local_fastpath(mut self, local_fastpath: bool) -> Self {
        self.local_fastpath = local_fastpath;
        self
    }

    /// Builder-style speculative batch size override (`1` = per-switch
    /// conversations only, clamped to ≥ 1).
    pub fn with_spec_batch(mut self, spec_batch: usize) -> Self {
        self.spec_batch = spec_batch.max(1);
        self
    }

    /// Builder-style backend override.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style spin tuning: `relax` iterations of CPU relax hints,
    /// then yields up to `total` iterations, before a blocked receive
    /// parks. `total` is clamped to ≥ `relax`.
    pub fn with_spin(mut self, relax: u32, total: u32) -> Self {
        self.spin_relax = relax;
        self.spin_total = total.max(relax);
        self
    }

    /// Builder-style process-backend options override.
    pub fn with_proc_opts(mut self, proc_opts: ProcOpts) -> Self {
        self.proc_opts = proc_opts;
        self
    }

    /// Builder-style randomizer override (switches vs Curveball trades).
    pub fn with_randomizer(mut self, randomizer: Randomizer) -> Self {
        self.randomizer = randomizer;
        self
    }

    /// The driver-level root stream for this configuration: seeds
    /// partition construction and any other pre-protocol randomness.
    /// Every driver (threaded, FIFO, DES, predictor) derives it the same
    /// way so a given `(graph, config)` pair partitions identically.
    pub fn root_rng(&self) -> Rng64 {
        edgeswitch_dist::root_rng(self.seed ^ ROOT_STREAM_SALT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_step_sizes() {
        assert_eq!(StepSize::Ops(500).resolve(10_000), 500);
        assert_eq!(StepSize::FractionOfT(100).resolve(10_000), 100);
        assert_eq!(StepSize::SingleStep.resolve(10_000), 10_000);
        // Degenerate inputs stay positive.
        assert_eq!(StepSize::Ops(0).resolve(10), 1);
        assert_eq!(StepSize::FractionOfT(100).resolve(5), 1);
        assert_eq!(StepSize::SingleStep.resolve(0), 1);
    }

    #[test]
    fn root_rng_depends_on_seed_only() {
        use rand::Rng;
        let a: u64 = ParallelConfig::new(4).with_seed(9).root_rng().gen();
        let b: u64 = ParallelConfig::new(8).with_seed(9).root_rng().gen();
        let c: u64 = ParallelConfig::new(4).with_seed(10).root_rng().gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn builder_chains() {
        let cfg = ParallelConfig::new(8)
            .with_scheme(SchemeKind::HashUniversal)
            .with_step_size(StepSize::SingleStep)
            .with_seed(42)
            .with_window(4)
            .with_obs(ObsSpec::Spans);
        assert_eq!(cfg.processors, 8);
        assert_eq!(cfg.scheme, SchemeKind::HashUniversal);
        assert_eq!(cfg.step_size, StepSize::SingleStep);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.window, 4);
        assert_eq!(cfg.obs, ObsSpec::Spans);
        // The window is clamped to at least one conversation.
        assert_eq!(ParallelConfig::new(2).with_window(0).window, 1);
        assert_eq!(ParallelConfig::new(2).window, DEFAULT_WINDOW);
        assert_eq!(ParallelConfig::new(2).obs, ObsSpec::Off);
        // The local fast path is on unless a test forces it off.
        assert!(ParallelConfig::new(2).local_fastpath);
        assert!(
            !ParallelConfig::new(2)
                .with_local_fastpath(false)
                .local_fastpath
        );
        // Speculative batching is off (batch = 1) unless requested, and
        // the batch size is clamped to at least one switch per round.
        assert_eq!(ParallelConfig::new(2).spec_batch, 1);
        assert_eq!(ParallelConfig::new(2).with_spec_batch(16).spec_batch, 16);
        assert_eq!(ParallelConfig::new(2).with_spec_batch(0).spec_batch, 1);
        // The switch protocol is the default engine.
        assert_eq!(ParallelConfig::new(2).randomizer, Randomizer::Switch);
        assert_eq!(
            ParallelConfig::new(2)
                .with_randomizer(Randomizer::Curveball)
                .randomizer,
            Randomizer::Curveball
        );
        // Backend defaults to threads; spins default to the tuned consts.
        assert_eq!(ParallelConfig::new(2).backend, Backend::Threaded);
        assert_eq!(ParallelConfig::new(2).spin_relax, DEFAULT_SPIN_RELAX);
        assert_eq!(ParallelConfig::new(2).spin_total, DEFAULT_SPIN_TOTAL);
        let cfg = ParallelConfig::new(2)
            .with_backend(Backend::Process)
            .with_spin(8, 4);
        assert_eq!(cfg.backend, Backend::Process);
        assert_eq!(
            (cfg.spin_relax, cfg.spin_total),
            (8, 8),
            "total clamps to relax"
        );
    }

    #[test]
    fn proc_opts_default_routes_libtest_children() {
        // The default child argv must select the `#[ignore]`d
        // `shm_child_entry` hook by substring (libtest's default filter
        // mode), so it matches at any module depth; `--nocapture` keeps
        // `shm-child-pid` announcements visible to orphan tests.
        let opts = ProcOpts::default();
        assert_eq!(opts.child_args[0], "shm_child_entry");
        assert!(opts.child_args.iter().any(|a| a == "--include-ignored"));
        assert!(opts.child_args.iter().any(|a| a == "--nocapture"));
        assert!(!opts.announce_children);
        assert!(opts.ring_capacity.is_power_of_two());
    }
}
