//! Constrained switching variants discussed by the paper.
//!
//! - [`sequential_edge_switch_connected`]: keeps the graph *connected*
//!   across switches — the constraint NetworkX's `connected_double_edge_swap`
//!   imposes (Section 1 discusses this pairing of edge switching with a
//!   connectivity requirement).
//! - [`sequential_exact_visit`]: the Section 3.1 variant that marks
//!   modified edges and only ever switches *original* edges, so exactly
//!   `⌈mx⌉` edges are visited in exactly `⌈mx/2⌉` operations (at the cost
//!   of sampling a less uniform region of the degree-class graph space).

use crate::switch::{flip_kind, recombine, Recombination};
use crate::visit::VisitTracker;
use edgeswitch_graph::sampling::EdgePool;
use edgeswitch_graph::{Graph, OrientedEdge, VertexId};
use rand::Rng;
use std::collections::VecDeque;

/// Retry budget per operation, matching the unconstrained algorithm.
const MAX_RETRIES_PER_OP: u64 = 100_000;

/// Outcome of a constrained sequential run.
#[derive(Clone, Debug)]
pub struct ConstrainedOutcome {
    /// Operations performed.
    pub performed: u64,
    /// Operations abandoned after exhausting retries.
    pub abandoned: u64,
    /// Rejections that restarted an operation (all reasons, including
    /// connectivity violations).
    pub restarts: u64,
    /// Rejections specifically for breaking connectivity.
    pub connectivity_rejects: u64,
    /// Visit tracking.
    pub tracker: VisitTracker,
}

impl ConstrainedOutcome {
    /// Observed visit rate.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }
}

/// Would the graph remain connected after this switch?
///
/// Removing `(u1,v1)` and `(u2,v2)` can only separate a component that
/// contains one of the four endpoints, so it suffices to check that all
/// four endpoints remain mutually reachable in the *switched* graph. The
/// switch is applied tentatively by the caller before this check.
fn endpoints_connected(graph: &Graph, endpoints: [VertexId; 4]) -> bool {
    let mut targets: Vec<VertexId> = endpoints.to_vec();
    targets.sort_unstable();
    targets.dedup();
    let start = targets[0];
    let mut remaining: usize = targets.len() - 1;
    if remaining == 0 {
        return true;
    }
    // BFS from one endpoint until the others are found (early exit).
    let mut seen = std::collections::HashSet::new();
    seen.insert(start);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for w in graph.neighbors(v).iter() {
            if seen.insert(w) {
                if targets.binary_search(&w).is_ok() {
                    remaining -= 1;
                    if remaining == 0 {
                        return true;
                    }
                }
                queue.push_back(w);
            }
        }
    }
    false
}

/// Sequential edge switching under a connectivity constraint: a switch
/// that would disconnect the graph is rejected and restarted.
///
/// # Panics
/// Panics if the input graph is not connected (the constraint would be
/// meaningless).
pub fn sequential_edge_switch_connected<R: Rng + ?Sized>(
    graph: &mut Graph,
    t: u64,
    rng: &mut R,
) -> ConstrainedOutcome {
    assert!(
        edgeswitch_graph::metrics::is_connected(graph),
        "connectivity-constrained switching needs a connected input"
    );
    let mut out = ConstrainedOutcome {
        performed: 0,
        abandoned: 0,
        restarts: 0,
        connectivity_rejects: 0,
        tracker: VisitTracker::new(graph.edges()),
    };
    if graph.num_edges() < 2 {
        out.abandoned = t;
        return out;
    }
    'ops: for _ in 0..t {
        let mut retries = 0u64;
        loop {
            let e1 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let e2 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let kind = flip_kind(rng);
            match recombine(e1, e2, kind) {
                Recombination::Candidate { f1, f2 }
                    if !graph.has_edge(f1) && !graph.has_edge(f2) =>
                {
                    let (o1, o2) = (e1.edge(), e2.edge());
                    // Apply tentatively, then verify connectivity.
                    graph.remove_edge(o1).unwrap();
                    graph.remove_edge(o2).unwrap();
                    graph.add_edge(f1).unwrap();
                    graph.add_edge(f2).unwrap();
                    let endpoints = [e1.tail, e1.head, e2.tail, e2.head];
                    if endpoints_connected(graph, endpoints) {
                        out.tracker.record_removal(o1);
                        out.tracker.record_removal(o2);
                        out.performed += 1;
                        continue 'ops;
                    }
                    // Roll back.
                    graph.remove_edge(f1).unwrap();
                    graph.remove_edge(f2).unwrap();
                    graph.add_edge(o1).unwrap();
                    graph.add_edge(o2).unwrap();
                    out.connectivity_rejects += 1;
                }
                _ => {}
            }
            out.restarts += 1;
            retries += 1;
            if retries >= MAX_RETRIES_PER_OP {
                out.abandoned = t - out.performed;
                return out;
            }
        }
    }
    out
}

/// The exact-visit variant (Section 3.1): only *original* (unvisited)
/// edges are eligible, so `⌈mx/2⌉` operations visit exactly `2⌈mx/2⌉`
/// edges — no coupon-collector inflation. Returns the outcome; the
/// observed visit rate equals the target up to rounding whenever enough
/// legal switches exist.
pub fn sequential_exact_visit<R: Rng + ?Sized>(
    graph: &mut Graph,
    x: f64,
    rng: &mut R,
) -> ConstrainedOutcome {
    assert!((0.0..=1.0).contains(&x), "visit rate {x} out of range");
    let m = graph.num_edges();
    let mut originals: EdgePool = graph.edges().collect();
    let mut out = ConstrainedOutcome {
        performed: 0,
        abandoned: 0,
        restarts: 0,
        connectivity_rejects: 0,
        tracker: VisitTracker::new(graph.edges()),
    };
    let target_ops = ((m as f64 * x) / 2.0).ceil() as u64;
    'ops: for _ in 0..target_ops {
        if originals.len() < 2 {
            out.abandoned = target_ops - out.performed;
            break;
        }
        let mut retries = 0u64;
        loop {
            let e1 = OrientedEdge::from_edge(originals.sample(rng).expect("checked len"));
            let e2 = OrientedEdge::from_edge(originals.sample(rng).expect("checked len"));
            let kind = flip_kind(rng);
            if let Recombination::Candidate { f1, f2 } = recombine(e1, e2, kind) {
                if !graph.has_edge(f1) && !graph.has_edge(f2) {
                    let (o1, o2) = (e1.edge(), e2.edge());
                    graph.remove_edge(o1).unwrap();
                    graph.remove_edge(o2).unwrap();
                    graph.add_edge(f1).unwrap();
                    graph.add_edge(f2).unwrap();
                    originals.remove(o1);
                    originals.remove(o2);
                    out.tracker.record_removal(o1);
                    out.tracker.record_removal(o2);
                    out.performed += 1;
                    continue 'ops;
                }
            }
            out.restarts += 1;
            retries += 1;
            if retries >= MAX_RETRIES_PER_OP {
                out.abandoned = target_ops - out.performed;
                return out;
            }
        }
    }
    out
}

/// Helper: find an edge whose removal disconnects nothing we care about
/// — exposed for tests of the connectivity predicate.
#[doc(hidden)]
pub fn __endpoints_connected_for_tests(graph: &Graph, endpoints: [VertexId; 4]) -> bool {
    endpoints_connected(graph, endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::{erdos_renyi_gnm, small_world};
    use edgeswitch_graph::metrics::is_connected;
    use edgeswitch_graph::Edge;

    #[test]
    fn connected_variant_preserves_connectivity() {
        let mut rng = root_rng(1);
        // Small-world graphs are connected by construction (ring core).
        let mut g = small_world(300, 6, 0.05, &mut rng);
        assert!(is_connected(&g));
        let before = g.degree_sequence();
        let out = sequential_edge_switch_connected(&mut g, 2000, &mut rng);
        assert_eq!(out.performed, 2000);
        assert!(is_connected(&g), "connectivity constraint violated");
        assert_eq!(g.degree_sequence(), before);
        g.check_invariants().unwrap();
    }

    #[test]
    fn connected_variant_rejects_bridge_cuts() {
        // Two triangles joined by one bridge: switching must never cut
        // the bridge permanently.
        let mut rng = root_rng(2);
        let edges = [
            (0u64, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3), // bridge
        ];
        let mut g = Graph::from_edges(6, edges.iter().map(|&(a, b)| Edge::new(a, b))).unwrap();
        let out = sequential_edge_switch_connected(&mut g, 50, &mut rng);
        assert!(is_connected(&g));
        // The barbell is tiny, so connectivity rejections should occur.
        assert!(out.performed + out.abandoned == 50);
    }

    #[test]
    #[should_panic(expected = "connected input")]
    fn connected_variant_rejects_disconnected_input() {
        let mut rng = root_rng(3);
        let mut g = Graph::new(4);
        g.add_edge(Edge::new(0, 1)).unwrap();
        g.add_edge(Edge::new(2, 3)).unwrap();
        sequential_edge_switch_connected(&mut g, 1, &mut rng);
    }

    #[test]
    fn exact_visit_hits_target_exactly() {
        let mut rng = root_rng(4);
        let mut g = erdos_renyi_gnm(1000, 5000, &mut rng);
        let out = sequential_exact_visit(&mut g, 0.5, &mut rng);
        assert_eq!(out.abandoned, 0);
        // Exactly 2 * ceil(m x / 2) edges visited.
        let expect = 2 * ((5000.0 * 0.5 / 2.0) as u64).max(1);
        assert_eq!(out.tracker.visited_count() as u64, expect);
        assert!((out.visit_rate() - 0.5).abs() < 1e-3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn exact_visit_uses_half_the_operations() {
        // Section 3.1: exact visiting needs mx/2 operations where the
        // unconstrained process needs E[T]/2 ≈ −m ln(1−x)/2 > mx/2.
        let m = 5000u64;
        let x = 0.8;
        let exact_ops = ((m as f64 * x) / 2.0).ceil() as u64;
        let unconstrained_ops = edgeswitch_dist::switch_ops_for_visit_rate(m, x);
        assert!(unconstrained_ops > exact_ops);
    }

    #[test]
    fn exact_visit_full_rate() {
        let mut rng = root_rng(5);
        let mut g = erdos_renyi_gnm(500, 2500, &mut rng);
        let out = sequential_exact_visit(&mut g, 1.0, &mut rng);
        // Near-complete visiting; the final leftover pair may be
        // unswappable, so allow a tiny shortfall.
        assert!(out.visit_rate() > 0.99, "visit rate {}", out.visit_rate());
    }

    #[test]
    fn endpoints_connected_detects_separation() {
        // Path 0-1-2: removing nothing, endpoints 0 and 2 connected.
        let g = Graph::from_edges(4, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        assert!(__endpoints_connected_for_tests(&g, [0, 1, 2, 1]));
        // Vertex 3 is isolated.
        assert!(!__endpoints_connected_for_tests(&g, [0, 1, 3, 1]));
    }
}
