//! The [`Run`] builder: one front door to the switching algorithms.
//!
//! Callers previously picked a free function per driver
//! (`sequential_edge_switch`, `parallel_edge_switch`,
//! `simulate_parallel`) and threaded an operation count, an RNG and a
//! [`ParallelConfig`] by hand. `Run` folds those choices into a single
//! builder: pick a driver, state the budget as either an operation count
//! or a target visit rate (Section 3.1: `t = E[T]/2`), tune the knobs,
//! and `execute`:
//!
//! ```
//! use edgeswitch_core::Run;
//! use edgeswitch_dist::root_rng;
//! use edgeswitch_graph::generators::erdos_renyi_gnm;
//!
//! let g = erdos_renyi_gnm(200, 800, &mut root_rng(1));
//! let out = Run::sequential().switches(500).seed(9).execute(&g);
//! assert_eq!(out.performed(), 500);
//! assert_eq!(out.graph().degree_sequence(), g.degree_sequence());
//!
//! let out = Run::parallel(4).visit_rate(0.5).seed(9).execute(&g);
//! assert!((out.visit_rate() - 0.5).abs() < 0.1);
//! ```
//!
//! The original free functions remain as thin layers over the same
//! engines; `Run` is the recommended entry point.

use crate::config::{Backend, ParallelConfig, QuotaPolicy, Randomizer, StepSize};
use crate::obs::{ObsSpec, RunReport};
use crate::parallel::proc::{process_backend_supported, try_parallel_edge_switch_proc, ProcError};
use crate::parallel::{
    parallel_curveball, parallel_edge_switch, simulate_curveball, simulate_parallel,
    ParallelOutcome,
};
use crate::sequential::{sequential_edge_switch_observed, SequentialOutcome};
use crate::trade::{sequential_curveball_observed, TradeBudget};
use edgeswitch_graph::{Graph, Partitioner, SchemeKind};

/// Why a [`Run`] could not execute. Produced by [`Run::try_execute`];
/// [`Run::execute`] panics with the same message.
///
/// Validation errors ([`RunError::InvalidBudget`],
/// [`RunError::InvalidConfig`]) are recorded at the builder call that
/// supplied the bad value — the first offending call wins — and surface
/// at execute time, so a server can reject a bad job submission without
/// running anything. Launch errors ([`RunError::BackendUnsupported`],
/// [`RunError::SpawnFailed`], [`RunError::RankDied`]) come from the
/// process backend's fallible launcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The budget is unusable: a visit-rate target outside `(0, 1]` or
    /// not a number.
    InvalidBudget(String),
    /// A configuration knob is out of its documented range (`p ≥ 1`,
    /// `window ≥ 1`, `spec_batch ≥ 1`).
    InvalidConfig(String),
    /// The selected backend cannot run this job on this platform or with
    /// this randomizer (the process backend needs Linux and supports
    /// switches only).
    BackendUnsupported(String),
    /// A process-backend rank child could not be spawned.
    SpawnFailed(String),
    /// A process-backend rank child died, exited abnormally, or returned
    /// no result.
    RankDied(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidBudget(detail) => write!(f, "invalid budget: {detail}"),
            RunError::InvalidConfig(detail) => write!(f, "invalid config: {detail}"),
            RunError::BackendUnsupported(detail) => write!(f, "backend unsupported: {detail}"),
            RunError::SpawnFailed(detail) => write!(f, "spawn failed: {detail}"),
            RunError::RankDied(detail) => write!(f, "rank died: {detail}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ProcError> for RunError {
    fn from(err: ProcError) -> Self {
        match err {
            ProcError::Unsupported(_) => RunError::BackendUnsupported(err.to_string()),
            ProcError::Spawn { .. } => RunError::SpawnFailed(err.to_string()),
            ProcError::RankDied { .. } => RunError::RankDied(err.to_string()),
        }
    }
}

/// Which engine executes the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Algorithm 1 on one thread.
    Sequential,
    /// The distributed protocol on `p` real (threaded) ranks.
    Parallel,
    /// The distributed protocol on `p` simulated ranks (deterministic
    /// FIFO world — bit-reproducible at any `p`).
    Simulated,
}

/// How much switching to do.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Budget {
    /// An explicit operation count `t`.
    Switches(u64),
    /// A target expected visit rate `x`; `t` is derived from the graph's
    /// edge count at execute time (Section 3.1).
    VisitRate(f64),
}

/// Builder for one switching run. Start from [`Run::sequential`],
/// [`Run::parallel`] or [`Run::simulated`], chain the knobs, then call
/// [`Run::execute`].
#[derive(Clone, Debug)]
pub struct Run {
    mode: Mode,
    budget: Budget,
    config: ParallelConfig,
    /// First validation error recorded by a builder call, surfaced by
    /// [`Run::try_execute`]. Builders record it *before* the config's
    /// defensive clamps run, so the raw offending value is preserved.
    invalid: Option<RunError>,
}

impl Run {
    fn new(mode: Mode, processors: usize) -> Self {
        let invalid = if processors == 0 {
            Some(RunError::InvalidConfig(
                "processors must be >= 1 (got 0)".to_string(),
            ))
        } else {
            None
        };
        Run {
            mode,
            // The paper's headline experiments run to full visit rate.
            budget: Budget::VisitRate(1.0),
            config: ParallelConfig::new(processors.max(1)),
            invalid,
        }
    }

    /// Record the first validation error; later ones are ignored so the
    /// surfaced message names the builder call that went wrong first.
    fn record_invalid(&mut self, err: RunError) {
        if self.invalid.is_none() {
            self.invalid = Some(err);
        }
    }

    /// A sequential run (Algorithm 1). The parallel-only knobs
    /// ([`Run::scheme`], [`Run::step_size`], [`Run::window`]) are
    /// accepted and ignored.
    pub fn sequential() -> Self {
        Run::new(Mode::Sequential, 1)
    }

    /// A parallel run on `p` threaded ranks (Sections 4–5).
    pub fn parallel(p: usize) -> Self {
        Run::new(Mode::Parallel, p)
    }

    /// A parallel run on `p` rank *processes* over shared-memory rings
    /// (Linux only): the same protocol as [`Run::parallel`], but each
    /// rank owns an OS process — and therefore a core — instead of a
    /// thread. Logically equivalent to [`Run::parallel`] at every `p`,
    /// bit-identical to the simulators at `p = 1`.
    pub fn process(p: usize) -> Self {
        let mut run = Run::new(Mode::Parallel, p);
        run.config = run.config.with_backend(Backend::Process);
        run
    }

    /// A parallel run on `p` deterministically simulated ranks: the same
    /// protocol as [`Run::parallel`], delivered from a global FIFO queue
    /// in one thread — bit-reproducible for a given seed at any `p`.
    pub fn simulated(p: usize) -> Self {
        Run::new(Mode::Simulated, p)
    }

    /// Budget by target expected visit rate `x` (the default, at
    /// `x = 1.0`): `t` is derived from the graph's edge count at
    /// execute time. Accepted range: `x ∈ (0, 1]`; anything else
    /// (including NaN) is [`RunError::InvalidBudget`] at execute time.
    pub fn visit_rate(mut self, x: f64) -> Self {
        if !(x > 0.0 && x <= 1.0) {
            self.record_invalid(RunError::InvalidBudget(format!(
                "visit_rate must lie in (0, 1] (got {x})"
            )));
        }
        self.budget = Budget::VisitRate(x);
        self
    }

    /// Budget by explicit switch-operation count `t`. Under
    /// [`Randomizer::Curveball`] the count budgets whole passes of
    /// trades instead (a pass of an `n`-vertex graph runs `⌊n/2⌋`
    /// trades; the run stops at the first pass boundary at or past `t`).
    pub fn switches(mut self, t: u64) -> Self {
        self.budget = Budget::Switches(t);
        self
    }

    /// Randomization scheme: classic edge [`Randomizer::Switch`]
    /// operations (the default) or global [`Randomizer::Curveball`]
    /// trades, which re-deal whole disjoint neighborhoods per operation
    /// and reach a target visit rate with far fewer operations (see
    /// `crate::trade`). Curveball supports the sequential, threaded and
    /// simulated drivers, but not the process backend.
    pub fn randomizer(mut self, randomizer: Randomizer) -> Self {
        self.config = self.config.with_randomizer(randomizer);
        self
    }

    /// Master seed (drives the sequential RNG or every rank stream).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.with_seed(seed);
        self
    }

    /// Partitioning scheme (parallel/simulated only).
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.config = self.config.with_scheme(scheme);
        self
    }

    /// Step-size policy (parallel/simulated only).
    pub fn step_size(mut self, step_size: StepSize) -> Self {
        self.config = self.config.with_step_size(step_size);
        self
    }

    /// Quota/partner weighting policy (parallel/simulated only):
    /// edge-proportional (the paper's Algorithm 2, the default) or
    /// uniform `1/p` (an ablation that breaks stochastic equivalence).
    pub fn quota_policy(mut self, policy: QuotaPolicy) -> Self {
        self.config = self.config.with_quota_policy(policy);
        self
    }

    /// Pipelining window (parallel/simulated only; `1` = stop-and-wait).
    /// Accepted range: `window ≥ 1`; `0` is [`RunError::InvalidConfig`]
    /// at execute time.
    pub fn window(mut self, window: usize) -> Self {
        if window == 0 {
            self.record_invalid(RunError::InvalidConfig(
                "window must be >= 1 (got 0)".to_string(),
            ));
        }
        self.config = self.config.with_window(window);
        self
    }

    /// Speculative batch size (parallel/simulated only; `1`, the
    /// default, keeps every switch on the per-switch conversation path —
    /// see [`ParallelConfig::with_spec_batch`]). Accepted range:
    /// `spec_batch ≥ 1`; `0` is [`RunError::InvalidConfig`] at execute
    /// time.
    pub fn spec_batch(mut self, spec_batch: usize) -> Self {
        if spec_batch == 0 {
            self.record_invalid(RunError::InvalidConfig(
                "spec_batch must be >= 1 (got 0)".to_string(),
            ));
        }
        self.config = self.config.with_spec_batch(spec_batch);
        self
    }

    /// Execution backend for parallel runs: [`Backend::Threaded`] (the
    /// default) or [`Backend::Process`] (Linux only). Ignored by
    /// sequential and simulated runs.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config = self.config.with_backend(backend);
        self
    }

    /// Receive-side spin tuning for parallel runs (see
    /// [`ParallelConfig::with_spin`]): `relax` busy iterations with CPU
    /// relax hints, then yields up to `total`, then park.
    pub fn spin(mut self, relax: u32, total: u32) -> Self {
        self.config = self.config.with_spin(relax, total);
        self
    }

    /// Attach observation: with [`ObsSpec::Spans`] the outcome carries a
    /// [`RunReport`] of phase timings, latency histograms and gauges.
    /// Recording never perturbs the run (see [`crate::obs`]).
    pub fn probe(mut self, spec: ObsSpec) -> Self {
        self.config = self.config.with_obs(spec);
        self
    }

    /// The [`ParallelConfig`] this builder resolves to.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Check the builder without executing anything: surfaces the first
    /// recorded builder error and backend combinations this platform
    /// cannot run. A job server calls this at submit time so bad jobs
    /// are rejected before they queue.
    pub fn validate(&self) -> Result<(), RunError> {
        if let Some(err) = &self.invalid {
            return Err(err.clone());
        }
        if self.config.backend == Backend::Process {
            if self.config.randomizer == Randomizer::Curveball {
                return Err(RunError::BackendUnsupported(
                    "the process backend runs the switch protocol only; \
                     Curveball needs the threaded or simulated driver"
                        .to_string(),
                ));
            }
            if self.mode == Mode::Parallel && !process_backend_supported() {
                return Err(RunError::BackendUnsupported(
                    "the process backend needs shared-memory support (Linux)".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Resolve the budget against `graph`.
    fn resolve_ops(&self, graph: &Graph) -> u64 {
        match self.budget {
            Budget::Switches(t) => t,
            Budget::VisitRate(x) => {
                edgeswitch_dist::switch_ops_for_visit_rate(graph.num_edges() as u64, x)
            }
        }
    }

    /// The budget as Curveball sees it: an explicit count budgets
    /// trades; a visit-rate target is handled natively by the trade
    /// engine's pass controller (no operation-count derivation — that
    /// conversion is the switch protocol's, and Curveball needing fewer
    /// operations to the same rate is precisely the point).
    fn trade_budget(&self) -> TradeBudget {
        match self.budget {
            Budget::Switches(t) => TradeBudget::Trades(t),
            Budget::VisitRate(x) => TradeBudget::VisitRate(x),
        }
    }

    /// Execute the run, panicking with the [`RunError`]'s message on any
    /// failure. Thin wrapper over [`Run::try_execute`] for callers (the
    /// bench CLI, examples, tests) that treat failure as fatal. The input
    /// graph is not modified: sequential runs switch a clone, parallel
    /// runs partition and reassemble.
    pub fn execute(&self, graph: &Graph) -> RunOutcome {
        self.try_execute(graph)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Execute the run, surfacing failures as typed [`RunError`]s: bad
    /// builder inputs recorded at the call that supplied them
    /// ([`RunError::InvalidBudget`], [`RunError::InvalidConfig`]),
    /// backend/randomizer combinations this platform cannot run
    /// ([`RunError::BackendUnsupported`]), and process-backend launch or
    /// rank failures ([`RunError::SpawnFailed`], [`RunError::RankDied`]).
    /// The input graph is not modified.
    pub fn try_execute(&self, graph: &Graph) -> Result<RunOutcome, RunError> {
        self.validate()?;
        if self.config.randomizer == Randomizer::Curveball {
            return Ok(self.execute_curveball(graph));
        }
        let t = self.resolve_ops(graph);
        Ok(match self.mode {
            Mode::Sequential => {
                let mut g = graph.clone();
                let mut rng = edgeswitch_dist::root_rng(self.config.seed);
                let outcome = sequential_edge_switch_observed(&mut g, t, &mut rng, self.config.obs);
                RunOutcome::Sequential(Box::new(SequentialRun { graph: g, outcome }))
            }
            Mode::Parallel if self.config.backend == Backend::Process => {
                // The same dispatch as `parallel_edge_switch`, but through
                // the fallible launcher so spawn/rank failures surface as
                // errors instead of panics.
                let mut rng = self.config.root_rng();
                let part =
                    Partitioner::build(self.config.scheme, graph, self.config.processors, &mut rng);
                let out = try_parallel_edge_switch_proc(graph, t, &self.config, &part)?;
                RunOutcome::Parallel(Box::new(out))
            }
            Mode::Parallel => {
                RunOutcome::Parallel(Box::new(parallel_edge_switch(graph, t, &self.config)))
            }
            Mode::Simulated => {
                RunOutcome::Parallel(Box::new(simulate_parallel(graph, t, &self.config)))
            }
        })
    }

    /// The Curveball dispatch of [`Run::execute`]. A sequential trade
    /// run is surfaced through [`SequentialOutcome`] with `performed`
    /// counting trades, so [`RunOutcome`]'s accessors stay
    /// driver-independent.
    fn execute_curveball(&self, graph: &Graph) -> RunOutcome {
        let budget = self.trade_budget();
        match self.mode {
            Mode::Sequential => {
                let mut g = graph.clone();
                let out = sequential_curveball_observed(
                    &mut g,
                    budget,
                    self.config.seed,
                    self.config.obs,
                );
                let outcome = SequentialOutcome {
                    performed: out.trades,
                    abandoned: 0,
                    rejects: Default::default(),
                    tracker: out.tracker,
                    report: out.report,
                };
                RunOutcome::Sequential(Box::new(SequentialRun { graph: g, outcome }))
            }
            Mode::Parallel => {
                RunOutcome::Parallel(Box::new(parallel_curveball(graph, budget, &self.config)))
            }
            Mode::Simulated => {
                RunOutcome::Parallel(Box::new(simulate_curveball(graph, budget, &self.config)))
            }
        }
    }
}

/// A sequential run's switched graph together with its outcome.
#[derive(Clone, Debug)]
pub struct SequentialRun {
    /// The switched graph.
    pub graph: Graph,
    /// The run's counters, tracker and (if observed) report.
    pub outcome: SequentialOutcome,
}

/// What [`Run::execute`] produced, with driver-independent accessors.
#[derive(Debug)]
pub enum RunOutcome {
    /// A sequential run.
    Sequential(Box<SequentialRun>),
    /// A parallel run (threaded or simulated).
    Parallel(Box<ParallelOutcome>),
}

impl RunOutcome {
    /// The switched graph.
    pub fn graph(&self) -> &Graph {
        match self {
            RunOutcome::Sequential(run) => &run.graph,
            RunOutcome::Parallel(out) => &out.graph,
        }
    }

    /// Observed visit rate.
    pub fn visit_rate(&self) -> f64 {
        match self {
            RunOutcome::Sequential(run) => run.outcome.visit_rate(),
            RunOutcome::Parallel(out) => out.visit_rate(),
        }
    }

    /// Switch operations performed.
    pub fn performed(&self) -> u64 {
        match self {
            RunOutcome::Sequential(run) => run.outcome.performed,
            RunOutcome::Parallel(out) => out.performed(),
        }
    }

    /// The observability report (`Some` iff the run was observed via
    /// [`Run::probe`]).
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            RunOutcome::Sequential(run) => run.outcome.report.as_ref(),
            RunOutcome::Parallel(out) => out.report.as_ref(),
        }
    }

    /// The parallel outcome, if this was a parallel or simulated run.
    pub fn into_parallel(self) -> Option<ParallelOutcome> {
        match self {
            RunOutcome::Parallel(out) => Some(*out),
            RunOutcome::Sequential(_) => None,
        }
    }

    /// The sequential run, if this was one.
    pub fn into_sequential(self) -> Option<SequentialRun> {
        match self {
            RunOutcome::Sequential(run) => Some(*run),
            RunOutcome::Parallel(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_edge_switch;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;

    fn graph() -> Graph {
        erdos_renyi_gnm(150, 600, &mut root_rng(3))
    }

    #[test]
    fn builder_resolves_config() {
        let run = Run::parallel(8)
            .scheme(SchemeKind::HashUniversal)
            .step_size(StepSize::SingleStep)
            .seed(42)
            .window(4)
            .spec_batch(8)
            .probe(ObsSpec::Spans);
        let cfg = run.config();
        assert_eq!(cfg.processors, 8);
        assert_eq!(cfg.scheme, SchemeKind::HashUniversal);
        assert_eq!(cfg.step_size, StepSize::SingleStep);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.window, 4);
        assert_eq!(cfg.spec_batch, 8);
        assert_eq!(cfg.obs, ObsSpec::Spans);
    }

    #[test]
    fn sequential_run_matches_free_function() {
        let g = graph();
        let out = Run::sequential().switches(400).seed(11).execute(&g);
        let mut direct = g.clone();
        let d = sequential_edge_switch(&mut direct, 400, &mut root_rng(11));
        assert_eq!(out.performed(), d.performed);
        assert!(out.graph().same_edge_set(&direct));
        assert!(out.report().is_none());
        let run = out.into_sequential().expect("sequential run");
        assert_eq!(run.outcome.rejects, d.rejects);
    }

    #[test]
    fn simulated_run_matches_free_function() {
        let g = graph();
        let out = Run::simulated(4).switches(300).seed(5).execute(&g);
        let direct = simulate_parallel(&g, 300, &ParallelConfig::new(4).with_seed(5));
        assert!(out.graph().same_edge_set(&direct.graph));
        assert_eq!(out.performed(), direct.performed());
        let par = out.into_parallel().expect("parallel outcome");
        assert_eq!(par.steps, direct.steps);
    }

    #[test]
    fn visit_rate_budget_derives_ops() {
        let g = graph();
        let out = Run::sequential().visit_rate(0.5).seed(2).execute(&g);
        let t = edgeswitch_dist::switch_ops_for_visit_rate(g.num_edges() as u64, 0.5);
        assert_eq!(out.performed(), t);
        // Input untouched.
        assert_eq!(g.num_edges(), 600);
    }

    #[test]
    fn bad_visit_rate_is_invalid_budget() {
        let g = graph();
        for x in [0.0, -0.25, 1.5, f64::NAN] {
            let err = Run::sequential()
                .visit_rate(x)
                .try_execute(&g)
                .expect_err("bad visit rate must fail");
            assert!(
                matches!(err, RunError::InvalidBudget(_)),
                "{x} gave {err:?}"
            );
        }
    }

    #[test]
    fn zero_knobs_are_invalid_config() {
        let g = graph();
        let zero_p = Run::parallel(0).switches(10).try_execute(&g);
        assert!(matches!(zero_p, Err(RunError::InvalidConfig(_))));
        let zero_window = Run::simulated(2).switches(10).window(0).try_execute(&g);
        assert!(matches!(zero_window, Err(RunError::InvalidConfig(_))));
        let zero_batch = Run::simulated(2).switches(10).spec_batch(0).try_execute(&g);
        assert!(matches!(zero_batch, Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn first_builder_error_wins() {
        let g = graph();
        let err = Run::simulated(2)
            .visit_rate(2.0)
            .window(0)
            .try_execute(&g)
            .expect_err("both knobs invalid");
        assert!(matches!(err, RunError::InvalidBudget(_)), "{err:?}");
    }

    #[test]
    fn curveball_on_process_backend_is_unsupported() {
        let g = graph();
        let err = Run::process(2)
            .randomizer(Randomizer::Curveball)
            .switches(10)
            .try_execute(&g)
            .expect_err("curveball has no process driver");
        assert!(matches!(err, RunError::BackendUnsupported(_)), "{err:?}");
    }

    #[test]
    fn unspawnable_rank_exe_is_spawn_failed() {
        if !crate::parallel::process_backend_supported() {
            return;
        }
        let g = graph();
        let mut run = Run::process(2).switches(50).seed(4);
        run.config.proc_opts.exe_override =
            Some(std::path::PathBuf::from("/nonexistent/edgeswitch-rank-exe"));
        let err = run.try_execute(&g).expect_err("spawn must fail");
        assert!(matches!(err, RunError::SpawnFailed(_)), "{err:?}");
    }

    #[test]
    fn rank_exiting_without_results_is_rank_died() {
        if !crate::parallel::process_backend_supported() {
            return;
        }
        let g = graph();
        let mut run = Run::process(2).switches(50).seed(4);
        // `false` spawns fine, then exits nonzero without ever attaching
        // to the shm world or returning a result.
        run.config.proc_opts.exe_override = Some(std::path::PathBuf::from("/bin/false"));
        let err = run.try_execute(&g).expect_err("dead rank must fail");
        assert!(matches!(err, RunError::RankDied(_)), "{err:?}");
    }

    #[test]
    fn execute_panics_with_the_error_display() {
        let g = graph();
        let caught = std::panic::catch_unwind(|| {
            Run::sequential().visit_rate(0.0).execute(&g);
        })
        .expect_err("execute must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("invalid budget"), "panic message: {msg}");
    }

    #[test]
    fn observed_run_carries_report_and_identical_graph() {
        let g = graph();
        let plain = Run::sequential().switches(250).seed(7).execute(&g);
        let observed = Run::sequential()
            .switches(250)
            .seed(7)
            .probe(ObsSpec::Spans)
            .execute(&g);
        assert!(observed.graph().same_edge_set(plain.graph()));
        let report = observed.report().expect("observed run has a report");
        assert_eq!(report.clock, "monotonic");
        assert!(report.phase(crate::obs::Phase::Sample).hist.count > 0);
    }
}
