//! Byte codec for [`Msg`] frames crossing the process-backed transport.
//!
//! The threaded driver moves `Msg` values through in-process channels, so it
//! never needs a serialized form; the shared-memory rings move raw bytes, so
//! this module defines one. The format is deliberately dumb: a one-byte
//! discriminant followed by little-endian fields, edges as their canonical
//! `u64` keys, floats via `to_bits`. Frames are trusted (both ends are the
//! same binary), so malformed input panics — a torn or corrupt frame is a
//! transport bug, not an input error.

use edgeswitch_graph::Edge;
use mpilite::CollPayload;

use crate::switch::RejectReason;

use super::msg::{BatchReq, ConvId, Msg};

const T_PROPOSE: u8 = 0;
const T_VALIDATE: u8 = 1;
const T_VALIDATE_OK: u8 = 2;
const T_VALIDATE_FAIL: u8 = 3;
const T_RELEASE: u8 = 4;
const T_COMMIT_ADD: u8 = 5;
const T_COMMIT_REMOVE: u8 = 6;
const T_COMMIT_ACK: u8 = 7;
const T_DONE: u8 = 8;
const T_ABORT: u8 = 9;
const T_END_OF_STEP: u8 = 10;
const T_COLL: u8 = 11;
const T_BATCH: u8 = 12;
const T_BATCH_PROPOSE: u8 = 13;
const T_BATCH_VERDICT: u8 = 14;
const T_TRADE_LOAD: u8 = 15;
const T_TRADE_HOME: u8 = 16;
const T_TRADE_VISIT: u8 = 17;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_conv(out: &mut Vec<u8>, conv: ConvId) {
    put_u32(out, conv.initiator);
    put_u64(out, conv.seq);
}

fn put_edge(out: &mut Vec<u8>, edge: Edge) {
    put_u64(out, edge.key());
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::SelfLoop => 0,
        RejectReason::Useless => 1,
        RejectReason::ParallelEdge => 2,
        RejectReason::Contended => 3,
    }
}

fn reason_from(code: u8) -> RejectReason {
    match code {
        0 => RejectReason::SelfLoop,
        1 => RejectReason::Useless,
        2 => RejectReason::ParallelEdge,
        3 => RejectReason::Contended,
        other => panic!("wire: bad reject reason {other}"),
    }
}

const C_UNIT: u8 = 0;
const C_U64: u8 = 1;
const C_F64: u8 = 2;
const C_VEC_U64: u8 = 3;
const C_VEC_F64: u8 = 4;

/// Append the encoding of `payload` to `out`.
pub fn encode_coll(payload: &CollPayload, out: &mut Vec<u8>) {
    match payload {
        CollPayload::Unit => out.push(C_UNIT),
        CollPayload::U64(v) => {
            out.push(C_U64);
            put_u64(out, *v);
        }
        CollPayload::F64(v) => {
            out.push(C_F64);
            put_u64(out, v.to_bits());
        }
        CollPayload::VecU64(vs) => {
            out.push(C_VEC_U64);
            put_u32(out, vs.len() as u32);
            for v in vs {
                put_u64(out, *v);
            }
        }
        CollPayload::VecF64(vs) => {
            out.push(C_VEC_F64);
            put_u32(out, vs.len() as u32);
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
    }
}

/// Append the encoding of `msg` to `out` (`out` is not cleared).
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Propose { conv, e1 } => {
            out.push(T_PROPOSE);
            put_conv(out, *conv);
            put_edge(out, *e1);
        }
        Msg::Validate { conv, edge } => {
            out.push(T_VALIDATE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::ValidateOk { conv, edge } => {
            out.push(T_VALIDATE_OK);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::ValidateFail { conv, edge } => {
            out.push(T_VALIDATE_FAIL);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::Release { conv, edge } => {
            out.push(T_RELEASE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitAdd { conv, edge } => {
            out.push(T_COMMIT_ADD);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitRemove { conv, edge } => {
            out.push(T_COMMIT_REMOVE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitAck { conv } => {
            out.push(T_COMMIT_ACK);
            put_conv(out, *conv);
        }
        Msg::Done { conv } => {
            out.push(T_DONE);
            put_conv(out, *conv);
        }
        Msg::Abort { conv, reason } => {
            out.push(T_ABORT);
            put_conv(out, *conv);
            out.push(reason_code(*reason));
        }
        Msg::EndOfStep => out.push(T_END_OF_STEP),
        Msg::Coll(payload) => {
            out.push(T_COLL);
            encode_coll(payload, out);
        }
        Msg::Batch(msgs) => {
            out.push(T_BATCH);
            put_u32(out, msgs.len() as u32);
            for m in msgs {
                encode_msg(m, out);
            }
        }
        Msg::BatchPropose { reqs } => {
            out.push(T_BATCH_PROPOSE);
            put_u32(out, reqs.len() as u32);
            for req in reqs {
                put_conv(out, req.conv);
                put_edge(out, req.first);
                match req.second {
                    Some(edge) => {
                        out.push(1);
                        put_edge(out, edge);
                    }
                    None => out.push(0),
                }
            }
        }
        Msg::BatchVerdict { verdicts } => {
            out.push(T_BATCH_VERDICT);
            put_u32(out, verdicts.len() as u32);
            for (conv, accepted) in verdicts {
                put_conv(out, *conv);
                out.push(u8::from(*accepted));
            }
        }
        Msg::TradeLoad { trade, edges } => {
            out.push(T_TRADE_LOAD);
            put_u32(out, *trade);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
        Msg::TradeHome { edges } => {
            out.push(T_TRADE_HOME);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
        Msg::TradeVisit { edges } => {
            out.push(T_TRADE_VISIT);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.bytes[self.at];
        self.at += 1;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.at..self.at + 4].try_into().unwrap());
        self.at += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }

    fn conv(&mut self) -> ConvId {
        let initiator = self.u32();
        let seq = self.u64();
        ConvId { initiator, seq }
    }

    fn edge(&mut self) -> Edge {
        Edge::from_key(self.u64())
    }

    fn coll(&mut self) -> CollPayload {
        match self.u8() {
            C_UNIT => CollPayload::Unit,
            C_U64 => CollPayload::U64(self.u64()),
            C_F64 => CollPayload::F64(f64::from_bits(self.u64())),
            C_VEC_U64 => {
                let n = self.u32() as usize;
                CollPayload::VecU64((0..n).map(|_| self.u64()).collect())
            }
            C_VEC_F64 => {
                let n = self.u32() as usize;
                CollPayload::VecF64((0..n).map(|_| f64::from_bits(self.u64())).collect())
            }
            other => panic!("wire: bad collective subtag {other}"),
        }
    }

    fn msg(&mut self) -> Msg {
        match self.u8() {
            T_PROPOSE => Msg::Propose {
                conv: self.conv(),
                e1: self.edge(),
            },
            T_VALIDATE => Msg::Validate {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_VALIDATE_OK => Msg::ValidateOk {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_VALIDATE_FAIL => Msg::ValidateFail {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_RELEASE => Msg::Release {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_ADD => Msg::CommitAdd {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_REMOVE => Msg::CommitRemove {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_ACK => Msg::CommitAck { conv: self.conv() },
            T_DONE => Msg::Done { conv: self.conv() },
            T_ABORT => Msg::Abort {
                conv: self.conv(),
                reason: reason_from(self.u8()),
            },
            T_END_OF_STEP => Msg::EndOfStep,
            T_COLL => Msg::Coll(self.coll()),
            T_BATCH => {
                let n = self.u32() as usize;
                Msg::Batch((0..n).map(|_| self.msg()).collect())
            }
            T_BATCH_PROPOSE => {
                let n = self.u32() as usize;
                let reqs = (0..n)
                    .map(|_| {
                        let conv = self.conv();
                        let first = self.edge();
                        let second = match self.u8() {
                            0 => None,
                            _ => Some(self.edge()),
                        };
                        BatchReq {
                            conv,
                            first,
                            second,
                        }
                    })
                    .collect();
                Msg::BatchPropose { reqs }
            }
            T_BATCH_VERDICT => {
                let n = self.u32() as usize;
                let verdicts = (0..n).map(|_| (self.conv(), self.u8() != 0)).collect();
                Msg::BatchVerdict { verdicts }
            }
            T_TRADE_LOAD => {
                let trade = self.u32();
                let n = self.u32() as usize;
                Msg::TradeLoad {
                    trade,
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            T_TRADE_HOME => {
                let n = self.u32() as usize;
                Msg::TradeHome {
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            T_TRADE_VISIT => {
                let n = self.u32() as usize;
                Msg::TradeVisit {
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            other => panic!("wire: bad message discriminant {other}"),
        }
    }
}

/// Decode one message; panics on malformed or trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Msg {
    let mut r = Reader { bytes, at: 0 };
    let msg = r.msg();
    assert_eq!(
        r.at,
        bytes.len(),
        "wire: {} trailing bytes after message",
        bytes.len() - r.at
    );
    msg
}

/// Decode one collective payload; panics on malformed or trailing bytes.
pub fn decode_coll(bytes: &[u8]) -> CollPayload {
    let mut r = Reader { bytes, at: 0 };
    let payload = r.coll();
    assert_eq!(
        r.at,
        bytes.len(),
        "wire: trailing bytes after collective payload"
    );
    payload
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(i: u32, s: u64) -> ConvId {
        ConvId {
            initiator: i,
            seq: s,
        }
    }

    fn roundtrip(msg: Msg) {
        let mut bytes = Vec::new();
        encode_msg(&msg, &mut bytes);
        assert_eq!(decode_msg(&bytes), msg);
    }

    #[test]
    fn every_message_variant_roundtrips() {
        let e = |a, b| Edge::new(a, b);
        roundtrip(Msg::Propose {
            conv: conv(1, 2),
            e1: e(3, 4),
        });
        roundtrip(Msg::Validate {
            conv: conv(0, u64::MAX),
            edge: e(7, 8),
        });
        roundtrip(Msg::ValidateOk {
            conv: conv(9, 1),
            edge: e(1, 2),
        });
        roundtrip(Msg::ValidateFail {
            conv: conv(9, 1),
            edge: e(2, 1),
        });
        roundtrip(Msg::Release {
            conv: conv(4, 4),
            edge: e(5, 6),
        });
        roundtrip(Msg::CommitAdd {
            conv: conv(4, 4),
            edge: e(5, 6),
        });
        roundtrip(Msg::CommitRemove {
            conv: conv(4, 4),
            edge: e(6, 5),
        });
        roundtrip(Msg::CommitAck {
            conv: conv(u32::MAX, 0),
        });
        roundtrip(Msg::Done { conv: conv(2, 3) });
        for reason in [
            RejectReason::SelfLoop,
            RejectReason::Useless,
            RejectReason::ParallelEdge,
            RejectReason::Contended,
        ] {
            roundtrip(Msg::Abort {
                conv: conv(8, 8),
                reason,
            });
        }
        roundtrip(Msg::EndOfStep);
        roundtrip(Msg::BatchPropose {
            reqs: vec![
                BatchReq {
                    conv: conv(1, 1),
                    first: e(1, 2),
                    second: Some(e(3, 4)),
                },
                BatchReq {
                    conv: conv(1, 2),
                    first: e(5, 6),
                    second: None,
                },
            ],
        });
        roundtrip(Msg::BatchVerdict {
            verdicts: vec![(conv(1, 1), true), (conv(1, 2), false)],
        });
        roundtrip(Msg::TradeLoad {
            trade: u32::MAX,
            edges: vec![e(1, 2).key(), e(3, 4).key()],
        });
        roundtrip(Msg::TradeLoad {
            trade: 0,
            edges: vec![],
        });
        roundtrip(Msg::TradeHome {
            edges: vec![e(9, 10).key()],
        });
        roundtrip(Msg::TradeVisit {
            edges: vec![e(5, 6).key(), e(7, 8).key()],
        });
    }

    #[test]
    fn collective_payloads_roundtrip_bit_exactly() {
        for payload in [
            CollPayload::Unit,
            CollPayload::U64(u64::MAX),
            CollPayload::F64(-0.0),
            CollPayload::F64(f64::NAN),
            CollPayload::VecU64(vec![]),
            CollPayload::VecU64(vec![1, 2, 3]),
            CollPayload::VecF64(vec![1.5, f64::INFINITY]),
        ] {
            let mut msg_bytes = Vec::new();
            encode_msg(&Msg::Coll(payload.clone()), &mut msg_bytes);
            let mut msg_again = Vec::new();
            encode_msg(&decode_msg(&msg_bytes), &mut msg_again);
            // Compare re-encodings bitwise so NaN payloads count as equal.
            assert_eq!(msg_bytes, msg_again);

            let mut bytes = Vec::new();
            encode_coll(&payload, &mut bytes);
            let mut again = Vec::new();
            encode_coll(&decode_coll(&bytes), &mut again);
            assert_eq!(bytes, again);
        }
    }

    #[test]
    fn batches_nest_protocol_messages() {
        roundtrip(Msg::Batch(vec![
            Msg::Propose {
                conv: conv(1, 2),
                e1: Edge::new(3, 4),
            },
            Msg::EndOfStep,
            Msg::Done { conv: conv(5, 6) },
        ]));
    }
}
