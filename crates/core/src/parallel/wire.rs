//! Byte codec for [`Msg`] frames crossing the process-backed transport.
//!
//! The threaded driver moves `Msg` values through in-process channels, so it
//! never needs a serialized form; the shared-memory rings move raw bytes, so
//! this module defines one. The format is deliberately dumb: a one-byte
//! discriminant followed by little-endian fields, edges as their canonical
//! `u64` keys, floats via `to_bits`. Frames are trusted (both ends are the
//! same binary), so malformed input panics — a torn or corrupt frame is a
//! transport bug, not an input error.

use edgeswitch_graph::Edge;
use mpilite::{CollPayload, CommStats, KIND_SLOTS};

use crate::sequential::{RejectCounts, SeqCheckpoint};
use crate::switch::RejectReason;

use super::harness::{MsgCounts, StepTelemetry};
use super::msg::{BatchReq, ConvId, Msg, MsgKind};
use super::rank::{RankCheckpoint, RankStats};
use super::resume::WorldSnapshot;

const T_PROPOSE: u8 = 0;
const T_VALIDATE: u8 = 1;
const T_VALIDATE_OK: u8 = 2;
const T_VALIDATE_FAIL: u8 = 3;
const T_RELEASE: u8 = 4;
const T_COMMIT_ADD: u8 = 5;
const T_COMMIT_REMOVE: u8 = 6;
const T_COMMIT_ACK: u8 = 7;
const T_DONE: u8 = 8;
const T_ABORT: u8 = 9;
const T_END_OF_STEP: u8 = 10;
const T_COLL: u8 = 11;
const T_BATCH: u8 = 12;
const T_BATCH_PROPOSE: u8 = 13;
const T_BATCH_VERDICT: u8 = 14;
const T_TRADE_LOAD: u8 = 15;
const T_TRADE_HOME: u8 = 16;
const T_TRADE_VISIT: u8 = 17;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_conv(out: &mut Vec<u8>, conv: ConvId) {
    put_u32(out, conv.initiator);
    put_u64(out, conv.seq);
}

fn put_edge(out: &mut Vec<u8>, edge: Edge) {
    put_u64(out, edge.key());
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::SelfLoop => 0,
        RejectReason::Useless => 1,
        RejectReason::ParallelEdge => 2,
        RejectReason::Contended => 3,
    }
}

fn reason_from(code: u8) -> RejectReason {
    match code {
        0 => RejectReason::SelfLoop,
        1 => RejectReason::Useless,
        2 => RejectReason::ParallelEdge,
        3 => RejectReason::Contended,
        other => panic!("wire: bad reject reason {other}"),
    }
}

const C_UNIT: u8 = 0;
const C_U64: u8 = 1;
const C_F64: u8 = 2;
const C_VEC_U64: u8 = 3;
const C_VEC_F64: u8 = 4;

/// Append the encoding of `payload` to `out`.
pub fn encode_coll(payload: &CollPayload, out: &mut Vec<u8>) {
    match payload {
        CollPayload::Unit => out.push(C_UNIT),
        CollPayload::U64(v) => {
            out.push(C_U64);
            put_u64(out, *v);
        }
        CollPayload::F64(v) => {
            out.push(C_F64);
            put_u64(out, v.to_bits());
        }
        CollPayload::VecU64(vs) => {
            out.push(C_VEC_U64);
            put_u32(out, vs.len() as u32);
            for v in vs {
                put_u64(out, *v);
            }
        }
        CollPayload::VecF64(vs) => {
            out.push(C_VEC_F64);
            put_u32(out, vs.len() as u32);
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
    }
}

/// Append the encoding of `msg` to `out` (`out` is not cleared).
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Propose { conv, e1 } => {
            out.push(T_PROPOSE);
            put_conv(out, *conv);
            put_edge(out, *e1);
        }
        Msg::Validate { conv, edge } => {
            out.push(T_VALIDATE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::ValidateOk { conv, edge } => {
            out.push(T_VALIDATE_OK);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::ValidateFail { conv, edge } => {
            out.push(T_VALIDATE_FAIL);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::Release { conv, edge } => {
            out.push(T_RELEASE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitAdd { conv, edge } => {
            out.push(T_COMMIT_ADD);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitRemove { conv, edge } => {
            out.push(T_COMMIT_REMOVE);
            put_conv(out, *conv);
            put_edge(out, *edge);
        }
        Msg::CommitAck { conv } => {
            out.push(T_COMMIT_ACK);
            put_conv(out, *conv);
        }
        Msg::Done { conv } => {
            out.push(T_DONE);
            put_conv(out, *conv);
        }
        Msg::Abort { conv, reason } => {
            out.push(T_ABORT);
            put_conv(out, *conv);
            out.push(reason_code(*reason));
        }
        Msg::EndOfStep => out.push(T_END_OF_STEP),
        Msg::Coll(payload) => {
            out.push(T_COLL);
            encode_coll(payload, out);
        }
        Msg::Batch(msgs) => {
            out.push(T_BATCH);
            put_u32(out, msgs.len() as u32);
            for m in msgs {
                encode_msg(m, out);
            }
        }
        Msg::BatchPropose { reqs } => {
            out.push(T_BATCH_PROPOSE);
            put_u32(out, reqs.len() as u32);
            for req in reqs {
                put_conv(out, req.conv);
                put_edge(out, req.first);
                match req.second {
                    Some(edge) => {
                        out.push(1);
                        put_edge(out, edge);
                    }
                    None => out.push(0),
                }
            }
        }
        Msg::BatchVerdict { verdicts } => {
            out.push(T_BATCH_VERDICT);
            put_u32(out, verdicts.len() as u32);
            for (conv, accepted) in verdicts {
                put_conv(out, *conv);
                out.push(u8::from(*accepted));
            }
        }
        Msg::TradeLoad { trade, edges } => {
            out.push(T_TRADE_LOAD);
            put_u32(out, *trade);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
        Msg::TradeHome { edges } => {
            out.push(T_TRADE_HOME);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
        Msg::TradeVisit { edges } => {
            out.push(T_TRADE_VISIT);
            put_u32(out, edges.len() as u32);
            for key in edges {
                put_u64(out, *key);
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.bytes[self.at];
        self.at += 1;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.at..self.at + 4].try_into().unwrap());
        self.at += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }

    fn conv(&mut self) -> ConvId {
        let initiator = self.u32();
        let seq = self.u64();
        ConvId { initiator, seq }
    }

    fn edge(&mut self) -> Edge {
        Edge::from_key(self.u64())
    }

    fn coll(&mut self) -> CollPayload {
        match self.u8() {
            C_UNIT => CollPayload::Unit,
            C_U64 => CollPayload::U64(self.u64()),
            C_F64 => CollPayload::F64(f64::from_bits(self.u64())),
            C_VEC_U64 => {
                let n = self.u32() as usize;
                CollPayload::VecU64((0..n).map(|_| self.u64()).collect())
            }
            C_VEC_F64 => {
                let n = self.u32() as usize;
                CollPayload::VecF64((0..n).map(|_| f64::from_bits(self.u64())).collect())
            }
            other => panic!("wire: bad collective subtag {other}"),
        }
    }

    fn msg(&mut self) -> Msg {
        match self.u8() {
            T_PROPOSE => Msg::Propose {
                conv: self.conv(),
                e1: self.edge(),
            },
            T_VALIDATE => Msg::Validate {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_VALIDATE_OK => Msg::ValidateOk {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_VALIDATE_FAIL => Msg::ValidateFail {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_RELEASE => Msg::Release {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_ADD => Msg::CommitAdd {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_REMOVE => Msg::CommitRemove {
                conv: self.conv(),
                edge: self.edge(),
            },
            T_COMMIT_ACK => Msg::CommitAck { conv: self.conv() },
            T_DONE => Msg::Done { conv: self.conv() },
            T_ABORT => Msg::Abort {
                conv: self.conv(),
                reason: reason_from(self.u8()),
            },
            T_END_OF_STEP => Msg::EndOfStep,
            T_COLL => Msg::Coll(self.coll()),
            T_BATCH => {
                let n = self.u32() as usize;
                Msg::Batch((0..n).map(|_| self.msg()).collect())
            }
            T_BATCH_PROPOSE => {
                let n = self.u32() as usize;
                let reqs = (0..n)
                    .map(|_| {
                        let conv = self.conv();
                        let first = self.edge();
                        let second = match self.u8() {
                            0 => None,
                            _ => Some(self.edge()),
                        };
                        BatchReq {
                            conv,
                            first,
                            second,
                        }
                    })
                    .collect();
                Msg::BatchPropose { reqs }
            }
            T_BATCH_VERDICT => {
                let n = self.u32() as usize;
                let verdicts = (0..n).map(|_| (self.conv(), self.u8() != 0)).collect();
                Msg::BatchVerdict { verdicts }
            }
            T_TRADE_LOAD => {
                let trade = self.u32();
                let n = self.u32() as usize;
                Msg::TradeLoad {
                    trade,
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            T_TRADE_HOME => {
                let n = self.u32() as usize;
                Msg::TradeHome {
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            T_TRADE_VISIT => {
                let n = self.u32() as usize;
                Msg::TradeVisit {
                    edges: (0..n).map(|_| self.u64()).collect(),
                }
            }
            other => panic!("wire: bad message discriminant {other}"),
        }
    }
}

/// Decode one message; panics on malformed or trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Msg {
    let mut r = Reader { bytes, at: 0 };
    let msg = r.msg();
    assert_eq!(
        r.at,
        bytes.len(),
        "wire: {} trailing bytes after message",
        bytes.len() - r.at
    );
    msg
}

/// Decode one collective payload; panics on malformed or trailing bytes.
pub fn decode_coll(bytes: &[u8]) -> CollPayload {
    let mut r = Reader { bytes, at: 0 };
    let payload = r.coll();
    assert_eq!(
        r.at,
        bytes.len(),
        "wire: trailing bytes after collective payload"
    );
    payload
}

// ---------------------------------------------------------------------
// Engine snapshots (checkpoint/resume)
// ---------------------------------------------------------------------
//
// The same dumb little-endian style as the message codec, reused for the
// job service's on-disk checkpoints: a magic/version header, a kind
// byte, then the snapshot fields in declaration order. Floats go through
// `to_bits`, edges as canonical keys. Decoding a snapshot written by a
// different format version panics on the header check instead of
// misreading state — a stale checkpoint must never silently resume.

/// Snapshot header: `b"ESNP"` followed by the format version.
const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"ESNP");
/// Current snapshot format version.
const SNAP_VERSION: u32 = 1;
/// Kind byte of a [`WorldSnapshot`].
const SNAP_WORLD: u8 = 1;
/// Kind byte of a [`SeqCheckpoint`].
const SNAP_SEQ: u8 = 2;

fn put_header(out: &mut Vec<u8>, kind: u8) {
    put_u32(out, SNAP_MAGIC);
    put_u32(out, SNAP_VERSION);
    out.push(kind);
}

fn put_stats(out: &mut Vec<u8>, stats: &RankStats) {
    for v in [
        stats.performed,
        stats.performed_local,
        stats.performed_global,
        stats.performed_fastpath,
        stats.aborts_loop,
        stats.aborts_useless,
        stats.aborts_parallel,
        stats.aborts_contended,
        stats.forfeited,
        stats.proposals_served,
        stats.validations_served,
        stats.spec_committed,
        stats.spec_rolled_back,
    ] {
        put_u64(out, v);
    }
}

fn put_comm(out: &mut Vec<u8>, comm: &CommStats) {
    for v in [
        comm.packets_sent,
        comm.bytes_sent,
        comm.packets_received,
        comm.collectives,
        comm.parks,
        comm.park_ns,
        comm.recv_queue_peak,
        comm.recv_buf_reuses,
    ] {
        put_u64(out, v);
    }
    for v in comm.logical_by_kind {
        put_u64(out, v);
    }
}

fn put_telemetry(out: &mut Vec<u8>, tel: &StepTelemetry) {
    for v in [
        tel.ops,
        tel.started,
        tel.performed,
        tel.local_fastpath,
        tel.forfeited,
        tel.served,
        tel.blocked,
        tel.parked,
        tel.window_peak,
        tel.spec_committed,
        tel.spec_rolled_back,
        tel.packets,
        tel.trades,
        tel.neighbors_moved,
    ] {
        put_u64(out, v);
    }
    for v in tel.logical_msgs.slots() {
        put_u64(out, *v);
    }
    for v in [
        tel.boundary_ns,
        tel.drain_ns,
        tel.barrier_ns,
        tel.qrefresh_ns,
        tel.wait_ns,
    ] {
        put_u64(out, v.to_bits());
    }
}

fn put_rank_checkpoint(out: &mut Vec<u8>, ckpt: &RankCheckpoint) {
    put_u64(out, ckpt.rank as u64);
    put_u64(out, ckpt.store_edges.len() as u64);
    for e in &ckpt.store_edges {
        put_edge(out, *e);
    }
    put_u64(out, ckpt.tracker_initial as u64);
    put_u64(out, ckpt.tracker_remaining.len() as u64);
    for key in &ckpt.tracker_remaining {
        put_u64(out, *key);
    }
    put_stats(out, &ckpt.stats);
    put_u64(out, ckpt.conv_seq);
    put_u64(out, ckpt.rng_words);
}

impl<'a> Reader<'a> {
    fn header(&mut self, kind: u8) {
        let magic = self.u32();
        assert_eq!(magic, SNAP_MAGIC, "snapshot: bad magic {magic:#x}");
        let version = self.u32();
        assert_eq!(
            version, SNAP_VERSION,
            "snapshot: unsupported version {version}"
        );
        let k = self.u8();
        assert_eq!(k, kind, "snapshot: wrong kind byte {k}");
    }

    fn stats(&mut self) -> RankStats {
        RankStats {
            performed: self.u64(),
            performed_local: self.u64(),
            performed_global: self.u64(),
            performed_fastpath: self.u64(),
            aborts_loop: self.u64(),
            aborts_useless: self.u64(),
            aborts_parallel: self.u64(),
            aborts_contended: self.u64(),
            forfeited: self.u64(),
            proposals_served: self.u64(),
            validations_served: self.u64(),
            spec_committed: self.u64(),
            spec_rolled_back: self.u64(),
        }
    }

    fn comm(&mut self) -> CommStats {
        let mut comm = CommStats {
            packets_sent: self.u64(),
            bytes_sent: self.u64(),
            packets_received: self.u64(),
            collectives: self.u64(),
            parks: self.u64(),
            park_ns: self.u64(),
            recv_queue_peak: self.u64(),
            recv_buf_reuses: self.u64(),
            ..CommStats::default()
        };
        for slot in 0..KIND_SLOTS {
            comm.logical_by_kind[slot] = self.u64();
        }
        comm
    }

    fn telemetry(&mut self) -> StepTelemetry {
        let mut tel = StepTelemetry {
            ops: self.u64(),
            started: self.u64(),
            performed: self.u64(),
            local_fastpath: self.u64(),
            forfeited: self.u64(),
            served: self.u64(),
            blocked: self.u64(),
            parked: self.u64(),
            window_peak: self.u64(),
            spec_committed: self.u64(),
            spec_rolled_back: self.u64(),
            packets: self.u64(),
            trades: self.u64(),
            neighbors_moved: self.u64(),
            ..StepTelemetry::default()
        };
        let mut slots = [0u64; MsgKind::COUNT];
        for slot in &mut slots {
            *slot = self.u64();
        }
        tel.logical_msgs = MsgCounts::from_slots(slots);
        tel.boundary_ns = self.f64();
        tel.drain_ns = self.f64();
        tel.barrier_ns = self.f64();
        tel.qrefresh_ns = self.f64();
        tel.wait_ns = self.f64();
        tel
    }

    fn rank_checkpoint(&mut self) -> RankCheckpoint {
        let rank = self.u64() as usize;
        let edges = self.u64() as usize;
        let store_edges = (0..edges).map(|_| self.edge()).collect();
        let tracker_initial = self.u64() as usize;
        let remaining = self.u64() as usize;
        let tracker_remaining = (0..remaining).map(|_| self.u64()).collect();
        RankCheckpoint {
            rank,
            store_edges,
            tracker_initial,
            tracker_remaining,
            stats: self.stats(),
            conv_seq: self.u64(),
            rng_words: self.u64(),
        }
    }

    fn finish(self) {
        assert_eq!(
            self.at,
            self.bytes.len(),
            "snapshot: {} trailing bytes",
            self.bytes.len() - self.at
        );
    }
}

/// Serialize a [`WorldSnapshot`] (deterministic bytes for a given
/// snapshot — rank checkpoints carry their sets pre-sorted).
pub fn encode_world_snapshot(snap: &WorldSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, SNAP_WORLD);
    put_u64(&mut out, snap.seed);
    put_u64(&mut out, snap.p as u64);
    put_u64(&mut out, snap.n as u64);
    put_u64(&mut out, snap.t);
    put_u64(&mut out, snap.next_step);
    put_u64(&mut out, snap.ranks.len() as u64);
    for ckpt in &snap.ranks {
        put_rank_checkpoint(&mut out, ckpt);
    }
    put_u64(&mut out, snap.comm.len() as u64);
    for comm in &snap.comm {
        put_comm(&mut out, comm);
    }
    put_u64(&mut out, snap.telemetry.len() as u64);
    for tel in &snap.telemetry {
        put_telemetry(&mut out, tel);
    }
    put_u64(&mut out, snap.initial_edges.len() as u64);
    for v in &snap.initial_edges {
        put_u64(&mut out, *v);
    }
    out
}

/// Decode a [`WorldSnapshot`]; panics on malformed, truncated, trailing
/// or wrong-version bytes (a checkpoint file is trusted once its header
/// matches — corruption is an operator error worth failing loudly on).
pub fn decode_world_snapshot(bytes: &[u8]) -> WorldSnapshot {
    let mut r = Reader { bytes, at: 0 };
    r.header(SNAP_WORLD);
    let seed = r.u64();
    let p = r.u64() as usize;
    let n = r.u64() as usize;
    let t = r.u64();
    let next_step = r.u64();
    let ranks_len = r.u64() as usize;
    let ranks = (0..ranks_len).map(|_| r.rank_checkpoint()).collect();
    let comm_len = r.u64() as usize;
    let comm = (0..comm_len).map(|_| r.comm()).collect();
    let tel_len = r.u64() as usize;
    let telemetry = (0..tel_len).map(|_| r.telemetry()).collect();
    let ie_len = r.u64() as usize;
    let initial_edges = (0..ie_len).map(|_| r.u64()).collect();
    let snap = WorldSnapshot {
        seed,
        p,
        n,
        t,
        next_step,
        ranks,
        comm,
        telemetry,
        initial_edges,
    };
    r.finish();
    snap
}

/// Serialize a [`SeqCheckpoint`].
pub fn encode_seq_checkpoint(ckpt: &SeqCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, SNAP_SEQ);
    put_u64(&mut out, ckpt.seed);
    put_u64(&mut out, ckpt.n as u64);
    put_u64(&mut out, ckpt.t);
    put_u64(&mut out, ckpt.performed);
    put_u64(&mut out, ckpt.abandoned);
    put_u64(&mut out, ckpt.rejects.self_loop);
    put_u64(&mut out, ckpt.rejects.useless);
    put_u64(&mut out, ckpt.rejects.parallel);
    put_u64(&mut out, ckpt.tracker_initial as u64);
    put_u64(&mut out, ckpt.tracker_remaining.len() as u64);
    for key in &ckpt.tracker_remaining {
        put_u64(&mut out, *key);
    }
    put_u64(&mut out, ckpt.graph_edges.len() as u64);
    for e in &ckpt.graph_edges {
        put_edge(&mut out, *e);
    }
    put_u64(&mut out, ckpt.rng_words);
    out
}

/// Decode a [`SeqCheckpoint`]; same trust model as
/// [`decode_world_snapshot`].
pub fn decode_seq_checkpoint(bytes: &[u8]) -> SeqCheckpoint {
    let mut r = Reader { bytes, at: 0 };
    r.header(SNAP_SEQ);
    let seed = r.u64();
    let n = r.u64() as usize;
    let t = r.u64();
    let performed = r.u64();
    let abandoned = r.u64();
    let rejects = RejectCounts {
        self_loop: r.u64(),
        useless: r.u64(),
        parallel: r.u64(),
    };
    let tracker_initial = r.u64() as usize;
    let rem_len = r.u64() as usize;
    let tracker_remaining = (0..rem_len).map(|_| r.u64()).collect();
    let edge_len = r.u64() as usize;
    let graph_edges = (0..edge_len).map(|_| r.edge()).collect();
    let ckpt = SeqCheckpoint {
        seed,
        n,
        t,
        performed,
        abandoned,
        rejects,
        tracker_initial,
        tracker_remaining,
        graph_edges,
        rng_words: r.u64(),
    };
    r.finish();
    ckpt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(i: u32, s: u64) -> ConvId {
        ConvId {
            initiator: i,
            seq: s,
        }
    }

    fn roundtrip(msg: Msg) {
        let mut bytes = Vec::new();
        encode_msg(&msg, &mut bytes);
        assert_eq!(decode_msg(&bytes), msg);
    }

    #[test]
    fn every_message_variant_roundtrips() {
        let e = |a, b| Edge::new(a, b);
        roundtrip(Msg::Propose {
            conv: conv(1, 2),
            e1: e(3, 4),
        });
        roundtrip(Msg::Validate {
            conv: conv(0, u64::MAX),
            edge: e(7, 8),
        });
        roundtrip(Msg::ValidateOk {
            conv: conv(9, 1),
            edge: e(1, 2),
        });
        roundtrip(Msg::ValidateFail {
            conv: conv(9, 1),
            edge: e(2, 1),
        });
        roundtrip(Msg::Release {
            conv: conv(4, 4),
            edge: e(5, 6),
        });
        roundtrip(Msg::CommitAdd {
            conv: conv(4, 4),
            edge: e(5, 6),
        });
        roundtrip(Msg::CommitRemove {
            conv: conv(4, 4),
            edge: e(6, 5),
        });
        roundtrip(Msg::CommitAck {
            conv: conv(u32::MAX, 0),
        });
        roundtrip(Msg::Done { conv: conv(2, 3) });
        for reason in [
            RejectReason::SelfLoop,
            RejectReason::Useless,
            RejectReason::ParallelEdge,
            RejectReason::Contended,
        ] {
            roundtrip(Msg::Abort {
                conv: conv(8, 8),
                reason,
            });
        }
        roundtrip(Msg::EndOfStep);
        roundtrip(Msg::BatchPropose {
            reqs: vec![
                BatchReq {
                    conv: conv(1, 1),
                    first: e(1, 2),
                    second: Some(e(3, 4)),
                },
                BatchReq {
                    conv: conv(1, 2),
                    first: e(5, 6),
                    second: None,
                },
            ],
        });
        roundtrip(Msg::BatchVerdict {
            verdicts: vec![(conv(1, 1), true), (conv(1, 2), false)],
        });
        roundtrip(Msg::TradeLoad {
            trade: u32::MAX,
            edges: vec![e(1, 2).key(), e(3, 4).key()],
        });
        roundtrip(Msg::TradeLoad {
            trade: 0,
            edges: vec![],
        });
        roundtrip(Msg::TradeHome {
            edges: vec![e(9, 10).key()],
        });
        roundtrip(Msg::TradeVisit {
            edges: vec![e(5, 6).key(), e(7, 8).key()],
        });
    }

    #[test]
    fn collective_payloads_roundtrip_bit_exactly() {
        for payload in [
            CollPayload::Unit,
            CollPayload::U64(u64::MAX),
            CollPayload::F64(-0.0),
            CollPayload::F64(f64::NAN),
            CollPayload::VecU64(vec![]),
            CollPayload::VecU64(vec![1, 2, 3]),
            CollPayload::VecF64(vec![1.5, f64::INFINITY]),
        ] {
            let mut msg_bytes = Vec::new();
            encode_msg(&Msg::Coll(payload.clone()), &mut msg_bytes);
            let mut msg_again = Vec::new();
            encode_msg(&decode_msg(&msg_bytes), &mut msg_again);
            // Compare re-encodings bitwise so NaN payloads count as equal.
            assert_eq!(msg_bytes, msg_again);

            let mut bytes = Vec::new();
            encode_coll(&payload, &mut bytes);
            let mut again = Vec::new();
            encode_coll(&decode_coll(&bytes), &mut again);
            assert_eq!(bytes, again);
        }
    }

    #[test]
    fn batches_nest_protocol_messages() {
        roundtrip(Msg::Batch(vec![
            Msg::Propose {
                conv: conv(1, 2),
                e1: Edge::new(3, 4),
            },
            Msg::EndOfStep,
            Msg::Done { conv: conv(5, 6) },
        ]));
    }

    fn sample_rank_checkpoint(rank: usize) -> RankCheckpoint {
        RankCheckpoint {
            rank,
            store_edges: vec![Edge::new(1, 2), Edge::new(3, 4), Edge::new(2, 5)],
            tracker_initial: 3,
            tracker_remaining: vec![Edge::new(3, 4).key()],
            stats: RankStats {
                performed: 7,
                performed_local: 5,
                performed_global: 2,
                performed_fastpath: 4,
                aborts_loop: 1,
                aborts_useless: 2,
                aborts_parallel: 3,
                aborts_contended: 4,
                forfeited: 0,
                proposals_served: 6,
                validations_served: 9,
                spec_committed: 1,
                spec_rolled_back: 1,
            },
            conv_seq: 42,
            rng_words: 12345,
        }
    }

    #[test]
    fn world_snapshot_roundtrips() {
        let mut tel = StepTelemetry {
            ops: 10,
            started: 11,
            performed: 9,
            packets: 3,
            boundary_ns: 1.5,
            wait_ns: 2.25,
            ..StepTelemetry::default()
        };
        tel.logical_msgs.record(&Msg::EndOfStep);
        let comm = CommStats {
            packets_sent: 5,
            bytes_sent: 400,
            packets_received: 5,
            ..CommStats::default()
        };
        let snap = WorldSnapshot {
            seed: 99,
            p: 2,
            n: 50,
            t: 1000,
            next_step: 3,
            ranks: vec![sample_rank_checkpoint(0), sample_rank_checkpoint(1)],
            comm: vec![comm, comm],
            telemetry: vec![tel.clone(), tel],
            initial_edges: vec![100, 101],
        };
        let bytes = encode_world_snapshot(&snap);
        assert_eq!(decode_world_snapshot(&bytes), snap);
        // Deterministic bytes: re-encoding the decode is identical.
        assert_eq!(encode_world_snapshot(&decode_world_snapshot(&bytes)), bytes);
    }

    #[test]
    fn seq_checkpoint_roundtrips() {
        let ckpt = SeqCheckpoint {
            seed: 17,
            n: 30,
            t: 500,
            performed: 123,
            abandoned: 0,
            rejects: RejectCounts {
                self_loop: 3,
                useless: 2,
                parallel: 8,
            },
            tracker_initial: 90,
            tracker_remaining: vec![1, 5, 9],
            graph_edges: vec![Edge::new(0, 1), Edge::new(2, 3)],
            rng_words: 777,
        };
        let bytes = encode_seq_checkpoint(&ckpt);
        assert_eq!(decode_seq_checkpoint(&bytes), ckpt);
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn snapshot_decode_rejects_garbage() {
        decode_world_snapshot(&[0u8; 32]);
    }

    #[test]
    #[should_panic(expected = "wrong kind")]
    fn snapshot_decode_rejects_kind_mismatch() {
        let ckpt = SeqCheckpoint {
            seed: 1,
            n: 2,
            t: 3,
            performed: 0,
            abandoned: 0,
            rejects: RejectCounts::default(),
            tracker_initial: 0,
            tracker_remaining: vec![],
            graph_edges: vec![],
            rng_words: 0,
        };
        decode_world_snapshot(&encode_seq_checkpoint(&ckpt));
    }
}
