//! The wire protocol of the distributed edge-switch algorithm
//! (Section 4.4, generalized — see `rank.rs` module docs).

use crate::switch::RejectReason;
use edgeswitch_graph::Edge;
use mpilite::{CollCarrier, CollPayload};

/// Conversation identifier: unique per (initiating rank, sequence).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConvId {
    /// Rank that initiated the switch operation.
    pub initiator: u32,
    /// Per-initiator sequence number.
    pub seq: u64,
}

impl std::fmt::Display for ConvId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.initiator, self.seq)
    }
}

/// One speculative reservation inside a [`Msg::BatchPropose`]: the
/// initiator already applied the switch locally and asks this owner to
/// check-and-create the listed replacement edges atomically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchReq {
    /// Conversation (identifies the speculative op in the undo log).
    pub conv: ConvId,
    /// First replacement edge owned by the receiver.
    pub first: Edge,
    /// Second replacement edge, when both replacements land on the same
    /// owner (the single-foreign-owner requirement of the speculative
    /// path; `None` when one replacement was rank-local).
    pub second: Option<Edge>,
}

/// Protocol messages. One switch operation exchanges a bounded number of
/// these (at most ~10 in the four-rank worst case). A speculative batch
/// round condenses up to `spec_batch` operations touching one partner
/// rank into a single [`Msg::BatchPropose`]/[`Msg::BatchVerdict`] pair.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Initiator → partner: "switch my edge `e1` with one of yours".
    Propose {
        /// Conversation.
        conv: ConvId,
        /// The initiator's reserved first edge.
        e1: Edge,
    },
    /// Partner → owner of a replacement edge: check `edge` can be created
    /// and reserve it as a *potential edge* if so.
    Validate {
        /// Conversation.
        conv: ConvId,
        /// Replacement edge to check-and-reserve.
        edge: Edge,
    },
    /// Validator → partner: reserved.
    ValidateOk {
        /// Conversation.
        conv: ConvId,
        /// The edge that was reserved.
        edge: Edge,
    },
    /// Validator → partner: would create a parallel edge.
    ValidateFail {
        /// Conversation.
        conv: ConvId,
        /// The offending edge.
        edge: Edge,
    },
    /// Partner → validator: abort; drop the reservation of `edge`.
    Release {
        /// Conversation.
        conv: ConvId,
        /// Previously reserved potential edge.
        edge: Edge,
    },
    /// Partner → validator: materialize the reserved potential `edge`.
    CommitAdd {
        /// Conversation.
        conv: ConvId,
        /// Edge to add to the owner's partition.
        edge: Edge,
    },
    /// Partner → initiator: remove your first edge `edge` (= `e1`).
    CommitRemove {
        /// Conversation.
        conv: ConvId,
        /// Edge to remove at its owner.
        edge: Edge,
    },
    /// Participant → partner: commit instruction applied.
    CommitAck {
        /// Conversation.
        conv: ConvId,
    },
    /// Partner → initiator: all updates applied everywhere; the operation
    /// counts as performed.
    Done {
        /// Conversation.
        conv: ConvId,
    },
    /// Partner → initiator: operation rejected; restart with a fresh
    /// sample.
    Abort {
        /// Conversation.
        conv: ConvId,
        /// Why the switch was rejected.
        reason: RejectReason,
    },
    /// Initiator → owner: validate-and-create every listed replacement
    /// edge, one entry per speculatively applied switch. All edges of one
    /// entry are checked before any is created, and each entry succeeds
    /// or fails independently of its neighbors in the batch.
    BatchPropose {
        /// Reservations to validate, in apply order.
        reqs: Vec<BatchReq>,
    },
    /// Owner → initiator: per-entry verdicts for one [`Msg::BatchPropose`],
    /// in the same order (`true` = created, commit the speculation;
    /// `false` = conflict, roll back and retry per-switch).
    BatchVerdict {
        /// `(conversation, accepted)` per request.
        verdicts: Vec<(ConvId, bool)>,
    },
    /// Curveball: edges bound for one trade's executor. At pass start
    /// every rank routes each stored edge with a traded endpoint to the
    /// lowest-indexed trade touching it; after a trade fires, its output
    /// edges whose far endpoint belongs to a later trade are forwarded
    /// the same way. Edge keys are packed ([`Edge::key`]).
    TradeLoad {
        /// Pass-local trade index the edges are bound for.
        trade: u32,
        /// Packed keys of the contributed edges.
        edges: Vec<u64>,
    },
    /// Curveball: finalized edges (no later trade touches either
    /// endpoint this pass) returning to the owner of their reduced-
    /// adjacency home, `owner(src)`, for partition-store insertion.
    TradeHome {
        /// Packed keys of the finalized edges.
        edges: Vec<u64>,
    },
    /// Curveball: initial-edge keys whose membership in a shuffled
    /// disjoint union makes them *visited*, routed to the rank whose
    /// [`crate::VisitTracker`] covers them (`owner(src)` of the key).
    TradeVisit {
        /// Packed keys of the re-dealt initial edges.
        edges: Vec<u64>,
    },
    /// Rank finished its own quota for the current step (keeps serving).
    EndOfStep,
    /// Collective payloads (step-boundary bookkeeping).
    Coll(CollPayload),
    /// Framing: several protocol messages to the same destination,
    /// coalesced into one packet by the threaded driver. Never nested;
    /// the receiving transport unpacks it before the state machine runs,
    /// so [`super::rank::RankState::handle`] never sees one.
    Batch(Vec<Msg>),
}

/// Coarse classification of [`Msg`] variants, used to bucket per-variant
/// traffic counters in [`mpilite::CommStats::logical_by_kind`] and in
/// the per-step telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MsgKind {
    /// [`Msg::Propose`].
    Propose = 0,
    /// [`Msg::Validate`].
    Validate = 1,
    /// [`Msg::ValidateOk`].
    ValidateOk = 2,
    /// [`Msg::ValidateFail`].
    ValidateFail = 3,
    /// [`Msg::Release`].
    Release = 4,
    /// [`Msg::CommitAdd`].
    CommitAdd = 5,
    /// [`Msg::CommitRemove`].
    CommitRemove = 6,
    /// [`Msg::CommitAck`].
    CommitAck = 7,
    /// [`Msg::Done`].
    Done = 8,
    /// [`Msg::Abort`].
    Abort = 9,
    /// [`Msg::EndOfStep`].
    EndOfStep = 10,
    /// [`Msg::Coll`] (collective bookkeeping traffic).
    Coll = 11,
    /// [`Msg::Batch`] (coalescing frame — carries no slot of its own in
    /// traffic accounting: the framed messages are counted by their own
    /// kinds, so this counter stays zero on every driver).
    Batch = 12,
    /// [`Msg::BatchPropose`]. Unlike the coalescing frame, this is a
    /// *logical* message: one speculative round trip per touched owner,
    /// so it counts once under its own kind however many entries it
    /// carries (it may still ride inside a [`Msg::Batch`] packet).
    BatchPropose = 13,
    /// [`Msg::BatchVerdict`].
    BatchVerdict = 14,
    /// [`Msg::TradeLoad`]. Like [`MsgKind::BatchPropose`], one logical
    /// message per coalesced send however many edge keys it carries.
    TradeLoad = 15,
    /// [`Msg::TradeHome`].
    TradeHome = 16,
    /// [`Msg::TradeVisit`].
    TradeVisit = 17,
}

impl MsgKind {
    /// Number of kinds (length of a dense per-kind counter array).
    pub const COUNT: usize = 18;

    /// All kinds, in counter-slot order.
    pub const ALL: [MsgKind; MsgKind::COUNT] = [
        MsgKind::Propose,
        MsgKind::Validate,
        MsgKind::ValidateOk,
        MsgKind::ValidateFail,
        MsgKind::Release,
        MsgKind::CommitAdd,
        MsgKind::CommitRemove,
        MsgKind::CommitAck,
        MsgKind::Done,
        MsgKind::Abort,
        MsgKind::EndOfStep,
        MsgKind::Coll,
        MsgKind::Batch,
        MsgKind::BatchPropose,
        MsgKind::BatchVerdict,
        MsgKind::TradeLoad,
        MsgKind::TradeHome,
        MsgKind::TradeVisit,
    ];

    /// Classify a message.
    pub fn of(msg: &Msg) -> MsgKind {
        match msg {
            Msg::Propose { .. } => MsgKind::Propose,
            Msg::Validate { .. } => MsgKind::Validate,
            Msg::ValidateOk { .. } => MsgKind::ValidateOk,
            Msg::ValidateFail { .. } => MsgKind::ValidateFail,
            Msg::Release { .. } => MsgKind::Release,
            Msg::CommitAdd { .. } => MsgKind::CommitAdd,
            Msg::CommitRemove { .. } => MsgKind::CommitRemove,
            Msg::CommitAck { .. } => MsgKind::CommitAck,
            Msg::Done { .. } => MsgKind::Done,
            Msg::Abort { .. } => MsgKind::Abort,
            Msg::BatchPropose { .. } => MsgKind::BatchPropose,
            Msg::BatchVerdict { .. } => MsgKind::BatchVerdict,
            Msg::TradeLoad { .. } => MsgKind::TradeLoad,
            Msg::TradeHome { .. } => MsgKind::TradeHome,
            Msg::TradeVisit { .. } => MsgKind::TradeVisit,
            Msg::EndOfStep => MsgKind::EndOfStep,
            Msg::Coll(_) => MsgKind::Coll,
            Msg::Batch(_) => MsgKind::Batch,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MsgKind::Propose => "propose",
            MsgKind::Validate => "validate",
            MsgKind::ValidateOk => "validate-ok",
            MsgKind::ValidateFail => "validate-fail",
            MsgKind::Release => "release",
            MsgKind::CommitAdd => "commit-add",
            MsgKind::CommitRemove => "commit-remove",
            MsgKind::CommitAck => "commit-ack",
            MsgKind::Done => "done",
            MsgKind::Abort => "abort",
            MsgKind::EndOfStep => "end-of-step",
            MsgKind::Coll => "coll",
            MsgKind::Batch => "batch",
            MsgKind::BatchPropose => "batch-propose",
            MsgKind::BatchVerdict => "batch-verdict",
            MsgKind::TradeLoad => "trade-load",
            MsgKind::TradeHome => "trade-home",
            MsgKind::TradeVisit => "trade-visit",
        }
    }
}

impl CollCarrier for Msg {
    fn from_coll(p: CollPayload) -> Self {
        Msg::Coll(p)
    }
    fn into_coll(self) -> Option<CollPayload> {
        match self {
            Msg::Coll(p) => Some(p),
            _ => None,
        }
    }
    fn wire_size(&self) -> usize {
        match self {
            Msg::Coll(p) => p.wire_size(),
            // conv (12) + edge (16) is the dominant layout.
            Msg::Propose { .. }
            | Msg::Validate { .. }
            | Msg::ValidateOk { .. }
            | Msg::ValidateFail { .. }
            | Msg::Release { .. }
            | Msg::CommitAdd { .. }
            | Msg::CommitRemove { .. } => 28,
            Msg::CommitAck { .. } | Msg::Done { .. } | Msg::Abort { .. } => 13,
            // Length prefix plus per entry: conv (12) + first edge (16) +
            // presence flag (1) + optional second edge (16).
            Msg::BatchPropose { reqs } => {
                4 + reqs
                    .iter()
                    .map(|r| 29 + if r.second.is_some() { 16 } else { 0 })
                    .sum::<usize>()
            }
            // Length prefix plus conv (12) + verdict flag (1) per entry.
            Msg::BatchVerdict { verdicts } => 4 + 13 * verdicts.len(),
            // Trade index (4) + length prefix (4) + packed key (8) each.
            Msg::TradeLoad { edges, .. } => 8 + 8 * edges.len(),
            // Length prefix (4) + packed key (8) each.
            Msg::TradeHome { edges } | Msg::TradeVisit { edges } => 4 + 8 * edges.len(),
            Msg::EndOfStep => 1,
            // Length prefix plus the framed messages.
            Msg::Batch(msgs) => 4 + msgs.iter().map(|m| m.wire_size()).sum::<usize>(),
        }
    }
    fn kind_index(&self) -> usize {
        MsgKind::of(self) as usize
    }
    fn record_kinds(&self, slots: &mut [u64]) {
        match self {
            // The frame is transparent to traffic accounting: each framed
            // message counts under its own kind, the wrapper under none —
            // so per-kind counts stay driver-independent.
            Msg::Batch(msgs) => {
                for m in msgs {
                    m.record_kinds(slots);
                }
            }
            m => slots[m.kind_index().min(slots.len() - 1)] += 1,
        }
    }
}

/// Messages queued by the state machine for the driver to route
/// (self-addressed messages are delivered in place by the driver).
#[derive(Debug, Default)]
pub struct Outbox {
    queue: std::collections::VecDeque<(usize, Msg)>,
}

impl Outbox {
    /// Empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue `msg` for delivery to rank `dst`.
    pub fn push(&mut self, dst: usize, msg: Msg) {
        self.queue.push_back((dst, msg));
    }

    /// Next message to route, FIFO.
    pub fn pop(&mut self) -> Option<(usize, Msg)> {
        self.queue.pop_front()
    }

    /// Whether anything is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_round_trip() {
        let m = Msg::from_coll(CollPayload::U64(5));
        assert_eq!(m.clone().into_coll(), Some(CollPayload::U64(5)));
        let p = Msg::Propose {
            conv: ConvId {
                initiator: 0,
                seq: 1,
            },
            e1: Edge::new(1, 2),
        };
        assert_eq!(p.into_coll(), None);
    }

    #[test]
    fn outbox_is_fifo() {
        let mut o = Outbox::new();
        o.push(1, Msg::EndOfStep);
        o.push(2, Msg::EndOfStep);
        assert_eq!(o.len(), 2);
        assert_eq!(o.pop().unwrap().0, 1);
        assert_eq!(o.pop().unwrap().0, 2);
        assert!(o.pop().is_none());
        assert!(o.is_empty());
    }

    #[test]
    fn conv_id_display() {
        let c = ConvId {
            initiator: 3,
            seq: 17,
        };
        assert_eq!(c.to_string(), "3#17");
    }

    #[test]
    fn batch_framing_is_transparent_to_kind_counters() {
        let conv = ConvId {
            initiator: 0,
            seq: 1,
        };
        let inner = vec![
            Msg::Propose {
                conv,
                e1: Edge::new(1, 2),
            },
            Msg::CommitAck { conv },
            Msg::CommitAck { conv },
        ];
        let framed_size: usize = inner.iter().map(|m| m.wire_size()).sum();
        let batch = Msg::Batch(inner);
        assert_eq!(batch.wire_size(), 4 + framed_size);
        let mut slots = [0u64; MsgKind::COUNT];
        batch.record_kinds(&mut slots);
        assert_eq!(slots[MsgKind::Propose as usize], 1);
        assert_eq!(slots[MsgKind::CommitAck as usize], 2);
        assert_eq!(slots[MsgKind::Batch as usize], 0);
        assert_eq!(slots.iter().sum::<u64>(), 3);
    }

    #[test]
    fn batch_propose_counts_once_per_round_trip() {
        let conv = |seq| ConvId { initiator: 2, seq };
        let propose = Msg::BatchPropose {
            reqs: vec![
                BatchReq {
                    conv: conv(1),
                    first: Edge::new(1, 2),
                    second: Some(Edge::new(3, 4)),
                },
                BatchReq {
                    conv: conv(2),
                    first: Edge::new(5, 6),
                    second: None,
                },
            ],
        };
        // One logical message per round trip, however many entries.
        let mut slots = [0u64; MsgKind::COUNT];
        propose.record_kinds(&mut slots);
        assert_eq!(slots[MsgKind::BatchPropose as usize], 1);
        assert_eq!(slots.iter().sum::<u64>(), 1);
        // Wire size grows per entry: 29 with one edge, 45 with two.
        assert_eq!(propose.wire_size(), 4 + 45 + 29);

        let verdict = Msg::BatchVerdict {
            verdicts: vec![(conv(1), true), (conv(2), false)],
        };
        assert_eq!(verdict.wire_size(), 4 + 26);
        let mut slots = [0u64; MsgKind::COUNT];
        // Riding inside a coalescing frame stays transparent: the frame
        // contributes nothing, the batch messages their own kind once.
        Msg::Batch(vec![propose, verdict]).record_kinds(&mut slots);
        assert_eq!(slots[MsgKind::BatchPropose as usize], 1);
        assert_eq!(slots[MsgKind::BatchVerdict as usize], 1);
        assert_eq!(slots[MsgKind::Batch as usize], 0);
    }

    #[test]
    fn trade_messages_count_once_per_coalesced_send() {
        let load = Msg::TradeLoad {
            trade: 7,
            edges: vec![Edge::new(1, 2).key(), Edge::new(3, 4).key()],
        };
        assert_eq!(load.wire_size(), 8 + 16);
        let home = Msg::TradeHome {
            edges: vec![Edge::new(1, 2).key()],
        };
        let visit = Msg::TradeVisit { edges: vec![] };
        assert_eq!(home.wire_size(), 4 + 8);
        assert_eq!(visit.wire_size(), 4);
        let mut slots = [0u64; MsgKind::COUNT];
        Msg::Batch(vec![load, home, visit]).record_kinds(&mut slots);
        assert_eq!(slots[MsgKind::TradeLoad as usize], 1);
        assert_eq!(slots[MsgKind::TradeHome as usize], 1);
        assert_eq!(slots[MsgKind::TradeVisit as usize], 1);
        assert_eq!(slots.iter().sum::<u64>(), 3);
    }

    #[test]
    fn kind_slots_are_dense_and_distinct() {
        for (slot, kind) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, slot);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(MsgKind::ALL.len(), MsgKind::COUNT);
        const { assert!(MsgKind::COUNT <= mpilite::KIND_SLOTS) };
        let m = Msg::Propose {
            conv: ConvId {
                initiator: 0,
                seq: 1,
            },
            e1: Edge::new(1, 2),
        };
        assert_eq!(m.kind_index(), MsgKind::Propose as usize);
        assert_eq!(Msg::EndOfStep.kind_index(), MsgKind::EndOfStep as usize);
    }
}
