//! Parallel global Curveball trades over the shared driver machinery.
//!
//! A pass is a random perfect matching computed identically on every
//! rank from `(seed, pass)` with zero communication (see
//! [`crate::trade`]). Trade `k = (u, v)` executes on the rank that owns
//! `u` (the pair's smaller endpoint). The protocol is a counting-based
//! forwarding scheme:
//!
//! 1. **Load routing.** At pass start each rank withdraws every owned
//!    edge with a matched endpoint from its store and routes it — as a
//!    coalesced [`Msg::TradeLoad`] per `(rank, trade)` — to the trade
//!    with the *smallest* index among its endpoints' trades.
//! 2. **Firing.** Trade `k` knows exactly how many edges must arrive:
//!    `deg(u) + deg(v) - [{u,v} ∈ E]`, where the degrees are the static
//!    full degrees (trades preserve every degree) and the partner-edge
//!    correction is locally checkable at pass start (the reduced edge
//!    `{u,v}` lives on `owner(u)`, which is the executor; no trade `j ≠
//!    k` can create or destroy `{u,v}` because a perfect matching gives
//!    `u` and `v` to no other trade). When the count is reached, the
//!    trade splits the arrivals into the two sorted neighbor lists,
//!    re-deals the disjoint union with the per-trade RNG and emits its
//!    outputs.
//! 3. **Forward or settle.** Each output edge whose far endpoint sits
//!    in a *later* trade is forwarded there ([`Msg::TradeLoad`]);
//!    everything else goes home to the owner of its smaller endpoint
//!    ([`Msg::TradeHome`]). Re-dealt initial edges are reported to the
//!    tracker that owns them ([`Msg::TradeVisit`]).
//!
//! An edge incident to two matched vertices therefore flows through the
//! lower-indexed trade first and the higher-indexed one second — the
//! arrival *set* at trade `k` is exactly the sequential engine's
//! neighborhood state after trades `0..k`, so the parallel run is
//! **bit-identical** to [`crate::sequential_curveball`] under the same
//! seed at any `p`. Dependencies point strictly from lower to higher
//! trade indices, so the pass is deadlock-free by induction: trade `0`'s
//! loads all arrive at pass start, and trade `k` waits only on trades
//! that fire before it.

use super::harness::{
    assemble_outcome, ParallelOutcome, RankOutput, RankTransport, RunMeta, StepTelemetry,
    WorldTransport,
};
use super::msg::{Msg, Outbox};
use super::rank::RankStats;
use crate::config::{Backend, ParallelConfig};
use crate::obs::{Clock, MonoClock, Obs, Phase};
use crate::trade::{
    redeal, split_sorted, trade_rng, PassController, PassPlan, TradeBudget, NO_TRADE,
};
use crate::visit::VisitTracker;
use edgeswitch_graph::hashing::FxHashMap;
use edgeswitch_graph::store::build_stores;
use edgeswitch_graph::{Edge, Graph, PartitionStore, Partitioner, VertexId};
use mpilite::{run_world, CollCarrier, Comm, CommStats, WorldConfig};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One pending trade on its executor rank.
#[derive(Debug)]
struct TradeSlot {
    u: VertexId,
    v: VertexId,
    /// Exact arrival count: `deg(u) + deg(v) - partner`.
    expected: usize,
    /// Whether the partner edge `{u, v}` existed at pass start.
    partner: bool,
    /// Edge keys received so far.
    arrived: Vec<u64>,
}

/// One rank's Curveball state: the partition store plus the pass's
/// pending trades.
struct TradeRankState {
    rank: usize,
    part: Partitioner,
    /// Static full degrees of every vertex (trades preserve them).
    degrees: Arc<Vec<u32>>,
    seed: u64,
    store: PartitionStore,
    tracker: VisitTracker,
    stats: RankStats,
    obs: Obs,
    /// Pending trades by trade index (Fx-hashed: iteration depends only
    /// on contents, keeping message emission deterministic per seed).
    slots: FxHashMap<u32, TradeSlot>,
    /// Slots not yet fired this pass.
    unfired: usize,
}

impl TradeRankState {
    fn new(
        rank: usize,
        part: Partitioner,
        degrees: Arc<Vec<u32>>,
        store: PartitionStore,
        seed: u64,
    ) -> Self {
        let tracker = VisitTracker::new(store.edges());
        TradeRankState {
            rank,
            part,
            degrees,
            seed,
            store,
            tracker,
            stats: RankStats::default(),
            obs: Obs::noop(),
            slots: FxHashMap::default(),
            unfired: 0,
        }
    }

    fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn into_parts(
        self,
    ) -> (
        PartitionStore,
        VisitTracker,
        RankStats,
        Option<crate::obs::RankObs>,
    ) {
        (self.store, self.tracker, self.stats, self.obs.finish())
    }

    /// The rank executing trade `k` of `plan`.
    fn executor(&self, plan: &PassPlan, k: u32) -> usize {
        self.part.owner(plan.pairs[k as usize].0)
    }

    /// Open this rank's trade slots and route every owned edge with a
    /// matched endpoint to its first trade. Trades expecting zero
    /// arrivals (two isolated vertices) fire immediately.
    fn begin_pass(&mut self, plan: &PassPlan, out: &mut Outbox, tel: &mut StepTelemetry) {
        debug_assert!(self.slots.is_empty() && self.unfired == 0);
        for (k, &(u, v)) in plan.pairs.iter().enumerate() {
            if self.part.owner(u) != self.rank {
                continue;
            }
            // The partner edge {u,v} is reduced onto owner(u) — this
            // rank — and no other trade of the matching can create or
            // destroy it, so the correction is exact for the whole pass.
            let partner = self.store.contains(Edge::new(u, v));
            let expected = self.degrees[u as usize] as usize + self.degrees[v as usize] as usize
                - partner as usize;
            self.slots.insert(
                k as u32,
                TradeSlot {
                    u,
                    v,
                    expected,
                    partner,
                    arrived: Vec::with_capacity(expected),
                },
            );
            self.unfired += 1;
        }
        // Withdraw and route the pass's traveling edges, coalesced per
        // (destination, trade) in deterministic key order.
        let traveling: Vec<Edge> = self
            .store
            .edges()
            .filter(|e| plan.trade_of(e.src()) != NO_TRADE || plan.trade_of(e.dst()) != NO_TRADE)
            .collect();
        let mut loads: BTreeMap<(usize, u32), Vec<u64>> = BTreeMap::new();
        for e in traveling {
            let removed = self.store.remove(e);
            debug_assert!(removed);
            // NO_TRADE is u32::MAX, so the min picks the matched side.
            let k = plan.trade_of(e.src()).min(plan.trade_of(e.dst()));
            loads
                .entry((self.executor(plan, k), k))
                .or_default()
                .push(e.key());
        }
        for ((dst, k), edges) in loads {
            out.push(dst, Msg::TradeLoad { trade: k, edges });
        }
        let mut ready: Vec<u32> = self
            .slots
            .iter()
            .filter(|(_, s)| s.expected == 0)
            .map(|(&k, _)| k)
            .collect();
        ready.sort_unstable();
        for k in ready {
            self.fire(plan, k, out, tel);
        }
    }

    /// Handle one protocol message of the current pass.
    fn handle(&mut self, plan: &PassPlan, msg: Msg, out: &mut Outbox, tel: &mut StepTelemetry) {
        match msg {
            Msg::TradeLoad { trade, edges } => {
                let slot = self
                    .slots
                    .get_mut(&trade)
                    .expect("trade loads only target open slots on the executor");
                slot.arrived.extend_from_slice(&edges);
                debug_assert!(slot.arrived.len() <= slot.expected);
                if slot.arrived.len() == slot.expected {
                    self.fire(plan, trade, out, tel);
                }
            }
            Msg::TradeHome { edges } => {
                for key in edges {
                    let inserted = self.store.insert(Edge::from_key(key));
                    debug_assert!(inserted, "settled trade edges are simple and disjoint");
                }
            }
            Msg::TradeVisit { edges } => {
                for key in edges {
                    self.tracker.record_removal(Edge::from_key(key));
                }
            }
            other => unreachable!("switch-protocol message {other:?} during a trade pass"),
        }
    }

    /// Execute trade `k`: split the arrivals, re-deal the disjoint
    /// union, report visits and forward or settle every output edge.
    fn fire(&mut self, plan: &PassPlan, k: u32, out: &mut Outbox, tel: &mut StepTelemetry) {
        let slot = self.slots.remove(&k).expect("firing an open slot");
        self.unfired -= 1;
        let (u, v) = (slot.u, slot.v);
        let partner_key = Edge::new(u, v).key();
        let shuffle_start = self.obs.now();
        let mut a: Vec<VertexId> = Vec::new();
        let mut b: Vec<VertexId> = Vec::new();
        for &key in &slot.arrived {
            if slot.partner && key == partner_key {
                continue;
            }
            let e = Edge::from_key(key);
            if e.touches(u) {
                a.push(e.other(u));
            } else {
                b.push(e.other(v));
            }
        }
        debug_assert_eq!(
            a.len(),
            self.degrees[u as usize] as usize - slot.partner as usize
        );
        debug_assert_eq!(
            b.len(),
            self.degrees[v as usize] as usize - slot.partner as usize
        );
        // Arrival order is delivery-dependent; the sorted lists (and the
        // length-only RNG consumption of the re-deal) are not — this is
        // what makes every driver bit-identical to the sequential engine.
        a.sort_unstable();
        b.sort_unstable();
        let split = split_sorted(&a, &b);
        let mut rng = trade_rng(self.seed, plan.pass, k);
        let (new_a, new_b) = redeal(&split.only_a, &split.only_b, &mut rng);
        self.obs.span_since(Phase::TradeShuffle, shuffle_start);
        self.stats.performed += 1;
        tel.trades += 1;
        tel.neighbors_moved += (split.only_a.len() + split.only_b.len()) as u64;

        // Re-dealt initial edges count as visited; tell their trackers.
        let mut visits: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for &x in &split.only_a {
            let e = Edge::new(u, x);
            visits
                .entry(self.part.owner(e.src()))
                .or_default()
                .push(e.key());
        }
        for &y in &split.only_b {
            let e = Edge::new(v, y);
            visits
                .entry(self.part.owner(e.src()))
                .or_default()
                .push(e.key());
        }

        // Outputs, in deterministic order: the partner edge, the common
        // edges of both endpoints, then the re-dealt assignments.
        let mut loads: BTreeMap<(usize, u32), Vec<u64>> = BTreeMap::new();
        let mut homes: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        {
            let mut route_output = |near: VertexId, far: VertexId| {
                let e = Edge::new(near, far);
                let j = plan.trade_of(far);
                if j != NO_TRADE && j > k {
                    // The far endpoint trades later this pass; its trade
                    // needs this edge before it can fire.
                    loads
                        .entry((self.executor(plan, j), j))
                        .or_default()
                        .push(e.key());
                } else {
                    // Unmatched far endpoint, or its trade already fired
                    // (an arrival from trade j < k proves j has fired).
                    homes
                        .entry(self.part.owner(e.src()))
                        .or_default()
                        .push(e.key());
                }
            };
            if slot.partner {
                route_output(u, v);
            }
            for &x in &split.common {
                route_output(u, x);
                route_output(v, x);
            }
            for &z in &new_a {
                route_output(u, z);
            }
            for &z in &new_b {
                route_output(v, z);
            }
        }
        for ((dst, j), edges) in loads {
            out.push(dst, Msg::TradeLoad { trade: j, edges });
        }
        for (dst, edges) in homes {
            out.push(dst, Msg::TradeHome { edges });
        }
        for (dst, edges) in visits {
            out.push(dst, Msg::TradeVisit { edges });
        }
    }
}

// ---------------------------------------------------------------------
// World driver (FIFO simulator, DES)
// ---------------------------------------------------------------------

/// Run Curveball passes over a single-process world transport — the
/// driver body shared by the FIFO simulator and the DES (mirror of
/// [`super::harness::run_simulated_world`]).
pub fn run_simulated_trades<T: WorldTransport>(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
    part: &Partitioner,
    transport: &mut T,
) -> ParallelOutcome {
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let initial_total: u64 = initial_edges.iter().sum();
    let n = graph.num_vertices();
    let degrees = Arc::new(degree_table(graph));

    let clock: Option<Arc<dyn Clock>> = if config.obs.enabled() {
        Some(
            transport
                .obs_clock()
                .unwrap_or_else(|| Arc::new(MonoClock::new())),
        )
    } else {
        None
    };
    let mut states: Vec<TradeRankState> = stores
        .into_iter()
        .enumerate()
        .map(|(rank, store)| {
            let state =
                TradeRankState::new(rank, part.clone(), degrees.clone(), store, config.seed);
            match &clock {
                Some(clock) => state.with_obs(config.obs.build(clock.clone())),
                None => state,
            }
        })
        .collect();
    let mut comm_stats = vec![CommStats::default(); p];
    let run_start = clock.as_ref().map_or(0, |c| c.now_ns());

    let mut ctl = PassController::new(budget);
    let mut telemetry = Vec::new();
    let mut out = Outbox::new();
    loop {
        let visited: u64 = states
            .iter()
            .map(|st| st.tracker.visited_count() as u64)
            .sum();
        if !ctl.should_continue(n, initial_total, visited) {
            break;
        }
        let plan = PassPlan::build(n, config.seed, ctl.pass);
        if plan.pairs.is_empty() {
            break;
        }
        transport.begin_step(plan.pairs.len() as u64, p);
        let barrier_start = states.first_mut().map_or(0, |st| st.obs.now());
        let barrier_end = states.first_mut().map_or(0, |st| st.obs.now());
        let mut tel = StepTelemetry {
            ops: plan.pairs.len() as u64,
            ..StepTelemetry::default()
        };
        for i in 0..p {
            states[i].begin_pass(&plan, &mut out, &mut tel);
            route_trade_world(
                transport,
                &mut states,
                &plan,
                i,
                &mut out,
                &mut comm_stats,
                &mut tel,
            );
        }
        while let Some((dst, src, msg)) = transport.pop_any() {
            let _ = src;
            states[dst].handle(&plan, msg, &mut out, &mut tel);
            route_trade_world(
                transport,
                &mut states,
                &plan,
                dst,
                &mut out,
                &mut comm_stats,
                &mut tel,
            );
        }
        assert!(
            states.iter().all(|st| st.unfired == 0),
            "trade pass wedged: queue drained with unfired trades"
        );
        let (boundary_ns, drain_ns) = transport.end_step();
        tel.boundary_ns = boundary_ns;
        tel.drain_ns = drain_ns;
        let des_owned = match states.first_mut() {
            Some(st) => transport.record_step_spans(&mut st.obs, &mut tel),
            None => true,
        };
        if !des_owned {
            if let Some(st) = states.first_mut() {
                let barrier_ns = barrier_end.saturating_sub(barrier_start);
                st.obs.span(Phase::StepBarrier, barrier_ns);
                tel.barrier_ns = barrier_ns as f64;
            }
        }
        telemetry.push(tel);
        ctl.finish_pass(plan.pairs.len() as u64);
    }

    let meta = clock.as_ref().map(|c| RunMeta {
        clock: c.label(),
        wall_ns: c.now_ns().saturating_sub(run_start),
    });
    let outputs: Vec<RankOutput> = states
        .into_iter()
        .zip(comm_stats)
        .map(|(state, comm)| {
            let (store, tracker, stats, obs) = state.into_parts();
            RankOutput {
                store,
                tracker,
                stats,
                comm,
                obs,
            }
        })
        .collect();
    assemble_outcome(n, ctl.pass, initial_edges, outputs, telemetry, meta)
}

/// Route one rank's trade outbox through a world transport (mirror of
/// the switch protocol's `route_world`, including its traffic
/// accounting).
fn route_trade_world<T: WorldTransport>(
    transport: &mut T,
    states: &mut [TradeRankState],
    plan: &PassPlan,
    src: usize,
    out: &mut Outbox,
    comm_stats: &mut [CommStats],
    tel: &mut StepTelemetry,
) {
    while let Some((dst, msg)) = out.pop() {
        if dst == src {
            transport.on_self_delivery(src);
            states[src].handle(plan, msg, out, tel);
        } else {
            comm_stats[src].packets_sent += 1;
            comm_stats[src].bytes_sent += msg.wire_size() as u64;
            msg.record_kinds(&mut comm_stats[src].logical_by_kind);
            comm_stats[dst].packets_received += 1;
            tel.logical_msgs.record(&msg);
            tel.packets += 1;
            transport.deliver(src, dst, msg);
        }
    }
}

/// Full degree of every vertex, the static arrival-count table.
fn degree_table(graph: &Graph) -> Vec<u32> {
    (0..graph.num_vertices())
        .map(|v| graph.degree(v as VertexId) as u32)
        .collect()
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Curveball trades on `p` deterministically simulated FIFO ranks —
/// bit-identical to [`crate::sequential_curveball`] at any `p`.
pub fn simulate_curveball(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
) -> ParallelOutcome {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    simulate_curveball_with(graph, budget, config, &part)
}

/// [`simulate_curveball`] with an explicit partitioner.
pub fn simulate_curveball_with(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    let mut transport = super::harness::FifoTransport::new();
    run_simulated_trades(graph, budget, config, part, &mut transport)
}

/// Curveball trades on `p` threaded ranks (mirror of
/// [`super::engine::parallel_edge_switch`]).
pub fn parallel_curveball(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
) -> ParallelOutcome {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    parallel_curveball_with(graph, budget, config, &part)
}

/// [`parallel_curveball`] with an explicit partitioner.
pub fn parallel_curveball_with(
    graph: &Graph,
    budget: TradeBudget,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    assert!(
        config.backend != Backend::Process,
        "the process backend supports the switch randomizer only; \
         run Curveball on Backend::Threaded or the simulators"
    );
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();
    let degrees = Arc::new(degree_table(graph));

    let slots: Vec<Mutex<Option<PartitionStore>>> =
        stores.into_iter().map(|st| Mutex::new(Some(st))).collect();
    let seed = config.seed;
    let part_ref = &part;
    let slots_ref = &slots;
    let degrees_ref = &degrees;

    let clock: Option<Arc<dyn Clock>> = if config.obs.enabled() {
        Some(Arc::new(MonoClock::new()))
    } else {
        None
    };
    let obs_spec = config.obs;
    let clock_ref = &clock;
    let run_start = clock.as_ref().map_or(0, |c| c.now_ns());

    let world_config = WorldConfig {
        spin_relax: config.spin_relax,
        spin_total: config.spin_total,
        ..WorldConfig::default()
    };
    let results: Vec<(RankOutput, Vec<StepTelemetry>)> =
        run_world(p, world_config, move |comm: &mut Comm<Msg>| {
            let store = slots_ref[comm.rank()]
                .lock()
                .take()
                .expect("store taken once per rank");
            let mut state = TradeRankState::new(
                comm.rank(),
                (*part_ref).clone(),
                degrees_ref.clone(),
                store,
                seed,
            );
            if let Some(clock) = clock_ref {
                state = state.with_obs(obs_spec.build(clock.clone()));
            }
            let telemetry = {
                let mut transport = super::harness::MpiliteTransport::new(comm);
                run_trade_rank(&mut transport, &mut state, budget, n)
            };
            let comm_stats = comm.stats();
            let (store, tracker, stats, obs) = state.into_parts();
            (
                RankOutput {
                    store,
                    tracker,
                    stats,
                    comm: comm_stats,
                    obs,
                },
                telemetry,
            )
        });

    let meta = clock.as_ref().map(|c| RunMeta {
        clock: c.label(),
        wall_ns: c.now_ns().saturating_sub(run_start),
    });
    let steps = results.first().map_or(0, |(_, t)| t.len());
    let mut telemetry = vec![StepTelemetry::default(); steps];
    let mut outputs = Vec::with_capacity(p);
    for (output, rank_telemetry) in results {
        debug_assert_eq!(rank_telemetry.len(), steps, "ranks agree on pass count");
        for (acc, step) in telemetry.iter_mut().zip(&rank_telemetry) {
            acc.merge(step);
        }
        outputs.push(output);
    }
    assemble_outcome(n, steps as u64, initial_edges, outputs, telemetry, meta)
}

/// One rank's whole Curveball run: allgather the visited counts at each
/// pass boundary (every rank reaches the identical continue/stop
/// decision), then run the pass's event loop until every rank signals
/// `EndOfStep`.
fn run_trade_rank<T: RankTransport>(
    transport: &mut T,
    state: &mut TradeRankState,
    budget: TradeBudget,
    n: usize,
) -> Vec<StepTelemetry> {
    let initial_total: u64 = transport
        .exchange_edge_counts(state.tracker.initial_count() as u64)
        .iter()
        .sum();
    let mut ctl = PassController::new(budget);
    let mut telemetry = Vec::new();
    loop {
        // The allgather doubles as the inter-pass barrier: per-pair FIFO
        // order means every peer's pass traffic (its EndOfStep was its
        // last send) has drained before its count arrives here.
        let barrier_start = state.obs.now();
        let visited: u64 = transport
            .exchange_edge_counts(state.tracker.visited_count() as u64)
            .iter()
            .sum();
        state.obs.span_since(Phase::StepBarrier, barrier_start);
        if !ctl.should_continue(n, initial_total, visited) {
            break;
        }
        let plan = PassPlan::build(n, state.seed, ctl.pass);
        if plan.pairs.is_empty() {
            break;
        }
        telemetry.push(run_trade_pass(transport, state, &plan));
        ctl.finish_pass(plan.pairs.len() as u64);
    }
    telemetry
}

/// One pass of the rank event loop (mirror of
/// [`super::harness::run_rank_step`] without quotas or windows: trades
/// fire purely on arrival counts).
fn run_trade_pass<T: RankTransport>(
    transport: &mut T,
    state: &mut TradeRankState,
    plan: &PassPlan,
) -> StepTelemetry {
    let p = transport.size();
    let mut tel = StepTelemetry::default();
    let mut out = Outbox::new();
    state.begin_pass(plan, &mut out, &mut tel);
    tel.ops = state.slots.len() as u64 + tel.trades; // owned trades (fired + pending)
    drain_trade_outbox(transport, state, plan, &mut out, &mut tel);

    let mut eos = 0usize;
    let mut signaled = false;
    let mut wait_ns_acc = 0u64;
    loop {
        while let Some((_src, msg)) = transport.try_recv() {
            dispatch_trade(transport, state, plan, msg, &mut out, &mut eos, &mut tel);
        }
        if !signaled && state.unfired == 0 {
            for dst in 0..p {
                if dst != transport.rank() {
                    tel.logical_msgs.record(&Msg::EndOfStep);
                    tel.packets += 1;
                    transport.send(dst, Msg::EndOfStep);
                }
            }
            eos += 1; // count self
            signaled = true;
        }
        if signaled && eos == p {
            break;
        }
        let wait_start = state.obs.now();
        let (_src, msg) = transport.recv_block();
        let waited = state.obs.now().saturating_sub(wait_start);
        state.obs.span(Phase::MsgWait, waited);
        wait_ns_acc += waited;
        dispatch_trade(transport, state, plan, msg, &mut out, &mut eos, &mut tel);
    }
    tel.wait_ns = wait_ns_acc as f64;
    tel
}

/// Handle one incoming message of the pass.
fn dispatch_trade<T: RankTransport>(
    transport: &mut T,
    state: &mut TradeRankState,
    plan: &PassPlan,
    msg: Msg,
    out: &mut Outbox,
    eos: &mut usize,
    tel: &mut StepTelemetry,
) {
    match msg {
        Msg::EndOfStep => *eos += 1,
        m => {
            state.handle(plan, m, out, tel);
            drain_trade_outbox(transport, state, plan, out, tel);
        }
    }
}

/// Send queued messages: self-addressed ones re-enter the state machine
/// in place; the rest go out one packet per message (they are already
/// coalesced per `(destination, trade)` at the firing sites, so the
/// packet and logical counts agree with the simulators').
fn drain_trade_outbox<T: RankTransport>(
    transport: &mut T,
    state: &mut TradeRankState,
    plan: &PassPlan,
    out: &mut Outbox,
    tel: &mut StepTelemetry,
) {
    while let Some((dst, msg)) = out.pop() {
        if dst == transport.rank() {
            transport.on_self_delivery(dst);
            state.handle(plan, msg, out, tel);
        } else {
            tel.logical_msgs.record(&msg);
            tel.packets += 1;
            transport.send(dst, msg);
        }
    }
}
