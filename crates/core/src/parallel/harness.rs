//! Shared step machinery of the three protocol drivers.
//!
//! Every driver — the threaded engine over `mpilite`, the deterministic
//! FIFO simulator, and the virtual-time DES in `edgeswitch-scalesim` —
//! executes the same per-step protocol of Section 4.5: exchange the
//! live edge counts `|E_i|`, refresh the probability vector `q`, draw
//! per-rank operation quotas with the parallel multinomial algorithm
//! (Algorithm 5), then run conversations until the step quiesces. This
//! module factors that machinery out of the drivers:
//!
//! - [`Transport`] abstracts message delivery and exposes cost hooks
//!   (no-ops everywhere except the DES, which charges virtual time);
//! - [`WorldTransport`] is the single-process form driving all `p`
//!   [`RankState`] machines from one loop (FIFO simulator, DES);
//! - [`RankTransport`] is the per-rank form where each state machine
//!   runs on its own thread with real collectives (threaded engine);
//! - [`StepHarness`] owns step sizing, the `q` refresh and the quota
//!   draw, so no driver carries its own copy;
//! - [`StepTelemetry`] is recorded per step by every driver and
//!   surfaced on [`ParallelOutcome`].

use super::msg::{Msg, MsgKind, Outbox};
use super::rank::{RankState, RankStats, StartResult};
use crate::config::{ParallelConfig, QuotaPolicy};
use crate::obs::{Clock, CommGauges, MonoClock, Obs, Phase, RankObs, RunReport};
use crate::visit::VisitTracker;
use edgeswitch_dist::BlockRng64;
use edgeswitch_graph::store::{assemble_graph, build_stores};
use edgeswitch_graph::{Graph, PartitionStore, Partitioner};
use mpilite::{CollCarrier, Comm, CommStats};
use std::collections::VecDeque;
use std::sync::Arc;

/// Tag for protocol messages (collectives use the reserved namespace).
pub(crate) const TAG_PROTO: u32 = 1;

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

/// Dense per-[`MsgKind`] message counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    counts: [u64; MsgKind::COUNT],
}

impl MsgCounts {
    /// Count one message.
    pub fn record(&mut self, msg: &Msg) {
        self.counts[MsgKind::of(msg) as usize] += 1;
    }

    /// Count for one kind.
    pub fn get(&self, kind: MsgKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total messages across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &MsgCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// `(kind, count)` pairs in slot order, for reports.
    pub fn iter(&self) -> impl Iterator<Item = (MsgKind, u64)> + '_ {
        MsgKind::ALL
            .iter()
            .map(move |&k| (k, self.counts[k as usize]))
    }

    /// Raw counter slots in [`MsgKind`] order, for serializing telemetry
    /// across the process transport.
    pub fn slots(&self) -> &[u64; MsgKind::COUNT] {
        &self.counts
    }

    /// Rebuild from raw slots produced by [`MsgCounts::slots`].
    pub fn from_slots(counts: [u64; MsgKind::COUNT]) -> Self {
        MsgCounts { counts }
    }
}

/// What happened during one step, aggregated over all ranks.
///
/// Drivers record one of these per step; the threaded engine records one
/// per rank per step and merges them, so the fields below are always
/// whole-world totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepTelemetry {
    /// Operations assigned this step (the summed quota).
    pub ops: u64,
    /// Switch operations initiated (`try_start` → `Started`).
    pub started: u64,
    /// Operations completed as initiator this step.
    pub performed: u64,
    /// Subset of `performed` applied inline by the rank-local fast path
    /// (no conversation entry, no protocol messages); the remaining
    /// `performed - local_fastpath` switches went through the
    /// conversation protocol. Zero when the fast path is disabled.
    pub local_fastpath: u64,
    /// Operations forfeited this step (degenerate graphs only).
    pub forfeited: u64,
    /// Conversations served for other ranks (proposals + validations).
    pub served: u64,
    /// Blocked-on-contention events: a rank wanted to start an operation
    /// but every sampled edge was locked by in-flight conversations.
    pub blocked: u64,
    /// Subset of `blocked` where the rank already had at least one
    /// conversation in flight: the would-be conversation parked on a
    /// local reservation conflict while the pipeline kept moving.
    pub parked: u64,
    /// High-water mark of concurrently in-flight own conversations on
    /// any single rank (bounded by `ParallelConfig::window`;
    /// speculative switches awaiting verdicts count as in flight).
    pub window_peak: u64,
    /// Speculatively applied switches confirmed by batch verdicts this
    /// step (zero unless `ParallelConfig::spec_batch > 1`).
    pub spec_committed: u64,
    /// Speculatively applied switches rolled back on rejected verdicts
    /// this step.
    pub spec_rolled_back: u64,
    /// Network packets sent between distinct ranks. The threaded driver
    /// coalesces per-destination message runs into `Msg::Batch` frames,
    /// so this is ≤ `logical_msgs.total()`; the simulators deliver one
    /// logical message per packet, so there it equals
    /// `logical_msgs.total()`.
    pub packets: u64,
    /// Logical protocol messages sent between distinct ranks, by variant
    /// (self-deliveries are handled in place and not counted; batching
    /// is transparent).
    pub logical_msgs: MsgCounts,
    /// DES only: virtual time of the step boundary (collective + quota
    /// draw). Zero for drivers without a clock.
    pub boundary_ns: f64,
    /// DES only: virtual time of the step's conversation drain. Zero for
    /// drivers without a clock.
    pub drain_ns: f64,
    /// Observed runs only: time spent in the step-boundary collective
    /// (max across ranks; clock-domain ns).
    pub barrier_ns: f64,
    /// Observed runs only: time spent refreshing `q` and drawing the
    /// quota (max across ranks; clock-domain ns).
    pub qrefresh_ns: f64,
    /// Observed runs only: time spent blocked waiting for messages
    /// (max across ranks; clock-domain ns).
    pub wait_ns: f64,
    /// Curveball only: trades executed this pass (matched pairs whose
    /// neighborhoods were split and re-dealt). Zero on switch runs.
    pub trades: u64,
    /// Curveball only: neighbors reassigned this pass (summed sizes of
    /// the shuffled disjoint unions — the scheme's unit of work). Zero
    /// on switch runs.
    pub neighbors_moved: u64,
}

impl StepTelemetry {
    /// Merge another rank's record of the same step into this one.
    /// Counters add; the virtual-time phases are step-global already and
    /// combine by maximum.
    pub fn merge(&mut self, other: &StepTelemetry) {
        self.ops += other.ops;
        self.started += other.started;
        self.performed += other.performed;
        self.local_fastpath += other.local_fastpath;
        self.forfeited += other.forfeited;
        self.served += other.served;
        self.blocked += other.blocked;
        self.parked += other.parked;
        self.window_peak = self.window_peak.max(other.window_peak);
        self.spec_committed += other.spec_committed;
        self.spec_rolled_back += other.spec_rolled_back;
        self.packets += other.packets;
        self.logical_msgs.merge(&other.logical_msgs);
        self.boundary_ns = self.boundary_ns.max(other.boundary_ns);
        self.drain_ns = self.drain_ns.max(other.drain_ns);
        self.barrier_ns = self.barrier_ns.max(other.barrier_ns);
        self.qrefresh_ns = self.qrefresh_ns.max(other.qrefresh_ns);
        self.wait_ns = self.wait_ns.max(other.wait_ns);
        self.trades += other.trades;
        self.neighbors_moved += other.neighbors_moved;
    }

    /// Served-versus-performed diff of `after - before` rank statistics,
    /// folded into this record.
    fn absorb_stats_delta(&mut self, before: &RankStats, after: &RankStats) {
        self.performed += after.performed - before.performed;
        self.local_fastpath += after.performed_fastpath - before.performed_fastpath;
        self.forfeited += after.forfeited - before.forfeited;
        self.served += (after.proposals_served + after.validations_served)
            - (before.proposals_served + before.validations_served);
        self.spec_committed += after.spec_committed - before.spec_committed;
        self.spec_rolled_back += after.spec_rolled_back - before.spec_rolled_back;
    }
}

// ---------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------

/// Result of a parallel run (any driver).
#[derive(Debug)]
pub struct ParallelOutcome {
    /// The switched graph, reassembled from all partitions.
    pub graph: Graph,
    /// Steps executed.
    pub steps: u64,
    /// Per-rank protocol statistics (workload distribution etc.).
    pub per_rank: Vec<RankStats>,
    /// Final `|E_i|` per rank (Figure 18).
    pub final_edges: Vec<u64>,
    /// Initial `|E_i|` per rank (Figure 17).
    pub initial_edges: Vec<u64>,
    /// Per-rank communication counters.
    pub comm: Vec<CommStats>,
    /// Merged visit tracking over the whole graph.
    pub tracker: VisitTracker,
    /// Per-step telemetry, aggregated over ranks.
    pub telemetry: Vec<StepTelemetry>,
    /// Aggregated observability report (`Some` iff the run was observed,
    /// i.e. `ParallelConfig::obs` was not `Off`).
    pub report: Option<RunReport>,
}

impl ParallelOutcome {
    /// Observed visit rate.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }

    /// Total operations performed across ranks.
    pub fn performed(&self) -> u64 {
        self.per_rank.iter().map(|s| s.performed).sum()
    }

    /// Total operations forfeited (degenerate graphs only).
    pub fn forfeited(&self) -> u64 {
        self.per_rank.iter().map(|s| s.forfeited).sum()
    }

    /// Workload per rank: operations performed as initiator
    /// (Figures 19–21).
    pub fn workload(&self) -> Vec<u64> {
        self.per_rank.iter().map(|s| s.performed).collect()
    }

    /// Total logical protocol messages by variant, summed over steps
    /// (batch-transparent; contrast [`ParallelOutcome::packet_total`]).
    pub fn logical_msg_totals(&self) -> MsgCounts {
        let mut acc = MsgCounts::default();
        for step in &self.telemetry {
            acc.merge(&step.logical_msgs);
        }
        acc
    }

    /// Total blocked-on-contention events across steps.
    pub fn blocked_events(&self) -> u64 {
        self.telemetry.iter().map(|s| s.blocked).sum()
    }

    /// Total conversations parked on a local reservation conflict while
    /// the rank's pipeline had other conversations in flight.
    pub fn parked_events(&self) -> u64 {
        self.telemetry.iter().map(|s| s.parked).sum()
    }

    /// Peak concurrently in-flight own conversations on any rank.
    pub fn window_peak(&self) -> u64 {
        self.telemetry
            .iter()
            .map(|s| s.window_peak)
            .max()
            .unwrap_or(0)
    }

    /// Total network packets between distinct ranks (≤ message total
    /// under the threaded driver's coalescing).
    pub fn packet_total(&self) -> u64 {
        self.telemetry.iter().map(|s| s.packets).sum()
    }
}

/// One rank's contribution to a [`ParallelOutcome`].
#[derive(Debug)]
pub struct RankOutput {
    /// Final partition store.
    pub store: PartitionStore,
    /// This partition's visit tracker.
    pub tracker: VisitTracker,
    /// Protocol statistics.
    pub stats: RankStats,
    /// Communication counters.
    pub comm: CommStats,
    /// What this rank's probe recorded (`None` when unobserved).
    pub obs: Option<RankObs>,
}

/// Run-level observation context handed to [`assemble_outcome`] by an
/// observed driver: which clock the numbers live on and the end-to-end
/// duration.
#[derive(Clone, Copy, Debug)]
pub struct RunMeta {
    /// [`Clock::label`] of the run's clock.
    pub clock: &'static str,
    /// End-to-end run duration in clock-domain nanoseconds.
    pub wall_ns: u64,
}

/// Assemble the final [`ParallelOutcome`] from per-rank outputs — the
/// one gather/merge path shared by every driver. `meta` is `Some` iff
/// the run was observed; the per-rank probe recordings and comm-layer
/// gauges are then merged into a [`RunReport`].
pub fn assemble_outcome(
    n: usize,
    steps: u64,
    initial_edges: Vec<u64>,
    outputs: Vec<RankOutput>,
    telemetry: Vec<StepTelemetry>,
    meta: Option<RunMeta>,
) -> ParallelOutcome {
    let p = outputs.len();
    let mut per_rank = Vec::with_capacity(p);
    let mut comm = Vec::with_capacity(p);
    let mut final_edges = Vec::with_capacity(p);
    let mut final_stores = Vec::with_capacity(p);
    let mut tracker_acc: Option<VisitTracker> = None;
    let mut merged_obs = RankObs::default();
    for out in outputs {
        per_rank.push(out.stats);
        comm.push(out.comm);
        final_edges.push(out.store.num_edges() as u64);
        final_stores.push(out.store);
        if let Some(obs) = &out.obs {
            merged_obs.merge(obs);
        }
        match &mut tracker_acc {
            None => tracker_acc = Some(out.tracker),
            Some(acc) => acc.merge_disjoint(out.tracker),
        }
    }
    let report = meta.map(|m| {
        let gauges = CommGauges {
            queue_peaks: comm.iter().map(|c| c.recv_queue_peak).collect(),
            parks: comm.iter().map(|c| c.parks).sum(),
            park_ns: comm.iter().map(|c| c.park_ns).sum(),
            park_ns_max: comm.iter().map(|c| c.park_ns).max().unwrap_or(0),
        };
        RunReport::from_obs(m.clock, p as u64, m.wall_ns, &merged_obs, Some(&gauges))
            .with_spec_counters(
                per_rank.iter().map(|s| s.spec_committed).sum(),
                per_rank.iter().map(|s| s.spec_rolled_back).sum(),
            )
    });
    ParallelOutcome {
        graph: assemble_graph(n, &final_stores),
        steps,
        per_rank,
        final_edges,
        initial_edges,
        comm,
        tracker: tracker_acc.unwrap_or_else(|| VisitTracker::new(std::iter::empty())),
        telemetry,
        report,
    }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Base transport interface: cost hooks shared by both driver shapes.
/// All hooks default to no-ops; only the DES transport charges time.
pub trait Transport {
    /// A rank initiated one of its own switch operations.
    fn on_op_started(&mut self, _rank: usize) {}
    /// A rank handled one of its own messages in place.
    fn on_self_delivery(&mut self, _rank: usize) {}
}

/// Transport of a single-process world driving all `p` rank machines
/// from one loop: messages between distinct ranks pass through here.
pub trait WorldTransport: Transport {
    /// Queue `msg` from `src` for delivery to `dst` (`src != dst`).
    fn deliver(&mut self, src: usize, dst: usize, msg: Msg);
    /// Next `(dst, src, msg)` to hand to a state machine, if any.
    fn pop_any(&mut self) -> Option<(usize, usize, Msg)>;
    /// Whether any message is still in flight.
    fn is_empty(&self) -> bool;
    /// A step boundary begins: `step_ops` operations over `p` ranks.
    fn begin_step(&mut self, _step_ops: u64, _p: usize) {}
    /// A step ended; report its `(boundary, drain)` virtual-time phases
    /// in nanoseconds (zero for transports without a clock).
    fn end_step(&mut self) -> (f64, f64) {
        (0.0, 0.0)
    }
    /// The clock probes should read, if this transport owns the
    /// timeline (the DES returns its virtual clock; others return `None`
    /// and observed runs fall back to the monotonic clock).
    fn obs_clock(&mut self) -> Option<Arc<dyn Clock>> {
        None
    }
    /// After [`WorldTransport::end_step`]: record the step's barrier /
    /// q-refresh / message-wait spans into `obs` and `tel`, returning
    /// `true` if this transport owns those spans (the DES records them
    /// in virtual time). `false` lets [`run_world_step`] record its own
    /// monotonic measurements.
    fn record_step_spans(&mut self, _obs: &mut Obs, _tel: &mut StepTelemetry) -> bool {
        false
    }
}

/// Transport of one rank inside a real `p`-rank world (one instance per
/// thread): point-to-point sends plus the step-boundary collectives.
pub trait RankTransport: Transport {
    /// This rank's id.
    fn rank(&self) -> usize;
    /// Number of ranks `p`.
    fn size(&self) -> usize;
    /// Allgather of the live `|E_i|` (Section 4.5 step boundary).
    fn exchange_edge_counts(&mut self, count: u64) -> Vec<u64>;
    /// Distributed Algorithm-5 quota draw: this rank's share of
    /// `step_ops` operations under `q`, consuming `rng` exactly like
    /// every other driver.
    fn draw_quota(&mut self, step_ops: u64, q: &[f64], rng: &mut BlockRng64) -> u64;
    /// Send a protocol message to another rank.
    fn send(&mut self, dst: usize, msg: Msg);
    /// Non-blocking receive of the next protocol message `(src, msg)`.
    fn try_recv(&mut self) -> Option<(usize, Msg)>;
    /// Blocking receive of the next protocol message `(src, msg)`.
    fn recv_block(&mut self) -> (usize, Msg);
}

/// Deterministic global-FIFO transport: the queue *is* the network.
/// Causal order (a message is delivered after everything queued before
/// it) with no notion of time — the simulator's transport.
#[derive(Debug, Default)]
pub struct FifoTransport {
    queue: VecDeque<(usize, usize, Msg)>,
}

impl FifoTransport {
    /// Empty transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for FifoTransport {}

impl WorldTransport for FifoTransport {
    fn deliver(&mut self, src: usize, dst: usize, msg: Msg) {
        self.queue.push_back((dst, src, msg));
    }
    fn pop_any(&mut self) -> Option<(usize, usize, Msg)> {
        self.queue.pop_front()
    }
    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// The threaded engine's transport: a thin shim over one rank's
/// [`Comm`] endpoint. Collectives are real collectives; sends are real
/// channel sends; the cost hooks stay no-ops because time is real here.
/// Incoming [`Msg::Batch`] frames are unpacked here, so the step loop
/// only ever sees logical protocol messages.
pub struct MpiliteTransport<'a> {
    comm: &'a mut Comm<Msg>,
    /// Logical messages unpacked from a batch frame, awaiting delivery.
    inbox: VecDeque<(usize, Msg)>,
}

impl<'a> MpiliteTransport<'a> {
    /// Wrap a rank's communicator.
    pub fn new(comm: &'a mut Comm<Msg>) -> Self {
        MpiliteTransport {
            comm,
            inbox: VecDeque::new(),
        }
    }

    /// Unpack one received packet: batches queue their tail behind the
    /// first framed message; bare messages pass through.
    fn unpack(&mut self, src: usize, payload: Msg) -> (usize, Msg) {
        match payload {
            Msg::Batch(msgs) => {
                let mut it = msgs.into_iter();
                let first = it.next().expect("batch frames are never empty");
                for m in it {
                    self.inbox.push_back((src, m));
                }
                (src, first)
            }
            m => (src, m),
        }
    }
}

impl Transport for MpiliteTransport<'_> {}

impl RankTransport for MpiliteTransport<'_> {
    fn rank(&self) -> usize {
        self.comm.rank()
    }
    fn size(&self) -> usize {
        self.comm.size()
    }
    fn exchange_edge_counts(&mut self, count: u64) -> Vec<u64> {
        debug_assert!(self.inbox.is_empty(), "protocol traffic across step end");
        self.comm.allgather_u64(count)
    }
    fn draw_quota(&mut self, step_ops: u64, q: &[f64], rng: &mut BlockRng64) -> u64 {
        edgeswitch_dist::parallel_multinomial_owned(self.comm, step_ops, q, rng)
    }
    fn send(&mut self, dst: usize, msg: Msg) {
        self.comm.send(dst, TAG_PROTO, msg);
    }
    fn try_recv(&mut self) -> Option<(usize, Msg)> {
        if let Some(x) = self.inbox.pop_front() {
            return Some(x);
        }
        let p = self.comm.try_recv_tag(TAG_PROTO)?;
        Some(self.unpack(p.src, p.payload))
    }
    fn recv_block(&mut self) -> (usize, Msg) {
        if let Some(x) = self.inbox.pop_front() {
            return x;
        }
        let p = self.comm.recv_tag(TAG_PROTO);
        self.unpack(p.src, p.payload)
    }
}

// ---------------------------------------------------------------------
// Send coalescing (threaded engine)
// ---------------------------------------------------------------------

/// Per-destination send coalescing: messages accumulate during one
/// event-loop iteration and leave as one packet per destination —
/// [`Msg::Batch`] framing when a destination gets more than one.
struct Coalescer {
    batches: Vec<Vec<Msg>>,
    /// Destinations with a non-empty batch, in first-touch order.
    dirty: Vec<usize>,
}

impl Coalescer {
    fn new(p: usize) -> Self {
        Coalescer {
            batches: vec![Vec::new(); p],
            dirty: Vec::with_capacity(p),
        }
    }

    fn push(&mut self, dst: usize, msg: Msg) {
        if self.batches[dst].is_empty() {
            self.dirty.push(dst);
        }
        self.batches[dst].push(msg);
    }

    /// Send every pending batch as one packet; returns packets sent.
    fn flush<T: RankTransport>(&mut self, transport: &mut T) -> u64 {
        let packets = self.dirty.len() as u64;
        for dst in self.dirty.drain(..) {
            let mut batch = std::mem::take(&mut self.batches[dst]);
            if batch.len() == 1 {
                let msg = batch.pop().expect("dirty batch is non-empty");
                self.batches[dst] = batch; // keep the allocation
                transport.send(dst, msg);
            } else {
                transport.send(dst, Msg::Batch(batch));
            }
        }
        packets
    }
}

/// Reusable hot-loop buffers of one rank's step loop: the outbox and the
/// send coalescer live for the whole run instead of being re-allocated
/// every step. Create one per rank with [`StepScratch::new`] and pass it
/// to every [`run_rank_step`] call of that rank.
pub struct StepScratch {
    outbox: Outbox,
    coalescer: Coalescer,
}

impl StepScratch {
    /// Scratch buffers for one rank of a `p`-rank world.
    pub fn new(p: usize) -> Self {
        StepScratch {
            outbox: Outbox::new(),
            coalescer: Coalescer::new(p),
        }
    }
}

// ---------------------------------------------------------------------
// Step harness
// ---------------------------------------------------------------------

/// Step sizing and per-step sampling policy of one run — the driver-
/// independent core of Section 4.5.
#[derive(Clone, Copy, Debug)]
pub struct StepHarness {
    t: u64,
    s: u64,
    steps: u64,
    uniform_q: bool,
}

impl StepHarness {
    /// Resolve the step structure of a `t`-operation run under `config`.
    pub fn new(t: u64, config: &ParallelConfig) -> Self {
        let s = config.step_size.resolve(t);
        StepHarness {
            t,
            s,
            steps: t.div_ceil(s.max(1)),
            uniform_q: config.quota_policy == QuotaPolicy::Uniform,
        }
    }

    /// Number of steps in the run.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Operations assigned to step `step` (the last step takes the
    /// remainder).
    pub fn step_ops(&self, step: u64) -> u64 {
        if step == self.steps - 1 {
            self.t - self.s * (self.steps - 1)
        } else {
            self.s
        }
    }

    /// Whether the uniform quota ablation is active.
    pub fn uniform_q(&self) -> bool {
        self.uniform_q
    }

    /// The probability vector `q_i = |E_i| / |E|` from live edge counts,
    /// falling back to uniform when the graph is empty or the
    /// [`QuotaPolicy::Uniform`] ablation is selected.
    pub fn probability_vector(&self, counts: &[u64]) -> Vec<f64> {
        probability_vector(counts, self.uniform_q)
    }
}

/// Driver-independent `q` refresh: proportional to `counts` unless they
/// are all zero or `uniform` is forced.
pub fn probability_vector(counts: &[u64], uniform: bool) -> Vec<f64> {
    let p = counts.len();
    let total: u64 = counts.iter().sum();
    if total == 0 || uniform {
        vec![1.0 / p as f64; p]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

// ---------------------------------------------------------------------
// Per-rank step loop (threaded engine)
// ---------------------------------------------------------------------

/// One rank's step (Section 4.5): refresh `q`, draw the quota, then
/// switch/serve until every rank has signalled `EndOfStep`. Returns this
/// rank's telemetry for the step.
///
/// Each event-loop iteration drains every delivered message, fills the
/// conversation window (up to `ParallelConfig::window` own conversations
/// in flight), then flushes the send coalescer — one packet per touched
/// destination — before parking on the next message. The coalescer is
/// always flushed before a blocking receive, so no reply a peer is
/// waiting on can be stranded in a batch.
pub fn run_rank_step<T: RankTransport>(
    transport: &mut T,
    state: &mut RankState,
    scratch: &mut StepScratch,
    step_ops: u64,
    uniform_q: bool,
) -> StepTelemetry {
    let p = transport.size();
    debug_assert!(
        scratch.outbox.is_empty() && scratch.coalescer.dirty.is_empty(),
        "scratch buffers must be drained between steps"
    );
    // (1) Probability vector from current edge counts.
    let barrier_start = state.obs_mut().now();
    let counts = transport.exchange_edge_counts(state.edge_count());
    let barrier_end = state.obs_mut().now();
    let q = probability_vector(&counts, uniform_q);
    // (2) Multinomial distribution of the step's operations (Alg. 5).
    let quota = transport.draw_quota(step_ops, &q, state.rng_mut());
    let qrefresh_end = state.obs_mut().now();
    let barrier_ns = barrier_end.saturating_sub(barrier_start);
    let qrefresh_ns = qrefresh_end.saturating_sub(barrier_end);
    state.obs_mut().span(Phase::StepBarrier, barrier_ns);
    state.obs_mut().span(Phase::QRefresh, qrefresh_ns);
    state.begin_step(quota, &q);

    let mut tel = StepTelemetry {
        ops: quota,
        barrier_ns: barrier_ns as f64,
        qrefresh_ns: qrefresh_ns as f64,
        ..StepTelemetry::default()
    };
    let before = state.stats;
    let mut wait_ns_acc = 0u64;

    // (3) Event loop, on the run-lifetime scratch buffers.
    let StepScratch { outbox, coalescer } = scratch;
    let mut eos = 0usize;
    let mut signaled = false;
    loop {
        // (a) Drain everything already delivered.
        while let Some((src, msg)) = transport.try_recv() {
            dispatch(
                transport, state, src, msg, outbox, coalescer, &mut eos, &mut tel,
            );
        }
        // (b) Fill the conversation window: at most `window` starts per
        // iteration, so a run of synchronously-completing self-partner
        // switches cannot starve the peers waiting in (a) for service.
        let mut starts = 0;
        loop {
            match state.try_start(outbox) {
                StartResult::Started(n) => {
                    tel.started += n as u64;
                    starts += n as usize;
                    for _ in 0..n {
                        transport.on_op_started(transport.rank());
                    }
                    drain_outbox(transport, state, outbox, coalescer, &mut tel);
                    if starts >= state.window() {
                        break;
                    }
                }
                StartResult::Blocked => {
                    tel.blocked += 1;
                    if state.inflight_len() > 0 {
                        tel.parked += 1;
                    }
                    break;
                }
                StartResult::Idle => break,
            }
        }
        tel.window_peak = tel.window_peak.max(state.inflight_len() as u64);
        // (c) Quota finished and every conversation settled: tell the
        // other ranks (once), but keep serving until they all say so.
        if !signaled && state.step_done() {
            for dst in 0..p {
                if dst != transport.rank() {
                    tel.logical_msgs.record(&Msg::EndOfStep);
                    coalescer.push(dst, Msg::EndOfStep);
                }
            }
            eos += 1; // count self
            signaled = true;
        }
        // (d) One packet per touched destination.
        tel.packets += coalescer.flush(transport);
        // (e) Quiesce, or park until the next message.
        if signaled && eos == p {
            break;
        }
        if starts >= state.window() {
            // The start cap ended (b): synchronous self-partner
            // completions may have freed window slots, so sweep again
            // instead of parking (if the window is genuinely full, the
            // next sweep starts nothing and parks here).
            continue;
        }
        let wait_start = state.obs_mut().now();
        let (src, msg) = transport.recv_block();
        let wait_end = state.obs_mut().now();
        let waited = wait_end.saturating_sub(wait_start);
        state.obs_mut().span(Phase::MsgWait, waited);
        wait_ns_acc += waited;
        dispatch(
            transport, state, src, msg, outbox, coalescer, &mut eos, &mut tel,
        );
    }
    debug_assert!(state.step_done());
    tel.wait_ns = wait_ns_acc as f64;
    tel.absorb_stats_delta(&before, &state.stats);
    tel
}

/// Handle one incoming message; replies accumulate in the coalescer.
#[allow(clippy::too_many_arguments)]
fn dispatch<T: RankTransport>(
    transport: &mut T,
    state: &mut RankState,
    src: usize,
    msg: Msg,
    outbox: &mut Outbox,
    coalescer: &mut Coalescer,
    eos: &mut usize,
    tel: &mut StepTelemetry,
) {
    match msg {
        Msg::EndOfStep => *eos += 1,
        Msg::Coll(_) => unreachable!("tag-filtered receive cannot yield collective traffic"),
        Msg::Batch(_) => unreachable!("the transport unpacks batch frames"),
        m => {
            state.handle(src, m, outbox);
            drain_outbox(transport, state, outbox, coalescer, tel);
        }
    }
}

/// Move queued messages out of the outbox: self-addressed ones re-enter
/// the state machine immediately; the rest accumulate per destination in
/// the coalescer until the event loop flushes it.
fn drain_outbox<T: RankTransport>(
    transport: &mut T,
    state: &mut RankState,
    outbox: &mut Outbox,
    coalescer: &mut Coalescer,
    tel: &mut StepTelemetry,
) {
    while let Some((dst, msg)) = outbox.pop() {
        if dst == transport.rank() {
            transport.on_self_delivery(dst);
            state.handle(dst, msg, outbox);
        } else {
            tel.logical_msgs.record(&msg);
            coalescer.push(dst, msg);
        }
    }
}

// ---------------------------------------------------------------------
// World step loop (FIFO simulator, DES)
// ---------------------------------------------------------------------

/// One step of a single-process world over all `p` rank machines:
/// the same protocol as [`run_rank_step`], with the allgather and
/// alltoall computed in place and quiescence detected structurally
/// (no messages in flight, nothing startable) instead of via
/// `EndOfStep` signalling. `out` is the run-lifetime routing scratch
/// (drained within every call; hoisted so steps stop re-allocating it).
pub fn run_world_step<T: WorldTransport>(
    transport: &mut T,
    states: &mut [RankState],
    out: &mut Outbox,
    step_ops: u64,
    uniform_q: bool,
    comm_stats: &mut [CommStats],
) -> StepTelemetry {
    let p = states.len();
    debug_assert!(out.is_empty(), "routing scratch must drain between steps");
    transport.begin_step(step_ops, p);
    // The allgather: probability vector from current edge counts.
    // World-level spans are recorded once, into rank 0's probe, so a
    // p-rank world does not count the shared boundary p times.
    let barrier_start = states.first_mut().map_or(0, |st| st.obs_mut().now());
    let counts: Vec<u64> = states.iter().map(|st| st.edge_count()).collect();
    let barrier_end = states.first_mut().map_or(0, |st| st.obs_mut().now());
    let q = probability_vector(&counts, uniform_q);
    // Algorithm 5, faithfully: each rank draws a multinomial over its
    // trial share from its own stream; quotas are the column sums.
    let quotas = edgeswitch_dist::multinomial_owned_world(
        step_ops,
        &q,
        states.iter_mut().map(|st| st.rng_mut()),
    );
    let qrefresh_end = states.first_mut().map_or(0, |st| st.obs_mut().now());
    for (st, &qi) in states.iter_mut().zip(&quotas) {
        st.begin_step(qi, &q);
    }

    let mut tel = StepTelemetry {
        ops: step_ops,
        ..StepTelemetry::default()
    };
    let before: Vec<RankStats> = states.iter().map(|st| st.stats).collect();

    // Event loop: drain in-flight messages, round-robin window fills.
    loop {
        while let Some((dst, src, msg)) = transport.pop_any() {
            states[dst].handle(src, msg, out);
            route_world(transport, states, dst, out, comm_stats, &mut tel);
        }
        let mut any_started = false;
        for i in 0..p {
            // Fill rank i's conversation window: at most `window` starts
            // per sweep. The start cap (rather than just the occupancy
            // gate inside `try_start`) matters for reproducibility: a
            // self-partner switch completes synchronously inside
            // `route_world`, freeing its slot immediately, and at
            // window = 1 the rank must still wait for the next sweep —
            // exactly the pre-window schedule.
            let mut starts = 0;
            loop {
                match states[i].try_start(out) {
                    StartResult::Started(n) => {
                        any_started = true;
                        tel.started += n as u64;
                        starts += n as usize;
                        for _ in 0..n {
                            transport.on_op_started(i);
                        }
                        route_world(transport, states, i, out, comm_stats, &mut tel);
                        if starts >= states[i].window() {
                            break;
                        }
                    }
                    StartResult::Blocked => {
                        tel.blocked += 1;
                        if states[i].inflight_len() > 0 {
                            tel.parked += 1;
                        }
                        break;
                    }
                    StartResult::Idle => break,
                }
            }
            tel.window_peak = tel.window_peak.max(states[i].inflight_len() as u64);
        }
        if !any_started && transport.is_empty() {
            assert!(
                states.iter().all(|st| st.step_done()),
                "simulated world wedged: quiescent but quotas unfinished"
            );
            break;
        }
    }
    debug_assert!(states.iter().all(|st| !st.serving_pending()));

    for (b, st) in before.iter().zip(states.iter()) {
        tel.absorb_stats_delta(b, &st.stats);
    }
    let (boundary_ns, drain_ns) = transport.end_step();
    tel.boundary_ns = boundary_ns;
    tel.drain_ns = drain_ns;
    // Step spans: the DES records them in virtual time; a clockless
    // world records its own monotonic measurements.
    let des_owned = match states.first_mut() {
        Some(st) => transport.record_step_spans(st.obs_mut(), &mut tel),
        None => true,
    };
    if !des_owned {
        if let Some(st) = states.first_mut() {
            let barrier_ns = barrier_end.saturating_sub(barrier_start);
            let qrefresh_ns = qrefresh_end.saturating_sub(barrier_end);
            st.obs_mut().span(Phase::StepBarrier, barrier_ns);
            st.obs_mut().span(Phase::QRefresh, qrefresh_ns);
            tel.barrier_ns = barrier_ns as f64;
            tel.qrefresh_ns = qrefresh_ns as f64;
        }
    }
    tel
}

/// Route one rank's outbox through a world transport: self-addressed
/// messages re-enter the state machine in place; the rest are counted
/// (traffic stats + per-variant telemetry) and delivered.
fn route_world<T: WorldTransport>(
    transport: &mut T,
    states: &mut [RankState],
    src: usize,
    out: &mut Outbox,
    comm_stats: &mut [CommStats],
    tel: &mut StepTelemetry,
) {
    while let Some((dst, msg)) = out.pop() {
        if dst == src {
            transport.on_self_delivery(src);
            states[src].handle(src, msg, out);
        } else {
            comm_stats[src].packets_sent += 1;
            comm_stats[src].bytes_sent += msg.wire_size() as u64;
            msg.record_kinds(&mut comm_stats[src].logical_by_kind);
            comm_stats[dst].packets_received += 1;
            tel.logical_msgs.record(&msg);
            // The simulators deliver one logical message per packet (no
            // coalescing — it would reorder the deterministic schedule).
            tel.packets += 1;
            transport.deliver(src, dst, msg);
        }
    }
}

/// Run a whole `t`-operation simulated world over `transport`: the
/// driver body shared by the FIFO simulator and the DES.
pub fn run_simulated_world<T: WorldTransport>(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
    transport: &mut T,
) -> ParallelOutcome {
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();

    // Observed runs read the transport's clock if it owns the timeline
    // (the DES records in virtual time); otherwise the monotonic clock.
    let clock: Option<Arc<dyn Clock>> = if config.obs.enabled() {
        Some(
            transport
                .obs_clock()
                .unwrap_or_else(|| Arc::new(MonoClock::new())),
        )
    } else {
        None
    };
    let mut states: Vec<RankState> = stores
        .into_iter()
        .enumerate()
        .map(|(rank, store)| {
            let state = RankState::new(rank, part.clone(), store, config.seed, config.window)
                .with_fastpath(config.local_fastpath)
                .with_spec_batch(config.spec_batch);
            match &clock {
                Some(clock) => state.with_obs(config.obs.build(clock.clone())),
                None => state,
            }
        })
        .collect();
    let mut comm_stats = vec![CommStats::default(); p];
    let run_start = clock.as_ref().map_or(0, |c| c.now_ns());

    let harness = StepHarness::new(t, config);
    let mut telemetry = Vec::with_capacity(harness.steps() as usize);
    let mut out = Outbox::new();
    for step in 0..harness.steps() {
        telemetry.push(run_world_step(
            transport,
            &mut states,
            &mut out,
            harness.step_ops(step),
            harness.uniform_q(),
            &mut comm_stats,
        ));
    }

    let meta = clock.as_ref().map(|c| RunMeta {
        clock: c.label(),
        wall_ns: c.now_ns().saturating_sub(run_start),
    });
    let outputs: Vec<RankOutput> = states
        .into_iter()
        .zip(comm_stats)
        .map(|(state, comm)| {
            let (store, tracker, stats, obs) = state.into_parts();
            RankOutput {
                store,
                tracker,
                stats,
                comm,
                obs,
            }
        })
        .collect();
    assemble_outcome(n, harness.steps(), initial_edges, outputs, telemetry, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StepSize;

    #[test]
    fn step_harness_splits_remainder_onto_last_step() {
        let cfg = ParallelConfig::new(4).with_step_size(StepSize::Ops(30));
        let h = StepHarness::new(100, &cfg);
        assert_eq!(h.steps(), 4);
        assert_eq!(h.step_ops(0), 30);
        assert_eq!(h.step_ops(2), 30);
        assert_eq!(h.step_ops(3), 10);
        let total: u64 = (0..h.steps()).map(|s| h.step_ops(s)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn step_harness_zero_ops_means_zero_steps() {
        let cfg = ParallelConfig::new(4);
        let h = StepHarness::new(0, &cfg);
        assert_eq!(h.steps(), 0);
    }

    #[test]
    fn probability_vector_modes() {
        let q = probability_vector(&[1, 3], false);
        assert_eq!(q, vec![0.25, 0.75]);
        let q = probability_vector(&[1, 3], true);
        assert_eq!(q, vec![0.5, 0.5]);
        let q = probability_vector(&[0, 0, 0], false);
        assert_eq!(q, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn msg_counts_record_and_merge() {
        let mut a = MsgCounts::default();
        a.record(&Msg::EndOfStep);
        a.record(&Msg::EndOfStep);
        let mut b = MsgCounts::default();
        b.record(&Msg::EndOfStep);
        a.merge(&b);
        assert_eq!(a.get(MsgKind::EndOfStep), 3);
        assert_eq!(a.get(MsgKind::Propose), 0);
        assert_eq!(a.total(), 3);
        assert_eq!(
            a.iter().map(|(_, c)| c).sum::<u64>(),
            a.total(),
            "iter covers every slot"
        );
    }

    #[test]
    fn telemetry_merge_adds_counters_and_maxes_phases() {
        let mut a = StepTelemetry {
            ops: 10,
            started: 4,
            performed: 3,
            forfeited: 1,
            served: 2,
            blocked: 5,
            boundary_ns: 100.0,
            drain_ns: 50.0,
            ..StepTelemetry::default()
        };
        let b = StepTelemetry {
            ops: 7,
            started: 1,
            performed: 1,
            forfeited: 0,
            served: 4,
            blocked: 2,
            boundary_ns: 80.0,
            drain_ns: 90.0,
            ..StepTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.ops, 17);
        assert_eq!(a.started, 5);
        assert_eq!(a.performed, 4);
        assert_eq!(a.forfeited, 1);
        assert_eq!(a.served, 6);
        assert_eq!(a.blocked, 7);
        assert_eq!(a.boundary_ns, 100.0);
        assert_eq!(a.drain_ns, 90.0);
    }
}
